"""SkyServer-style scenario through the SQL engine (paper §6.2).

Creates the photo-object table ``p`` with a synthetic right-ascension column,
lets the non-segmented engine answer a few spatial searches, then hands the
``ra`` column to the Bat Partition Manager for adaptive segmentation and
replays a 200-query workload.  The example prints the optimized MAL plan
before and after the segment optimizer kicks in (compare with the paper's
Figure 1 and the §3.1 iterator snippet) and the adaptation/selection split.

Run with:  python examples/skyserver_adaptive_sql.py
"""

from __future__ import annotations

import numpy as np

from repro.engine import Database, Session
from repro.util.units import format_bytes
from repro.workloads import skyserver_dataset, skyserver_workload


def main() -> None:
    dataset = skyserver_dataset(n_values=1_000_000, seed=7)
    print(
        f"synthetic SkyServer ra column: {dataset.ra.size} values "
        f"({format_bytes(dataset.column_bytes)}), APM bounds "
        f"{format_bytes(dataset.m_min)} / {format_bytes(dataset.m_max_large)}"
    )

    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p", {"objid": np.arange(dataset.ra.size, dtype=np.int64), "ra": dataset.ra}
    )
    session = Session(database)

    example_query = "SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12"
    print("\n--- plan without segmentation (cf. paper Figure 1) ---")
    print(database.explain(example_query))

    result = session.execute(example_query)
    print(f"\n{result.row_count} objects found in ra [205.1, 205.12]")

    # Hand the column to the BPM: from now on the segment optimizer rewrites
    # every selection on p.ra into a segment-aware iterator block.
    database.enable_adaptive(
        "p", "ra", strategy="segmentation", model="apm",
        m_min=dataset.m_min, m_max=dataset.m_max_large,
    )
    print("\n--- plan with adaptive segmentation (cf. paper section 3.1) ---")
    print(database.explain(example_query))

    workload = skyserver_workload("random", n_queries=200, seed=7)
    session.reset_timings()
    for query in workload:
        session.execute(
            f"SELECT objid FROM p WHERE ra BETWEEN {float(query.low)!r} AND {float(query.high)!r}"
        )

    handle = database.adaptive_handle("p", "ra")
    timings = session.timings
    print("\nafter the 200-query random workload:")
    print(f"  segments created:          {handle.adaptive.segment_count}")
    print(f"  avg query time:            {timings.average_milliseconds:.2f} ms")
    print(f"  time spent selecting:      {timings.selection_seconds * 1000:.0f} ms")
    print(f"  time spent adapting:       {timings.adaptation_seconds * 1000:.0f} ms")
    print(f"  bytes read per query:      "
          f"{format_bytes(handle.adaptive.accountant.total_reads_bytes / len(workload))}"
          f" (column is {format_bytes(dataset.column_bytes)})")


if __name__ == "__main__":
    main()
