"""SkyServer-style scenario through the DB-API client (paper §6.2).

Creates the photo-object table ``p`` with a synthetic right-ascension column,
lets the non-segmented engine answer a spatial search, then hands the ``ra``
column to the Bat Partition Manager for adaptive segmentation and replays a
200-query workload through one prepared statement.  The example prints the
optimized MAL plan before and after the segment optimizer kicks in (compare
with the paper's Figure 1 and the §3.1 iterator snippet), the plan-cache
level each call path hit, and the adaptation/selection split.

Run with:  python examples/skyserver_adaptive_sql.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.units import format_bytes
from repro.workloads import skyserver_dataset, skyserver_workload


def main() -> None:
    dataset = skyserver_dataset(n_values=1_000_000, seed=7)
    print(
        f"synthetic SkyServer ra column: {dataset.ra.size} values "
        f"({format_bytes(dataset.column_bytes)}), APM bounds "
        f"{format_bytes(dataset.m_min)} / {format_bytes(dataset.m_max_large)}"
    )

    connection = repro.connect()
    admin = connection.admin
    admin.create_table("p", {"objid": "int64", "ra": "float64"})
    admin.bulk_load(
        "p", {"objid": np.arange(dataset.ra.size, dtype=np.int64), "ra": dataset.ra}
    )
    cursor = connection.cursor()

    example_query = "SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12"
    print("\n--- plan without segmentation (cf. paper Figure 1) ---")
    print(admin.explain(example_query))

    cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (205.1, 205.12))
    print(f"\n{cursor.rowcount} objects found in ra [205.1, 205.12] "
          f"(cache level: {cursor.cache_level})")

    # Hand the column to the BPM: from now on the segment optimizer rewrites
    # every selection on p.ra into a segment-aware iterator block.  The SQL
    # front-end — and the already-prepared statements — need no change.
    admin.enable_adaptive(
        "p", "ra", strategy="segmentation", model="apm",
        m_min=dataset.m_min, m_max=dataset.m_max_large,
    )
    print("\n--- plan with adaptive segmentation (cf. paper section 3.1) ---")
    print(admin.explain(example_query))

    select = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
    workload = skyserver_workload("random", n_queries=200, seed=7)
    total_seconds = selection_seconds = adaptation_seconds = 0.0
    for query in workload:
        result = select.execute((float(query.low), float(query.high)))
        total_seconds += result.total_seconds
        selection_seconds += result.selection_seconds
        adaptation_seconds += result.adaptation_seconds

    handle = admin.adaptive_handle("p", "ra")
    print("\nafter the 200-query random workload (one prepared statement):")
    print(f"  segments created:          {handle.adaptive.segment_count}")
    print(f"  avg query time:            {1000.0 * total_seconds / len(workload):.2f} ms")
    print(f"  time spent selecting:      {selection_seconds * 1000:.0f} ms")
    print(f"  time spent adapting:       {adaptation_seconds * 1000:.0f} ms")
    print(f"  bytes read per query:      "
          f"{format_bytes(handle.adaptive.accountant.total_reads_bytes / len(workload))}"
          f" (column is {format_bytes(dataset.column_bytes)})")
    cache_total = admin.cache_stats()["total"]
    print(f"  plan cache: {cache_total['hits']} hits / "
          f"{cache_total['misses']} misses")
    connection.close()


if __name__ == "__main__":
    main()
