"""Watching the replica tree grow and shrink (paper §5 and §6.1.3).

Adaptive replication keeps query results as replica segments organised in a
tree of materialized and virtual nodes.  This example replays a uniform and a
skewed (Zipf) workload through the DB-API client against a replicated column
and prints how the replica storage evolves: it first grows well beyond the
column size and then collapses back once fully replicated segments
(eventually the original column itself) are dropped — much later under the
skewed workload, exactly as in the paper's Figures 8 and 9.

Run with:  python examples/replication_storage.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.units import KB, format_bytes
from repro.workloads import make_column, uniform_workload, zipf_workload


def run(workload_name: str, workload, values) -> None:
    with repro.connect() as connection:
        connection.admin.create_table("readings", {"oid": "int64", "value": "int32"})
        connection.admin.bulk_load(
            "readings",
            {"oid": np.arange(values.size, dtype=np.int64), "value": values},
        )
        connection.admin.enable_adaptive(
            "readings", "value", strategy="replication", model="apm",
            m_min=3 * KB, m_max=12 * KB,
        )
        column = connection.admin.adaptive_handle("readings", "value").adaptive

        select = connection.prepare(
            "SELECT oid FROM readings WHERE value BETWEEN ? AND ?"
        )
        checkpoints = {50, 100, 250, 500, 1000, 2000, len(workload)}
        print(f"\n=== {workload_name} workload ===")
        print(f"{'queries':>8s} | {'replica storage':>15s} | {'tree nodes':>10s} | {'tree depth':>10s}")
        for index, query in enumerate(workload, start=1):
            select.execute((query.low, query.high))
            if index in checkpoints:
                print(
                    f"{index:>8d} | {format_bytes(column.storage_bytes):>15s} "
                    f"| {column.segment_count:>10d} | {column.tree_depth:>10d}"
                )
        print(f"peak storage: {format_bytes(column.peak_storage_bytes)} "
              f"(column size {format_bytes(column.total_bytes)})")


def main() -> None:
    values = make_column(n_values=100_000, domain_size=1_000_000, seed=3)
    run("uniform", uniform_workload(3_000, (0, 1_000_000), 0.1, seed=3), values)
    run("zipf (skewed)", zipf_workload(3_000, (0, 1_000_000), 0.1, seed=3), values)
    print("\nUnder the skewed workload the original column survives much longer:")
    print("rarely-touched areas of the domain are never replicated, so the big")
    print("storage release happens thousands of queries later than under the")
    print("uniform workload (compare the paper's Figures 8 and 9).")


if __name__ == "__main__":
    main()
