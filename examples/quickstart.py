"""Quickstart: self-organizing columns behind a standard DB-API connection.

Builds a table of 100 K integers (the paper's simulation setup), runs the
same query stream through adaptive segmentation, adaptive replication and a
non-segmented baseline — all through ``repro.connect()`` and one prepared
statement — and prints how much data each strategy had to read and write.
The SQL front-end never changes between strategies: self-organization is
enabled per column with one ``admin.enable_adaptive`` call, exactly as the
paper integrates it "completely transparently for the SQL front-end".

Run with:  python examples/quickstart.py
(QUICKSTART_QUERIES=200 scales the workload down, e.g. for CI smoke runs.)
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.util.units import KB, format_bytes
from repro.workloads import make_column, uniform_workload

STRATEGIES = {
    "APM segmentation": dict(strategy="segmentation", model="apm", m_min=3 * KB, m_max=12 * KB),
    "GD segmentation": dict(strategy="segmentation", model="gd", seed=1),
    "APM replication": dict(strategy="replication", model="apm", m_min=3 * KB, m_max=12 * KB),
    "full scan baseline": dict(strategy="unsegmented"),
}


def main() -> None:
    # The paper's simulation column: 100 K values from a 1 M integer domain.
    values = make_column(n_values=100_000, domain_size=1_000_000, seed=1)
    n_queries = int(os.environ.get("QUICKSTART_QUERIES", "2000"))
    workload = uniform_workload(
        n_queries=n_queries, domain=(0, 1_000_000), selectivity=0.1, seed=1
    )

    print(f"column: {values.size} values ({format_bytes(values.size * values.itemsize)}), "
          f"{len(workload)} range queries, selectivity {workload.selectivity}")
    print()
    header = f"{'strategy':>20s} | {'reads/query':>12s} | {'writes total':>12s} | {'segments':>8s} | {'storage':>9s}"
    print(header)
    print("-" * len(header))

    for name, options in STRATEGIES.items():
        with repro.connect() as connection:
            connection.admin.create_table("readings", {"oid": "int64", "value": "int32"})
            connection.admin.bulk_load(
                "readings",
                {"oid": np.arange(values.size, dtype=np.int64), "value": values},
            )
            connection.admin.enable_adaptive("readings", "value", **options)

            # One prepared statement serves the whole workload: the plan is
            # lowered once and every execution only binds (low, high).  A
            # single BETWEEN predicate compiles into one range selection —
            # two separate comparisons would each scan a half-infinite range.
            select = connection.prepare(
                "SELECT oid FROM readings WHERE value BETWEEN ? AND ?"
            )
            for query in workload:
                select.execute((query.low, query.high))

            adaptive = connection.admin.adaptive_handle("readings", "value").adaptive
            reads_per_query = adaptive.accountant.total_reads_bytes / len(workload)
            print(
                f"{name:>20s} | {format_bytes(reads_per_query):>12s} "
                f"| {format_bytes(adaptive.accountant.total_writes_bytes):>12s} "
                f"| {adaptive.segment_count:>8d} | {format_bytes(adaptive.storage_bytes):>9s}"
            )

    print()
    print("Adaptive strategies read only the query-relevant pieces of the column;")
    print("replication trades a little extra storage for a smaller write overhead.")
    print("Every strategy ran behind the same SQL and the same prepared statement.")


if __name__ == "__main__":
    main()
