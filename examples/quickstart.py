"""Quickstart: self-organizing columns in a few lines.

Builds a column of 100 K integers (the paper's simulation setup), runs the
same query stream through adaptive segmentation, adaptive replication and a
non-segmented baseline, and prints how much data each strategy had to read
and write.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AdaptivePageModel,
    GaussianDice,
    ReplicatedColumn,
    SegmentedColumn,
    UnsegmentedColumn,
)
from repro.util.units import KB, format_bytes
from repro.workloads import make_column, uniform_workload


def main() -> None:
    # The paper's simulation column: 100 K values from a 1 M integer domain.
    values = make_column(n_values=100_000, domain_size=1_000_000, seed=1)
    workload = uniform_workload(
        n_queries=2_000, domain=(0, 1_000_000), selectivity=0.1, seed=1
    )

    strategies = {
        "APM segmentation": SegmentedColumn(values.copy(), model=AdaptivePageModel(3 * KB, 12 * KB)),
        "GD segmentation": SegmentedColumn(values.copy(), model=GaussianDice(seed=1)),
        "APM replication": ReplicatedColumn(values.copy(), model=AdaptivePageModel(3 * KB, 12 * KB)),
        "full scan baseline": UnsegmentedColumn(values.copy()),
    }

    print(f"column: {values.size} values ({format_bytes(values.size * values.itemsize)}), "
          f"{len(workload)} range queries, selectivity {workload.selectivity}")
    print()
    header = f"{'strategy':>20s} | {'reads/query':>12s} | {'writes total':>12s} | {'segments':>8s} | {'storage':>9s}"
    print(header)
    print("-" * len(header))
    for name, column in strategies.items():
        for query in workload:
            column.select(query.low, query.high)
        reads_per_query = column.accountant.total_reads_bytes / len(workload)
        print(
            f"{name:>20s} | {format_bytes(reads_per_query):>12s} "
            f"| {format_bytes(column.accountant.total_writes_bytes):>12s} "
            f"| {column.segment_count:>8d} | {format_bytes(column.storage_bytes):>9s}"
        )

    print()
    print("Adaptive strategies read only the query-relevant pieces of the column;")
    print("replication trades a little extra storage for a smaller write overhead.")


if __name__ == "__main__":
    main()
