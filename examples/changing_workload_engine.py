"""A changing workload against the client API (paper §6.2, Figures 15/16).

The changing workload consists of four phases of 50 queries, each confined to
a fresh area of the right-ascension domain.  Every phase shift forces the
segment optimizer to reorganize previously untouched segments, which shows up
as a temporary bump in per-query adaptation time that evens out within the
phase.  The whole stream runs through one prepared statement — the binding
path never re-parses, so the per-query numbers isolate selection and
adaptation work.  The example prints a per-phase summary and a small text
sparkline of the moving-average query time.

Run with:  python examples/changing_workload_engine.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.util.stats import moving_average
from repro.workloads import skyserver_dataset, skyserver_workload


def sparkline(series: list[float], width: int = 60) -> str:
    """A coarse text rendering of a series."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(series)
    if arr.size > width:
        arr = arr[np.linspace(0, arr.size - 1, width).astype(int)]
    top = arr.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in arr)


def main() -> None:
    dataset = skyserver_dataset(n_values=1_000_000, seed=5)
    with repro.connect() as connection:
        connection.admin.create_table("p", {"objid": "int64", "ra": "float64"})
        connection.admin.bulk_load(
            "p", {"objid": np.arange(dataset.ra.size, dtype=np.int64), "ra": dataset.ra}
        )
        connection.admin.enable_adaptive(
            "p", "ra", strategy="segmentation", model="apm",
            m_min=dataset.m_min, m_max=dataset.m_max_small,
        )

        select = connection.prepare(
            "SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi"
        )
        workload = skyserver_workload("changing", n_queries=200, seed=5)
        adaptation_ms: list[float] = []
        total_ms: list[float] = []
        for query in workload:
            result = select.execute({"lo": float(query.low), "hi": float(query.high)})
            adaptation_ms.append(result.adaptation_seconds * 1000)
            total_ms.append(result.total_seconds * 1000)

        queries_per_phase = len(workload) // 4
        print("per-phase adaptation overhead (the spikes of Figures 15/16):")
        for phase in range(4):
            start = phase * queries_per_phase
            phase_slice = adaptation_ms[start : start + queries_per_phase]
            head = sum(phase_slice[: queries_per_phase // 5])
            tail = sum(phase_slice[-queries_per_phase // 5 :])
            print(
                f"  phase {phase + 1}: first queries {head:7.1f} ms of adaptation, "
                f"last queries {tail:7.1f} ms"
            )

        print("\nmoving-average query time (ms), one character per ~3 queries:")
        print("  " + sparkline(list(moving_average(total_ms, 15))))
        handle = connection.admin.adaptive_handle("p", "ra")
        print(f"\nsegments after the run: {handle.adaptive.segment_count}")


if __name__ == "__main__":
    main()
