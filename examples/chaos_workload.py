"""Chaos smoke: a client stream against a fault-injected replica fleet.

Points a resilient async client at an already-running multi-replica server
(boot one with the deterministic fault injector armed)::

    PYTHONPATH=src python -m repro.server --port 7744 --replicas 3 \
        --demo-rows 20000 --quarantine-after 1 --max-retries 3 \
        --max-wave 16 \
        --fault-spec '{"seed": 7, "faults": [
            {"site": "wave.execute", "at": 1, "action": "crash",
             "match": {"replica": 1}},
            {"site": "wave.execute", "at": 2, "action": "crash",
             "match": {"replica": 2}}]}' &
    PYTHONPATH=src timeout 120 python examples/chaos_workload.py --port 7744

The workload fires bound range selects through the crash window, verifies
every completed answer against a client-side recomputation of the demo
table, then polls ``router_stats`` until the fleet converges back to full
health.  Exit 0 requires: zero wrong answers, failover counters that show
the injected crashes actually exercised quarantine + rebuild, and every
replica healthy again.  CI runs this as the ``chaos-smoke`` job.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.aio  # noqa: E402
from repro.api.exceptions import OperationalError  # noqa: E402

SQL = "SELECT v FROM demo WHERE v BETWEEN ? AND ?"
#: ``python -m repro.server --demo-rows N`` loads uniform values seeded with 7.
DEMO_SEED = 7


async def wait_for_server(host: str, port: int, deadline_s: float) -> None:
    """Poll until the server accepts connections (it boots in parallel)."""
    deadline = time.perf_counter() + deadline_s
    while True:
        try:
            connection = await repro.aio.connect(host, port)
        except OSError:
            if time.perf_counter() > deadline:
                raise
            await asyncio.sleep(0.2)
        else:
            await connection.close()
            return


async def run_workload(args: argparse.Namespace) -> int:
    await wait_for_server(args.host, args.port, args.boot_timeout)
    connection = await repro.aio.connect(
        args.host,
        args.port,
        request_timeout=10.0,
        reconnect=True,
        retry_reads=True,
    )
    demo_rows = (await connection.admin.router_stats())["replicas"]
    del demo_rows  # the call doubles as a handshake sanity check

    # The demo table the server preloaded: recompute it client-side so every
    # completed answer can be checked for *correctness*, not just arrival.
    values = np.random.default_rng(DEMO_SEED).random(args.demo_rows)

    rng = np.random.default_rng(23)
    queries = []
    for _ in range(args.queries):
        low = float(rng.uniform(0.0, 0.9))
        queries.append((low, low + float(rng.uniform(0.01, 0.08))))

    async def one(low: float, high: float):
        cursor = await connection.execute(SQL, (low, high))
        return cursor.rowcount

    outcomes = await asyncio.gather(
        *(one(low, high) for low, high in queries), return_exceptions=True
    )

    completed = wrong = failed = 0
    for (low, high), outcome in zip(queries, outcomes):
        if isinstance(outcome, BaseException):
            if not isinstance(outcome, OperationalError):
                print(f"FATAL: non-operational failure: {outcome!r}")
                return 1
            failed += 1
            continue
        completed += 1
        expected = int(np.count_nonzero((values >= low) & (values <= high)))
        if outcome != expected:
            wrong += 1
            print(f"WRONG ANSWER: [{low:.4f}, {high:.4f}] -> {outcome}, "
                  f"expected {expected}")

    # Convergence: the failure detector quarantined crashed replicas, the
    # admission layer kicked off rebuilds, the fleet must return to health.
    deadline = time.perf_counter() + args.heal_timeout
    stats = await connection.admin.router_stats()
    while time.perf_counter() < deadline:
        health = stats.get("health", {})
        if health and all(state == "healthy" for state in health["states"]):
            break
        await asyncio.sleep(0.2)
        stats = await connection.admin.router_stats()
    await connection.close()

    health = stats.get("health", {})
    print(
        f"chaos workload: {completed}/{len(queries)} completed, "
        f"{failed} transient-failed, {wrong} wrong; health={health}"
    )
    if wrong:
        return 1
    if completed < len(queries) * 0.9:
        print(f"FATAL: only {completed}/{len(queries)} answers completed")
        return 1
    if not health:
        print("FATAL: router_stats has no health block (is --replicas > 1?)")
        return 1
    if health["quarantines"] < 1 or health["rebuilds"] < 1:
        print("FATAL: the injected crashes never exercised failover "
              f"(quarantines={health.get('quarantines')}, "
              f"rebuilds={health.get('rebuilds')})")
        return 1
    if not all(state == "healthy" for state in health["states"]):
        print(f"FATAL: fleet did not converge back to health: "
              f"{health['states']}")
        return 1
    print("chaos smoke ok: crashed, failed over, rebuilt, healed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7744)
    parser.add_argument("--queries", type=int,
                        default=int(os.environ.get("CHAOS_QUERIES", "96")))
    parser.add_argument("--demo-rows", type=int,
                        default=int(os.environ.get("CHAOS_DEMO_ROWS", "20000")),
                        help="must match the server's --demo-rows")
    parser.add_argument("--boot-timeout", type=float, default=30.0)
    parser.add_argument("--heal-timeout", type=float, default=30.0)
    args = parser.parse_args()
    return asyncio.run(run_workload(args))


if __name__ == "__main__":
    sys.exit(main())
