"""Async server quickstart: N concurrent clients, one vectorized wave.

Starts a :class:`~repro.server.ReproServer` on an ephemeral loopback port,
loads a SkyServer-shaped table through the wire protocol's admin frames,
then lets several concurrent clients fire bound range selects at it.  The
admission controller holds each query for a sub-millisecond window so
concurrent queries pile into one wave, answered by a single vectorized pass
of the engine — watch the ``admission_stats`` at the end: the mean wave size
is what turned N round trips into one engine visit.

Run it (exits cleanly by itself; CI runs it under a hard timeout)::

    PYTHONPATH=src python examples/async_server_demo.py
"""

from __future__ import annotations

import asyncio
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro.aio  # noqa: E402
from repro.server import ReproServer  # noqa: E402

N_ROWS = int(os.environ.get("DEMO_ROWS", "100000"))
N_CLIENTS = int(os.environ.get("DEMO_CLIENTS", "8"))
QUERIES_PER_CLIENT = int(os.environ.get("DEMO_QUERIES", "64"))


async def load_catalog(address: tuple[str, int]) -> None:
    """DDL + bulk load + adaptive enablement, all over the wire."""
    rng = np.random.default_rng(11)
    connection = await repro.aio.connect(*address)
    admin = connection.admin
    await admin.create_table("p", {"objid": "int64", "ra": "float64"})
    await admin.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=N_ROWS),
        },
    )
    await admin.enable_adaptive("p", "ra", strategy="segmentation", model="apm")
    await connection.close()


async def client(address: tuple[str, int], client_id: int) -> tuple[int, int]:
    """One client: a prepared statement fired over random narrow ranges."""
    connection = await repro.aio.connect(*address)
    select = await connection.prepare(
        "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
    )
    rng = np.random.default_rng(100 + client_id)
    rows = batched = 0
    for _ in range(QUERIES_PER_CLIENT):
        low = float(rng.uniform(0.0, 359.0))
        result = await select.execute((low, low + 1.0))
        rows += result.row_count
        batched += result.batched
    await connection.close()
    return rows, batched


async def main() -> None:
    async with ReproServer(port=0, batch_window_us=500.0) as server:
        assert server.address is not None
        print(f"server on {server.address[0]}:{server.address[1]}")
        await load_catalog(server.address)

        started = time.perf_counter()
        totals = await asyncio.gather(
            *(client(server.address, i) for i in range(N_CLIENTS))
        )
        elapsed = time.perf_counter() - started

        queries = N_CLIENTS * QUERIES_PER_CLIENT
        rows = sum(t[0] for t in totals)
        batched = sum(t[1] for t in totals)
        reporter = await repro.aio.connect(*server.address)
        stats = await reporter.admin.admission_stats()
        cache = await reporter.admin.cache_stats()
        await reporter.close()

        print(f"{N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries "
              f"-> {rows} rows in {elapsed:.2f} s "
              f"({queries / elapsed:,.0f} q/s)")
        print(f"rode a wave: {batched}/{queries} queries "
              f"({100.0 * batched / queries:.0f}%)")
        print(f"waves: {stats['waves']} (mean size {stats['mean_wave']:.1f}, "
              f"max {stats['max_wave_seen']})")
        print(f"engine batch executor: {cache['batch']['batched_queries']} batched, "
              f"{cache['batch']['fallback_queries']} fallback")
    print("server stopped cleanly")


if __name__ == "__main__":
    asyncio.run(main())
