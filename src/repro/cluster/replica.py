"""One engine replica: a :class:`Database` pinned to its own worker thread.

The paper's adaptation is deliberately single-threaded — a selection may
reorganize the column it scans — and PR 6 preserved that invariant by
funnelling every wave through one engine worker.  Scale-out keeps the same
contract per replica: each :class:`EngineReplica` owns a fresh ``Database``
clone and a one-thread :class:`ReplicaWorker`, so all execution *and*
adaptation for that replica happen on its own worker.  Replicas never share
mutable state; divergence between their adaptive layouts is the whole point.

Fault tolerance adds two things here.  First, every replica carries a
health state (:class:`ReplicaHealth`) driven by the router's failure
detector::

    healthy ──failure──> suspect ──more failures / deadline timeout──> quarantined
       ^                    │                                              │
       └────success─────────┘                  rebuilding <──rebuild───────┘
       └──────────────rebuild completes────────────┘

Second, the worker is a plain daemon thread with a **hard-timeout join**
(:meth:`ReplicaWorker.close`): a wedged replica — stuck in an injected hang
or a pathological kernel — can be abandoned without hanging interpreter
shutdown, and a quarantined replica is rebuilt by swapping in a fresh clone
*and* a fresh worker (:meth:`EngineReplica.replace_database`) rather than
waiting on the wedged one.
"""

from __future__ import annotations

import enum
import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

import numpy as np

from repro.engine.database import Database

__all__ = ["EngineReplica", "ReplicaHealth", "ReplicaWorker", "clone_database"]


class ReplicaHealth(enum.Enum):
    """The health state machine of one replica (transitions owned by the Router)."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    REBUILDING = "rebuilding"

    @property
    def routable(self) -> bool:
        """May the router still send this replica traffic?"""
        return self in (ReplicaHealth.HEALTHY, ReplicaHealth.SUSPECT)


def clone_database(source: Database) -> Database:
    """A fresh :class:`Database` with the same tables, data and adaptive setup.

    Data arrays are **copied** (replicas must not share base arrays: each
    replica's adaptive strategy reorganizes its own copy) and adaptive
    strategies are re-enabled from the recorded enable-time configuration,
    so the clone starts from the paper's initial one-segment state and is
    free to diverge from the source as it serves its own workload slice.
    """
    for table in source.table_names():
        if source.catalog.table(table).has_deltas:
            raise ValueError(
                f"cannot clone a database with pending deltas (table {table!r}); "
                "flush or bulk-load first"
            )
    configs = source.adaptive_configs()
    for handle in source.bpm.handles():
        if (handle.table, handle.column) not in configs:
            raise ValueError(
                f"adaptive column {handle.table}.{handle.column} was enabled with "
                "a model instance; only string-named models can be cloned"
            )
    clone = Database(plan_cache_size=source.plan_cache.capacity)
    for table in source.table_names():
        schema = source.catalog.schema(table)
        clone.create_table(
            table, {name: schema.dtype_of(name) for name in schema.column_names}
        )
        data = {
            name: np.array(source.catalog.column(table, name).bind(0).tail, copy=True)
            for name in schema.column_names
        }
        clone.bulk_load(table, data)
    for (table, column), config in configs.items():
        clone.enable_adaptive(table, column, **config)
    return clone


class ReplicaWorker:
    """A single daemon worker thread with ``Executor.submit`` semantics.

    The deliberate differences from ``ThreadPoolExecutor(max_workers=1)``:

    * the thread is a **daemon**, so a wedged task can never block
      interpreter shutdown (CPython joins non-daemon executor threads at
      exit — exactly the hang this class exists to avoid);
    * :meth:`close` joins with a **hard timeout** and reports whether the
      worker exited cleanly; a worker that missed the deadline is flagged
      :attr:`wedged` and simply abandoned.

    ``submit`` returns a :class:`concurrent.futures.Future`, which is all
    ``asyncio``'s ``run_in_executor`` needs — the admission layer treats a
    worker exactly like an executor.
    """

    _SENTINEL = object()

    def __init__(self, index: int) -> None:
        self.index = int(index)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self.wedged = False
        self._thread = threading.Thread(
            target=self._loop,
            name=f"repro-replica-{index}",
            daemon=True,
        )
        self._thread.start()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)`` on the worker thread."""
        if self._closed:
            raise RuntimeError(f"replica worker {self.index} is closed")
        future: Future = Future()
        self._queue.put((future, fn, args))
        return future

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                return
            future, fn, args = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 - delivered via the future
                future.set_exception(exc)

    def close(self, timeout: float = 5.0) -> bool:
        """Stop the worker; join with a hard timeout.  Idempotent.

        Returns ``True`` when the thread exited within ``timeout`` seconds.
        A ``False`` return means the worker is wedged mid-task: it is
        abandoned (daemon threads die with the interpreter) and every future
        still queued behind the wedge is failed by the interpreter exit, not
        by us — callers must not resubmit to a closed worker.
        """
        if self._closed:
            return not self.wedged
        self._closed = True
        self._queue.put(self._SENTINEL)
        self._thread.join(timeout)
        self.wedged = self._thread.is_alive()
        return not self.wedged

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


class EngineReplica:
    """A database clone plus the single worker thread that owns it.

    All calls that touch the replica's engine go through :meth:`submit`
    (async, returns a future) or :meth:`run` (blocks) so they serialize on
    the replica's own thread.  ``queries_served`` / ``busy_seconds`` are only
    ever written from that thread; readers treat them as advisory.

    Health fields live here; *transitions* are owned by the
    :class:`~repro.cluster.Router`'s failure detector, which is the only
    component with the fleet-wide view failover needs.
    """

    def __init__(self, index: int, database: Database, *, read_workers: int = 1) -> None:
        self.index = int(index)
        self.database = database
        # Per-replica snapshot-reader fan-out: the replica's worker thread
        # stays the only adaptation owner; extra threads only serve pinned-
        # snapshot reads inside execute_wave.
        self.read_workers = max(1, int(read_workers))
        database.read_workers = self.read_workers
        self.worker = ReplicaWorker(index)
        self.queries_served = 0
        self.waves_served = 0
        self.busy_seconds = 0.0
        self.health = ReplicaHealth.HEALTHY
        self.consecutive_failures = 0
        self.failures = 0
        self.rebuilds = 0
        self.last_error: str | None = None
        self._closed = False

    @property
    def executor(self) -> ReplicaWorker:
        """The worker, quacking like an executor (``run_in_executor`` target)."""
        return self.worker

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)`` on the replica's worker thread."""
        return self.worker.submit(fn, *args)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the replica's worker thread and wait."""
        return self.submit(fn, *args).result()

    def replace_database(self, database: Database, *, close_timeout: float = 0.2) -> None:
        """Swap in a rebuilt engine on a **fresh** worker (the rebuild path).

        The old worker may be wedged — that is usually why we are here — so
        it gets a token-timeout close and is otherwise abandoned; the new
        worker starts with an empty queue, and the replica's failure
        bookkeeping resets.  The caller (the router) owns the health
        transition back to ``HEALTHY``.
        """
        self.worker.close(timeout=close_timeout)
        self.database = database
        database.read_workers = self.read_workers
        self.worker = ReplicaWorker(self.index)
        self.consecutive_failures = 0
        self.last_error = None
        self.rebuilds += 1

    def close(self, timeout: float = 5.0) -> bool:
        """Shut down the worker thread (idempotent, hard-timeout join)."""
        if not self._closed:
            self._closed = True
            return self.worker.close(timeout=timeout)
        return not self.worker.wedged

    @property
    def wedged(self) -> bool:
        """Did a close miss its join deadline (worker stuck mid-task)?"""
        return self.worker.wedged

    def stats(self) -> dict[str, Any]:
        """Advisory service counters plus health and the divergence summary."""
        qps = self.queries_served / self.busy_seconds if self.busy_seconds else 0.0
        columns: dict[str, dict[str, Any]] = {}
        for handle in self.database.bpm.handles():
            description = handle.adaptive.describe()
            columns[f"{handle.table}.{handle.column}"] = {
                "strategy": handle.strategy,
                "segment_count": description.get("segment_count"),
                "storage_bytes": description.get("storage_bytes"),
                "queries_executed": description.get("queries_executed"),
            }
        return {
            "index": self.index,
            "queries_served": self.queries_served,
            "waves_served": self.waves_served,
            "busy_seconds": self.busy_seconds,
            "qps": qps,
            "health": self.health.value,
            "read_workers": self.read_workers,
            "failures": self.failures,
            "consecutive_failures": self.consecutive_failures,
            "rebuilds": self.rebuilds,
            "last_error": self.last_error,
            "columns": columns,
        }
