"""One engine replica: a :class:`Database` pinned to its own worker thread.

The paper's adaptation is deliberately single-threaded — a selection may
reorganize the column it scans — and PR 6 preserved that invariant by
funnelling every wave through one engine worker.  Scale-out keeps the same
contract per replica: each :class:`EngineReplica` owns a fresh ``Database``
clone and a one-thread executor, so all execution *and* adaptation for that
replica happen on its own worker.  Replicas never share mutable state;
divergence between their adaptive layouts is the whole point.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable

import numpy as np

from repro.engine.database import Database

__all__ = ["EngineReplica", "clone_database"]


def clone_database(source: Database) -> Database:
    """A fresh :class:`Database` with the same tables, data and adaptive setup.

    Data arrays are **copied** (replicas must not share base arrays: each
    replica's adaptive strategy reorganizes its own copy) and adaptive
    strategies are re-enabled from the recorded enable-time configuration,
    so the clone starts from the paper's initial one-segment state and is
    free to diverge from the source as it serves its own workload slice.
    """
    for table in source.table_names():
        if source.catalog.table(table).has_deltas:
            raise ValueError(
                f"cannot clone a database with pending deltas (table {table!r}); "
                "flush or bulk-load first"
            )
    configs = source.adaptive_configs()
    for handle in source.bpm.handles():
        if (handle.table, handle.column) not in configs:
            raise ValueError(
                f"adaptive column {handle.table}.{handle.column} was enabled with "
                "a model instance; only string-named models can be cloned"
            )
    clone = Database(plan_cache_size=source.plan_cache.capacity)
    for table in source.table_names():
        schema = source.catalog.schema(table)
        clone.create_table(
            table, {name: schema.dtype_of(name) for name in schema.column_names}
        )
        data = {
            name: np.array(source.catalog.column(table, name).bind(0).tail, copy=True)
            for name in schema.column_names
        }
        clone.bulk_load(table, data)
    for (table, column), config in configs.items():
        clone.enable_adaptive(table, column, **config)
    return clone


class EngineReplica:
    """A database clone plus the single worker thread that owns it.

    All calls that touch the replica's engine go through :meth:`submit`
    (async, returns a future) or :meth:`run` (blocks) so they serialize on
    the replica's own thread.  ``queries_served`` / ``busy_seconds`` are only
    ever written from that thread; readers treat them as advisory.
    """

    def __init__(self, index: int, database: Database) -> None:
        self.index = int(index)
        self.database = database
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-replica-{index}"
        )
        self.queries_served = 0
        self.waves_served = 0
        self.busy_seconds = 0.0
        self._closed = False

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Schedule ``fn(*args)`` on the replica's worker thread."""
        return self.executor.submit(fn, *args)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the replica's worker thread and wait."""
        return self.submit(fn, *args).result()

    def close(self) -> None:
        """Shut down the worker thread (idempotent)."""
        if not self._closed:
            self._closed = True
            self.executor.shutdown(wait=True)

    def stats(self) -> dict[str, Any]:
        """Advisory service counters plus the divergence summary."""
        qps = self.queries_served / self.busy_seconds if self.busy_seconds else 0.0
        columns: dict[str, dict[str, Any]] = {}
        for handle in self.database.bpm.handles():
            description = handle.adaptive.describe()
            columns[f"{handle.table}.{handle.column}"] = {
                "strategy": handle.strategy,
                "segment_count": description.get("segment_count"),
                "storage_bytes": description.get("storage_bytes"),
                "queries_executed": description.get("queries_executed"),
            }
        return {
            "index": self.index,
            "queries_served": self.queries_served,
            "waves_served": self.waves_served,
            "busy_seconds": self.busy_seconds,
            "qps": qps,
            "columns": columns,
        }
