"""Merge per-replica observability counters into fleet totals.

The admin surface keeps one shape whether the server fronts one engine or N
replicas: ``cache_stats()`` / ``admission_stats()`` return the familiar
top-level counters (now summed across replicas) plus a ``replicas`` list
carrying the per-replica breakdown.  The merge rules are plain:

* counters (hits, misses, waves, …) add;
* ``min``/``max`` take the elementwise min/max;
* ratios (``hit_ratio``, ``mean``) are **recomputed from the merged
  counters**, never averaged — averaging ratios over different volumes is
  how dashboards lie;
* ``capacity`` adds (the fleet really holds N caches) while ``generation``
  reports the replica-0 value (replicas advance in lockstep through DDL
  fan-out).
"""

from __future__ import annotations

from typing import Any

__all__ = ["merge_cache_stats"]


def _merge_level(levels: list[dict[str, Any]]) -> dict[str, Any]:
    merged = {
        key: sum(level.get(key, 0) for level in levels)
        for key in ("hits", "misses", "evictions", "entries")
    }
    lookups = merged["hits"] + merged["misses"]
    merged["hit_ratio"] = merged["hits"] / lookups if lookups else 0.0
    return merged


def _merge_batch(batches: list[dict[str, Any]]) -> dict[str, Any]:
    merged = {
        key: sum(batch.get(key, 0) for batch in batches)
        for key in ("waves", "batched_queries", "fallback_queries")
    }
    sizes = [batch.get("wave_size", {}) for batch in batches]
    mins = [size.get("min") for size in sizes if size.get("min") is not None]
    maxs = [size.get("max") for size in sizes if size.get("max") is not None]
    merged["wave_size"] = {
        "min": min(mins) if mins else None,
        "max": max(maxs) if maxs else None,
        "mean": merged["batched_queries"] / merged["waves"] if merged["waves"] else 0.0,
    }
    histogram: dict[Any, int] = {}
    for batch in batches:
        for bucket, count in batch.get("wave_size_histogram", {}).items():
            histogram[bucket] = histogram.get(bucket, 0) + count
    merged["wave_size_histogram"] = histogram
    return merged


def merge_cache_stats(per_replica: list[dict[str, Any]]) -> dict[str, Any]:
    """Fleet-wide :meth:`Database.cache_stats` from per-replica snapshots.

    The result keeps the single-engine shape (``batch`` / ``levels`` /
    ``total``) with counters summed, and adds ``replicas`` — the unmodified
    per-replica snapshots, in replica order.
    """
    if not per_replica:
        raise ValueError("merge_cache_stats needs at least one replica snapshot")
    level_names: list[str] = []
    for snapshot in per_replica:
        for name in snapshot.get("levels", {}):
            if name not in level_names:
                level_names.append(name)
    totals = [snapshot.get("total", {}) for snapshot in per_replica]
    merged_total = {
        key: sum(total.get(key, 0) for total in totals)
        for key in ("hits", "misses", "evictions", "invalidations", "size", "capacity")
    }
    lookups = merged_total["hits"] + merged_total["misses"]
    merged_total["hit_ratio"] = merged_total["hits"] / lookups if lookups else 0.0
    merged_total["generation"] = totals[0].get("generation", 0)
    return {
        "batch": _merge_batch([snapshot.get("batch", {}) for snapshot in per_replica]),
        "levels": {
            name: _merge_level(
                [
                    snapshot.get("levels", {}).get(name, {})
                    for snapshot in per_replica
                    if name in snapshot.get("levels", {})
                ]
            )
            for name in level_names
        },
        "total": merged_total,
        "replicas": list(per_replica),
    }
