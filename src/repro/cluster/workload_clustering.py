"""Cluster recent query shapes by range similarity.

The router's first job is to discover the *modes* of the workload: groups of
range queries that touch the same region of the attribute domain at similar
widths.  Each query is embedded as a two-dimensional feature vector —
normalized range **center** and **width**, computed from the bound
parameters — and the recent history is partitioned with a small seeded
k-means over numpy (Hang 2024 clusters on query similarity too, but reaches
for ``scipy.cluster``; the feature space here is tiny, so a dozen lines of
Lloyd iterations with a k-means++ seeding are all that is needed and the
dependency stays out).

Everything is deterministic for a fixed ``seed``: CI asserts exact partition
assignments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng

__all__ = ["WorkloadClustering", "cluster_workload", "kmeans", "query_features"]

#: Guard against zero-width domains when normalizing features.
_MIN_SPAN = 1e-12


def query_features(
    lows: np.ndarray,
    highs: np.ndarray,
    *,
    domain_low: float,
    domain_high: float,
) -> np.ndarray:
    """``(n, 2)`` feature rows ``(center, width)`` normalized to the domain.

    Bounds are clipped into ``[domain_low, domain_high]`` first (open-ended
    SQL predicates arrive as ``±inf``), so every feature lands in ``[0, 1]``
    and center and width carry equal weight in the distance metric.
    """
    span = max(float(domain_high) - float(domain_low), _MIN_SPAN)
    lows = np.clip(np.asarray(lows, dtype=np.float64), domain_low, domain_high)
    highs = np.clip(np.asarray(highs, dtype=np.float64), domain_low, domain_high)
    highs = np.maximum(highs, lows)
    centers = ((lows + highs) * 0.5 - domain_low) / span
    widths = (highs - lows) / span
    return np.column_stack([centers, widths])


def kmeans(
    features: np.ndarray,
    n_clusters: int,
    *,
    seed: int | None = None,
    max_iterations: int = 32,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Seeded Lloyd's k-means with k-means++ initialisation.

    Returns ``(centroids, labels, inertia)``.  Deterministic for a fixed
    ``seed``; empty clusters are re-seeded on the point farthest from its
    centroid so exactly ``n_clusters`` centroids always come back.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty feature set")
    n_clusters = min(int(n_clusters), n)
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    rng = make_rng(seed)

    # k-means++ seeding: spread the initial centroids over the data.
    centroids = np.empty((n_clusters, features.shape[1]), dtype=np.float64)
    centroids[0] = features[rng.integers(0, n)]
    closest = ((features - centroids[0]) ** 2).sum(axis=1)
    for k in range(1, n_clusters):
        total = closest.sum()
        if total <= 0.0:  # all remaining points coincide with a centroid
            centroids[k] = features[rng.integers(0, n)]
            continue
        probabilities = closest / total
        centroids[k] = features[rng.choice(n, p=probabilities)]
        closest = np.minimum(closest, ((features - centroids[k]) ** 2).sum(axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        distances = ((features[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        for k in range(n_clusters):
            members = features[new_labels == k]
            if members.size:
                centroids[k] = members.mean(axis=0)
            else:  # re-seed an empty cluster on the worst-served point
                farthest = distances[np.arange(n), new_labels].argmax()
                centroids[k] = features[farthest]
                new_labels[farthest] = k
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
    inertia = float(((features - centroids[labels]) ** 2).sum())
    return centroids, labels, inertia


@dataclass
class WorkloadClustering:
    """A fitted partition of recent query shapes.

    ``assign_one`` is the router's per-query hot path: one vectorized
    distance over ``k`` centroids (k is single digits), a few microseconds.
    """

    centroids: np.ndarray
    labels: np.ndarray = field(repr=False)
    inertia: float
    domain_low: float
    domain_high: float

    @property
    def n_clusters(self) -> int:
        return int(self.centroids.shape[0])

    def sizes(self) -> np.ndarray:
        """Training-set member count per cluster."""
        return np.bincount(self.labels, minlength=self.n_clusters)

    def assign(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for a batch of half-open bounds."""
        features = query_features(
            lows, highs, domain_low=self.domain_low, domain_high=self.domain_high
        )
        distances = ((features[:, None, :] - self.centroids[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def assign_one(self, low: float, high: float) -> int:
        """Nearest-centroid label for one query (router hot path)."""
        span = max(self.domain_high - self.domain_low, _MIN_SPAN)
        low = min(max(low, self.domain_low), self.domain_high)
        high = min(max(high, low), self.domain_high)
        center = ((low + high) * 0.5 - self.domain_low) / span
        width = (high - low) / span
        distances = (self.centroids[:, 0] - center) ** 2 + (
            self.centroids[:, 1] - width
        ) ** 2
        return int(distances.argmin())

    def describe(self) -> dict:
        """Summary for ``router_stats()``: centroids in domain units."""
        span = self.domain_high - self.domain_low
        sizes = self.sizes()
        return {
            "n_clusters": self.n_clusters,
            "inertia": self.inertia,
            "clusters": [
                {
                    "center": float(self.centroids[k, 0] * span + self.domain_low),
                    "width": float(self.centroids[k, 1] * span),
                    "trained_on": int(sizes[k]),
                }
                for k in range(self.n_clusters)
            ],
        }


def cluster_workload(
    lows: np.ndarray,
    highs: np.ndarray,
    n_clusters: int,
    *,
    domain_low: float,
    domain_high: float,
    seed: int | None = None,
) -> WorkloadClustering:
    """Fit a :class:`WorkloadClustering` over recent query bounds."""
    features = query_features(
        lows, highs, domain_low=domain_low, domain_high=domain_high
    )
    centroids, labels, inertia = kmeans(features, n_clusters, seed=seed)
    return WorkloadClustering(
        centroids=centroids,
        labels=labels,
        inertia=inertia,
        domain_low=float(domain_low),
        domain_high=float(domain_high),
    )
