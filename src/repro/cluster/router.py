"""Load-aware routing across N divergently-adapted engine replicas.

The paper adapts one column inside one engine; the :class:`Router` scales
that out following Hang 2024's recipe (SNIPPETS.md ``Tuner``): cluster the
recent workload by query-range similarity, let each replica's adaptive
strategies specialize on its partition, iterate the partition→tune→re-cost
loop until total modeled cost stops dropping (:meth:`Router.retune`,
Algorithm 1's shape), and route load-aware with a hot-query threshold so no
single replica melts under a dominant cluster.

Where Hang shells out to Postgres+hypopg for *estimated* what-if costs, this
engine's substrate is real: routing costs are EWMA'd from observed
``QueryProfile.execute_seconds`` per cluster×replica, and the retune loop's
what-if model reads the actual adaptive layouts — overlapping-segment bytes
for :class:`~repro.core.segmentation.SegmentedColumn`, Algorithm-3 cover
bytes for :class:`~repro.core.replication.ReplicatedColumn` — the same
quantities the paper's Fig 5–16 accounting tracks.

Fault tolerance: the router is also the fleet's failure detector.  Worker
exceptions surfacing from :meth:`execute_wave_on` and per-wave deadline
timeouts reported by the admission layer drive each replica's health state
machine (healthy → suspect → quarantined → rebuilding → healthy, see
:class:`~repro.cluster.replica.ReplicaHealth`); :meth:`route` only considers
routable replicas, quarantining a replica *fails over* its preferred
workload clusters to the sibling with the lowest modeled cost (the EWMA
cluster×replica cost where observed, the per-replica IO EWMA as the
degraded-mode prior), and :meth:`rebuild_replica` restores a quarantined
replica from a healthy sibling via :func:`clone_database` on a fresh worker
before re-admitting it to the fleet.  The last routable replica is never
quarantined — graceful degradation bottoms out at N=1, not N=0.

Threading model: :meth:`route` runs on the caller (event-loop) thread and is
a few microseconds; :meth:`execute_wave_on` runs **on the target replica's
worker thread** (the admission controller submits it to
``Router.executor(i)``), so each replica preserves the single-threaded
piggy-backed-adaptation invariant.  Shared routing state is guarded by one
lock with tiny hold times; rebuilds serialize on their own lock so they
never stall routing.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Sequence

import numpy as np

from repro.api.exceptions import TransientError
from repro.cluster.replica import (
    EngineReplica,
    ReplicaHealth,
    clone_database,
)
from repro.cluster.stats import merge_cache_stats
from repro.cluster.workload_clustering import WorkloadClustering, cluster_workload
from repro.core.ranges import ValueRange
from repro.engine.database import Database
from repro.engine.plan_cache import PreparedPlan

__all__ = ["Router", "what_if_bytes"]

#: Sentinel in the per-prepared spec cache: statement shape is not a range select.
_NOT_A_RANGE = object()


def what_if_bytes(adaptive: Any, low: float, high: float) -> float:
    """Modeled bytes this adaptive column would read for ``[low, high)``.

    Reads only layout metadata — no data is touched and no adaptation runs —
    so it is safe as a cost probe (it still must run on the owning replica's
    thread, since adaptation may be rewriting the layout concurrently).
    """
    domain = adaptive.domain
    query = ValueRange(
        min(max(low, domain.low), domain.high),
        min(max(high, domain.low), domain.high),
    )
    if query.is_empty:
        return 0.0
    meta_index = getattr(adaptive, "meta_index", None)
    if meta_index is not None:  # segmentation-family layout
        return float(meta_index.estimated_footprint_bytes(query))
    get_cover = getattr(adaptive, "get_cover", None)
    if get_cover is not None:  # replication-family layout (Algorithm 3 cover)
        return float(sum(node.size_bytes for node in get_cover(query)))
    return float(adaptive.total_bytes)


class Router:
    """N database replicas behind one load-aware, self-retuning front.

    The router quacks like a :class:`Database` for the server's admin and
    execution surface — DDL and data loads fan out to every routable replica,
    reads are routed — so :class:`~repro.server.ReproServer` keeps a single
    code path whether it fronts one engine or a fleet.

    Parameters
    ----------
    database:
        The seed engine; it becomes replica 0 as-is (no copy) and is cloned
        ``n_replicas - 1`` times (data copied, adaptive strategies re-enabled
        fresh so each clone diverges on its own traffic).
    n_replicas:
        Fleet size.
    n_clusters:
        Workload clusters for :meth:`retune`; defaults to ``n_replicas``.
    hot_query_threshold:
        A cluster whose share of recent routed traffic exceeds this fraction
        is *hot*: its queries round-robin across all replicas instead of
        sticking to the best-fit replica.
    ewma_alpha:
        Smoothing for the observed per-cluster×replica cost model.
    history:
        How many recent query bounds feed :meth:`retune`.
    quarantine_after:
        Consecutive wave failures that escalate a suspect replica to
        quarantined (deadline timeouts quarantine immediately — the worker
        is presumed wedged).
    join_timeout_s:
        Hard per-replica join deadline in :meth:`close`.
    injector:
        Optional :class:`~repro.fault.FaultInjector`; when armed, every wave
        fires the ``wave.execute`` site with ``replica=<index>`` context on
        the target replica's worker thread.
    seed:
        Clustering determinism.
    """

    def __init__(
        self,
        database: Database,
        n_replicas: int = 2,
        *,
        n_clusters: int | None = None,
        hot_query_threshold: float = 0.5,
        ewma_alpha: float = 0.2,
        history: int = 4096,
        share_window: int = 128,
        quarantine_after: int = 2,
        retune_cooldown_s: float = 2.0,
        retune_min_new_routes: int = 0,
        join_timeout_s: float = 5.0,
        injector: Any | None = None,
        seed: int | None = 0,
        read_workers: int = 1,
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if not 0.0 < hot_query_threshold <= 1.0:
            raise ValueError("hot_query_threshold must be in (0, 1]")
        if quarantine_after < 1:
            raise ValueError(f"quarantine_after must be >= 1, got {quarantine_after}")
        if retune_cooldown_s < 0.0:
            raise ValueError("retune_cooldown_s must be >= 0")
        self.hot_query_threshold = float(hot_query_threshold)
        self.ewma_alpha = float(ewma_alpha)
        self.n_clusters = int(n_clusters) if n_clusters else int(n_replicas)
        self.quarantine_after = int(quarantine_after)
        self.retune_cooldown_s = float(retune_cooldown_s)
        self.retune_min_new_routes = int(retune_min_new_routes)
        self.join_timeout_s = float(join_timeout_s)
        self.injector = injector
        self.seed = seed
        self.read_workers = max(1, int(read_workers))
        self.replicas: list[EngineReplica] = [
            EngineReplica(0, database, read_workers=self.read_workers)
        ]
        for index in range(1, n_replicas):
            self.replicas.append(
                EngineReplica(
                    index, clone_database(database), read_workers=self.read_workers
                )
            )

        self._lock = threading.Lock()
        self._rebuild_lock = threading.Lock()
        self._clustering: WorkloadClustering | None = None
        self._preferred: dict[int, int] = {}  # cluster -> best-fit replica
        self._cost: dict[int, list[float | None]] = {}  # EWMA seconds per cluster×replica
        self._shares: list[float] = []  # recent traffic share per cluster
        self._share_beta = 1.0 / max(int(share_window), 1)
        self._history: list[tuple[float, float]] = []
        self._history_cap = int(history)
        self._spec_cache: dict[int, Any] = {}  # id(prepared) -> _BatchSpec | sentinel
        self._rr = itertools.count()
        self._routed = 0
        self._hot_routes = 0
        self._unclustered_routes = 0
        self._retunes = 0
        self._last_retune: dict[str, Any] | None = None
        self._last_retune_at: float | None = None
        self._routed_at_last_retune = 0
        self._retune_history: list[dict[str, Any]] = []
        self._reads_seen: list[float] = [0.0] * n_replicas
        self._io_ewma: list[float] = [0.0] * n_replicas
        self._health = {
            "wave_failures": 0,
            "timeouts": 0,
            "quarantines": 0,
            "quarantine_vetoes": 0,
            "failovers": 0,
            "clusters_failed_over": 0,
            "rebuilds": 0,
            "rebuild_failures": 0,
        }
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def database(self) -> Database:
        """Replica 0's engine (the seed database)."""
        return self.replicas[0].database

    @property
    def plan_cache(self):
        """The lead replica's plan cache — the fleet's canonical generation counter.

        DDL fans out to every routable replica, so generations advance in
        lockstep; per-replica plans are resolved lazily by SQL text at wave
        time.
        """
        return self._lead_replica().database.plan_cache

    def executor(self, index: int):
        """The single-thread worker owning replica ``index``."""
        return self.replicas[index].executor

    def close(self, timeout: float | None = None) -> bool:
        """Shut down every replica worker (idempotent, hard-timeout joins).

        Returns ``True`` when every worker joined within its deadline; a
        wedged worker — stuck in an injected hang or a runaway kernel — is
        abandoned (daemon thread) instead of hanging interpreter shutdown,
        and the method still returns.
        """
        join_timeout = self.join_timeout_s if timeout is None else float(timeout)
        if self._closed:
            return not any(replica.wedged for replica in self.replicas)
        self._closed = True
        clean = True
        for replica in self.replicas:
            clean = replica.close(timeout=join_timeout) and clean
        return clean

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _lead_replica(self) -> EngineReplica:
        """The first routable replica (plan-cache authority, literal executes)."""
        for replica in self.replicas:
            if replica.health.routable:
                return replica
        raise TransientError("no routable replicas (entire fleet is quarantined)")

    def _routable_indices_locked(self) -> list[int]:
        return [
            index
            for index, replica in enumerate(self.replicas)
            if replica.health.routable
        ]

    def healthy_indices(self) -> list[int]:
        """Indices the router may currently send traffic to."""
        with self._lock:
            return self._routable_indices_locked()

    # -- bounds extraction ----------------------------------------------------

    def _bounds_of(
        self, prepared: PreparedPlan, values: tuple[float, ...]
    ) -> tuple[float, float] | None:
        """Half-open ``[low, high)`` of a bound range select, else ``None``.

        The statement-shape decision is cached per prepared plan, so the
        per-query work is one template substitution — no parsing.
        """
        database = self.replicas[0].database
        key = id(prepared)
        template = self._spec_cache.get(key)
        if template is None:
            template = (
                database._batch_spec(prepared.statement)
                if database._batchable(prepared.statement)
                else _NOT_A_RANGE
            )
            if len(self._spec_cache) > 4096:  # stale prepared ids; cheap reset
                self._spec_cache.clear()
            self._spec_cache[key] = template
        if template is _NOT_A_RANGE:
            return None
        try:
            bounds = template.with_bound_values(values).bounds
        except (TypeError, ValueError, IndexError):
            return None
        return Database._half_open_floats(*bounds)

    # -- routing (event-loop thread, hot path) --------------------------------

    def route(self, prepared: PreparedPlan, values: tuple[float, ...]) -> int:
        """Pick the replica for one bound statement.

        Best-fit on the observed EWMA cost of the query's cluster; a cluster
        above the hot threshold (or anything unclustered) spreads
        round-robin.  Only routable replicas (healthy or suspect) are
        considered — a quarantined replica's traffic lands on its failover
        siblings until the rebuild re-admits it.
        """
        bounds = self._bounds_of(prepared, values)
        with self._lock:
            eligible = self._routable_indices_locked()
            if not eligible:
                raise TransientError(
                    "no routable replicas (entire fleet is quarantined)"
                )
            self._routed += 1
            clustering = self._clustering
            if bounds is not None and len(self._history) < self._history_cap:
                self._history.append(bounds)
            if bounds is None or clustering is None:
                self._unclustered_routes += 1
                return eligible[next(self._rr) % len(eligible)]
            cluster = clustering.assign_one(*bounds)
            self._touch_share(cluster)
            if self._shares[cluster] > self.hot_query_threshold:
                self._hot_routes += 1
                return eligible[next(self._rr) % len(eligible)]
            costs = self._cost.get(cluster)
            best: tuple[float, int] | None = None
            if costs is not None:
                for index in eligible:
                    cost = costs[index] if index < len(costs) else None
                    if cost is not None and (best is None or cost < best[0]):
                        best = (cost, index)
            if best is not None:
                return best[1]
            preferred = self._preferred.get(cluster)
            if preferred is not None and preferred in eligible:
                return preferred
            return eligible[next(self._rr) % len(eligible)]

    def _touch_share(self, cluster: int) -> None:
        """EWMA traffic share per cluster (lock held)."""
        beta = self._share_beta
        shares = self._shares
        if len(shares) <= cluster:
            shares.extend([0.0] * (cluster + 1 - len(shares)))
        for index in range(len(shares)):
            shares[index] *= 1.0 - beta
        shares[cluster] += beta

    # -- failure detection & failover ------------------------------------------

    def record_wave_success(self, index: int) -> None:
        """A wave completed on replica ``index``: clear suspicion.

        Quarantined and rebuilding replicas stay put — a *stale* wave
        finishing late on an abandoned worker must not sneak a replica back
        into rotation around the rebuild.
        """
        replica = self.replicas[index]
        with self._lock:
            replica.consecutive_failures = 0
            if replica.health is ReplicaHealth.SUSPECT:
                replica.health = ReplicaHealth.HEALTHY

    def record_wave_failure(self, index: int, exc: BaseException) -> ReplicaHealth:
        """A wave died on replica ``index``: healthy → suspect → quarantined."""
        replica = self.replicas[index]
        with self._lock:
            self._health["wave_failures"] += 1
            replica.failures += 1
            replica.consecutive_failures += 1
            replica.last_error = f"{type(exc).__name__}: {exc}"
            if replica.health is ReplicaHealth.HEALTHY:
                replica.health = ReplicaHealth.SUSPECT
            if (
                replica.health is ReplicaHealth.SUSPECT
                and replica.consecutive_failures >= self.quarantine_after
            ):
                self._quarantine_locked(index)
            return replica.health

    def record_wave_timeout(self, index: int) -> ReplicaHealth:
        """A wave blew its deadline on replica ``index``: quarantine immediately.

        A timeout means the worker is presumed wedged — there is no point in
        ``quarantine_after`` more chances, every one of them would queue
        behind the wedge.
        """
        replica = self.replicas[index]
        with self._lock:
            self._health["timeouts"] += 1
            replica.failures += 1
            replica.consecutive_failures += 1
            replica.last_error = "wave deadline expired (worker presumed wedged)"
            if replica.health.routable:
                self._quarantine_locked(index)
            return replica.health

    def quarantine_replica(self, index: int) -> bool:
        """Take replica ``index`` out of rotation and fail over its clusters.

        Public for operational tooling, benchmarks (degraded-mode
        throughput) and tests; the failure detector calls the same internal
        transition.  Refuses — returning ``False`` — when this is the last
        routable replica: graceful degradation bottoms out at one replica.
        """
        with self._lock:
            return self._quarantine_locked(index)

    def _quarantine_locked(self, index: int) -> bool:
        """QUARANTINE + failover (lock held).  False when vetoed (last replica)."""
        replica = self.replicas[index]
        if not replica.health.routable:
            return replica.health is ReplicaHealth.QUARANTINED
        survivors = [
            i for i in self._routable_indices_locked() if i != index
        ]
        if not survivors:
            self._health["quarantine_vetoes"] += 1
            return False
        replica.health = ReplicaHealth.QUARANTINED
        self._health["quarantines"] += 1
        self._health["failovers"] += 1
        # Failover: every cluster that preferred this replica moves to the
        # surviving sibling with the lowest modeled cost — the observed EWMA
        # for that cluster where we have one, the per-replica IO EWMA (the
        # what-if-informed bytes-per-query estimate) as the degraded prior.
        for cluster, target in list(self._preferred.items()):
            if target != index:
                continue
            self._preferred[cluster] = self._failover_target_locked(cluster, survivors)
            self._health["clusters_failed_over"] += 1
        return True

    def _failover_target_locked(self, cluster: int, survivors: list[int]) -> int:
        """The surviving replica with the lowest modeled cost for ``cluster``."""
        costs = self._cost.get(cluster)
        if costs:
            observed = [
                (costs[i], i)
                for i in survivors
                if i < len(costs) and costs[i] is not None
            ]
            if observed:
                return min(observed)[1]
        modeled = [
            (self._io_ewma[i] if self._io_ewma[i] > 0.0 else float("inf"), i)
            for i in survivors
        ]
        return min(modeled)[1]

    # -- rebuild ----------------------------------------------------------------

    def rebuild_replica(self, index: int, *, donor: int | None = None) -> dict[str, Any]:
        """Restore a quarantined replica from a healthy sibling and re-admit it.

        The donor's engine is cloned **on the donor's own worker thread**
        (:func:`clone_database` serialized with its waves, so the snapshot is
        consistent), then swapped in on a fresh worker — the quarantined
        replica's old worker may be wedged and is abandoned.  The rebuilt
        replica starts from the paper's initial one-segment state (plus the
        donor's data) and re-diverges on its own traffic; its stale
        cluster-cost EWMAs are dropped so the router re-learns it.

        Rebuilds serialize on their own lock.  Returns a report dict;
        ``{"rebuilt": False, "reason": ...}`` when the replica is not
        quarantined or no routable donor exists (the replica then *stays*
        quarantined for a later attempt).
        """
        with self._rebuild_lock:
            replica = self.replicas[index]
            with self._lock:
                if replica.health is not ReplicaHealth.QUARANTINED:
                    return {
                        "rebuilt": False,
                        "reason": f"replica {index} is {replica.health.value}, "
                                  "not quarantined",
                    }
                if donor is None:
                    healthy = [
                        i
                        for i, sibling in enumerate(self.replicas)
                        if i != index and sibling.health is ReplicaHealth.HEALTHY
                    ]
                    routable = [
                        i
                        for i in self._routable_indices_locked()
                        if i != index
                    ]
                    candidates = healthy or routable
                    if not candidates:
                        return {"rebuilt": False, "reason": "no routable donor"}
                    donor = candidates[0]
                replica.health = ReplicaHealth.REBUILDING
            try:
                clone = self.replicas[donor].run(
                    clone_database, self.replicas[donor].database
                )
            except BaseException as exc:  # noqa: BLE001 - stay quarantined, retryable
                with self._lock:
                    replica.health = ReplicaHealth.QUARANTINED
                    self._health["rebuild_failures"] += 1
                return {
                    "rebuilt": False,
                    "reason": f"clone from replica {donor} failed: {exc}",
                }
            replica.replace_database(clone)
            with self._lock:
                replica.health = ReplicaHealth.HEALTHY
                self._reads_seen[index] = 0.0
                self._io_ewma[index] = 0.0
                for costs in self._cost.values():
                    if index < len(costs):
                        costs[index] = None  # stale EWMA of the dead layout
                self._health["rebuilds"] += 1
            return {"rebuilt": True, "replica": index, "donor": donor}

    # -- execution (replica worker threads) -----------------------------------

    def execute_wave_on(
        self,
        index: int,
        payload: Sequence[tuple[PreparedPlan, tuple[float, ...]]],
    ) -> list[Any]:
        """Run one admission wave on replica ``index`` (on its worker thread).

        Prepared plans were compiled against replica 0's catalog; they are
        re-resolved here by SQL text — a warm plan-cache dict hit per
        distinct statement — so every replica executes its *own* compiled
        plan against its *own* diverged layout.

        Per-member errors are **isolated** (``execute_wave(...,
        isolate=True)``): a poison member comes back as an exception instance
        in its slot while the rest of the wave completes.  Failures of the
        wave as a whole — an injected crash, a worker exception, anything
        thrown before member execution — are recorded with the failure
        detector and re-raised as :class:`TransientError` so the admission
        layer retries the wave on a failover replica.
        """
        replica = self.replicas[index]
        database = replica.database
        try:
            if self.injector is not None:
                self.injector.fire("wave.execute", replica=index)
            started = time.perf_counter()
            local = [
                (database.prepare_statement(prepared.sql), values)
                for prepared, values in payload
            ]
            results = database.execute_wave(local, isolate=True)
        except TransientError:
            self.record_wave_failure(index, TransientError("replica worker failed"))
            raise
        except Exception as exc:
            self.record_wave_failure(index, exc)
            raise TransientError(f"replica {index} failed mid-wave: {exc}") from exc
        elapsed = time.perf_counter() - started
        replica.queries_served += sum(
            1 for result in results if not isinstance(result, BaseException)
        )
        replica.waves_served += 1
        replica.busy_seconds += elapsed
        self.record_wave_success(index)
        self._observe(index, payload, results)
        return results

    def execute_prepared(self, prepared: PreparedPlan, values: tuple[float, ...]):
        """Route one bound statement and run it on its replica's thread."""
        index = self.route(prepared, values)
        result = self.replicas[index].run(
            self.execute_wave_on, index, [(prepared, tuple(values))]
        )[0]
        if isinstance(result, BaseException):
            raise result
        return result

    def _observe(
        self,
        index: int,
        payload: Sequence[tuple[PreparedPlan, tuple[float, ...]]],
        results: Sequence[Any],
    ) -> None:
        """Feed the cost model from one executed wave (replica thread)."""
        reads = 0.0
        for handle in self.replicas[index].database.bpm.handles():
            accountant = getattr(handle.adaptive, "accountant", None)
            if accountant is not None:
                reads += float(accountant.total_reads_bytes)
        alpha = self.ewma_alpha
        with self._lock:
            clustering = self._clustering
            delta = max(reads - self._reads_seen[index], 0.0)
            self._reads_seen[index] = reads
            completed = [
                result for result in results if not isinstance(result, BaseException)
            ]
            if completed:
                per_query = delta / len(completed)
                previous = self._io_ewma[index]
                self._io_ewma[index] = (
                    per_query if previous == 0.0
                    else (1.0 - alpha) * previous + alpha * per_query
                )
            if clustering is None:
                return
            for (prepared, values), result in zip(payload, results):
                if isinstance(result, BaseException):
                    continue  # an isolated poison member carries no profile
                bounds = self._bounds_of(prepared, values)
                if bounds is None:
                    continue
                profile = getattr(result, "profile", None)
                seconds = getattr(profile, "execute_seconds", None)
                if seconds is None:
                    seconds = getattr(result, "total_seconds", 0.0)
                cluster = clustering.assign_one(*bounds)
                costs = self._cost.setdefault(
                    cluster, [None] * len(self.replicas)
                )
                previous = costs[index]
                costs[index] = (
                    float(seconds)
                    if previous is None
                    else (1.0 - alpha) * previous + alpha * float(seconds)
                )

    # -- retune (Hang 2024 Algorithm 1 shape) ---------------------------------

    def retune(
        self,
        *,
        n_clusters: int | None = None,
        max_iterations: int = 6,
        sample_per_cluster: int = 48,
        replay: bool = True,
        force: bool = False,
    ) -> dict[str, Any]:
        """Re-partition the workload and re-specialize the fleet.

        1. cluster the recent query history by range similarity;
        2. seed a balanced cluster→replica assignment;
        3. loop: *tune* — replay each cluster's sample on its assigned
           replica (adaptation specializes the layout) — then *re-cost* the
           what-if matrix over the diverged layouts and re-assign every
           cluster best-fit; stop when total modeled cost stops dropping.

        Only routable replicas participate: a quarantined replica's wedged
        worker must not stall the tune loop, and assigning clusters to it
        would undo its failover.  Returns a report with the modeled cost
        trajectory; the routing table and cost model are swapped atomically
        at the end.

        **Hysteresis guard** (so a controller-driven loop cannot oscillate):
        within ``retune_cooldown_s`` seconds of the previous retune, or
        before ``retune_min_new_routes`` fresh queries have been routed
        since it, the call is refused with ``{"retuned": False, "reason":
        "cooldown"/"hysteresis", ...}``.  ``force=True`` bypasses the guard
        (operator intervention).  Every attempt — refused or executed — is
        recorded in ``router_stats()["retune_history"]``.
        """
        now = time.monotonic()
        with self._lock:
            if not force:
                refusal: dict[str, Any] | None = None
                if (
                    self._last_retune_at is not None
                    and now - self._last_retune_at < self.retune_cooldown_s
                ):
                    refusal = {
                        "retuned": False,
                        "reason": "cooldown",
                        "cooldown_s": self.retune_cooldown_s,
                        "elapsed_s": now - self._last_retune_at,
                    }
                elif (
                    self._last_retune_at is not None
                    and self._routed - self._routed_at_last_retune
                    < self.retune_min_new_routes
                ):
                    refusal = {
                        "retuned": False,
                        "reason": "hysteresis",
                        "min_new_routes": self.retune_min_new_routes,
                        "new_routes": self._routed - self._routed_at_last_retune,
                    }
                if refusal is not None:
                    self._record_retune_locked(refusal, now)
                    return refusal
            history = list(self._history)
            active = [
                self.replicas[index] for index in self._routable_indices_locked()
            ]
        if not active:
            report = {"retuned": False, "reason": "no routable replicas"}
            with self._lock:
                self._record_retune_locked(report, now)
            return report
        minimum = max(len(active), 2)
        if len(history) < minimum:
            report = {
                "retuned": False,
                "reason": f"need >= {minimum} routed range queries, have {len(history)}",
            }
            with self._lock:
                self._record_retune_locked(report, now)
            return report
        lows = np.asarray([low for low, _ in history], dtype=np.float64)
        highs = np.asarray([high for _, high in history], dtype=np.float64)
        domain = self._fleet_domain(lows, highs)
        clustering = cluster_workload(
            lows,
            highs,
            n_clusters or self.n_clusters,
            domain_low=domain[0],
            domain_high=domain[1],
            seed=self.seed,
        )
        labels = clustering.labels
        samples: list[list[tuple[float, float]]] = []
        for cluster in range(clustering.n_clusters):
            member_indices = np.flatnonzero(labels == cluster)[:sample_per_cluster]
            samples.append([history[i] for i in member_indices])
        sizes = clustering.sizes()

        # Balanced seed: biggest clusters first, dealt round-robin over the
        # routable fleet.
        order = sorted(range(clustering.n_clusters), key=lambda c: -sizes[c])
        assignment = {
            cluster: active[position % len(active)].index
            for position, cluster in enumerate(order)
        }

        def cost_matrix() -> dict[int, list[float]]:
            futures = [
                replica.submit(self._modeled_costs, replica, samples)
                for replica in active
            ]
            return {
                replica.index: future.result()
                for replica, future in zip(active, futures)
            }

        matrix = cost_matrix()
        trajectory = [self._total_cost(matrix, assignment, sizes)]
        best_total = trajectory[0]
        best_assignment = dict(assignment)
        for _ in range(max_iterations):
            if replay:
                futures = []
                for replica in active:
                    bounds = [
                        pair
                        for cluster, target in assignment.items()
                        if target == replica.index
                        for pair in samples[cluster]
                    ]
                    if bounds:
                        futures.append(replica.submit(self._replay, replica, bounds))
                for future in futures:
                    future.result()
            matrix = cost_matrix()
            assignment = {
                cluster: min(
                    (matrix[replica.index][cluster], replica.index)
                    for replica in active
                )[1]
                for cluster in range(clustering.n_clusters)
            }
            total = self._total_cost(matrix, assignment, sizes)
            trajectory.append(total)
            if total < best_total * (1.0 - 1e-3):
                best_total = total
                best_assignment = dict(assignment)
            else:
                break  # Algorithm 1: stop when cost stops dropping

        report = {
            "retuned": True,
            "n_clusters": clustering.n_clusters,
            "history": len(history),
            "replicas": [replica.index for replica in active],
            "initial_cost_bytes": trajectory[0],
            "final_cost_bytes": best_total,
            "improved": best_total < trajectory[0],
            "cost_trajectory_bytes": trajectory,
            "assignment": {int(c): int(r) for c, r in best_assignment.items()},
            "clustering": clustering.describe(),
        }
        with self._lock:
            self._clustering = clustering
            self._preferred = dict(best_assignment)
            self._cost = {}
            total_trained = float(sizes.sum()) or 1.0
            self._shares = [float(s) / total_trained for s in sizes]
            self._retunes += 1
            self._last_retune = report
            self._last_retune_at = time.monotonic()
            self._routed_at_last_retune = self._routed
            self._record_retune_locked(report, now)
        return report

    def _record_retune_locked(self, report: dict[str, Any], at: float) -> None:
        """Append a bounded ``retune_history`` entry (caller holds the lock)."""
        entry = {
            "at_monotonic_s": at,
            "routed": self._routed,
            "retuned": bool(report.get("retuned")),
        }
        if report.get("retuned"):
            entry["initial_cost_bytes"] = report.get("initial_cost_bytes")
            entry["final_cost_bytes"] = report.get("final_cost_bytes")
            entry["improved"] = report.get("improved")
        else:
            entry["reason"] = report.get("reason")
        self._retune_history.append(entry)
        if len(self._retune_history) > 64:
            del self._retune_history[: len(self._retune_history) - 64]

    def _fleet_domain(self, lows: np.ndarray, highs: np.ndarray) -> tuple[float, float]:
        """Feature-normalization domain: the managed columns', else the data's."""
        for handle in self.replicas[0].database.bpm.handles():
            domain = getattr(handle.adaptive, "domain", None)
            if domain is not None:
                return float(domain.low), float(domain.high)
        finite_lows = lows[np.isfinite(lows)]
        finite_highs = highs[np.isfinite(highs)]
        low = float(finite_lows.min()) if finite_lows.size else 0.0
        high = float(finite_highs.max()) if finite_highs.size else 1.0
        return low, max(high, low + 1e-9)

    @staticmethod
    def _modeled_costs(
        replica: EngineReplica, samples: list[list[tuple[float, float]]]
    ) -> list[float]:
        """Mean what-if bytes per cluster on this replica (replica thread)."""
        handles = list(replica.database.bpm.handles())
        costs: list[float] = []
        for sample in samples:
            if not sample or not handles:
                costs.append(0.0)
                continue
            total = 0.0
            for low, high in sample:
                for handle in handles:
                    total += what_if_bytes(handle.adaptive, low, high)
            costs.append(total / len(sample))
        return costs

    @staticmethod
    def _replay(replica: EngineReplica, bounds: list[tuple[float, float]]) -> None:
        """Replay sampled queries so adaptation specializes (replica thread)."""
        for handle in replica.database.bpm.handles():
            adaptive = handle.adaptive
            domain = adaptive.domain
            for low, high in bounds:
                low = min(max(low, domain.low), domain.high)
                high = min(max(high, low), domain.high)
                if high > low:
                    adaptive.select(low, high)

    @staticmethod
    def _total_cost(
        matrix: dict[int, list[float]], assignment: dict[int, int], sizes: np.ndarray
    ) -> float:
        """Traffic-weighted modeled cost of an assignment."""
        return float(
            sum(
                sizes[cluster] * matrix[replica][cluster]
                for cluster, replica in assignment.items()
            )
        )

    # -- database-compatible surface (fan-out & delegation) --------------------

    def _fan_out(self, op: str, *args: Any, copy_arrays: bool = False) -> list[Any]:
        """Run ``database.<op>(*args)`` on every routable replica, concurrently.

        Quarantined replicas are skipped — their workers may be wedged, and
        their state is replaced wholesale by the next rebuild (the donor has
        the DDL applied, so the clone carries it over).
        """
        futures = []
        targets = [
            replica for replica in self.replicas if replica.health.routable
        ]
        if not targets:
            raise TransientError("no routable replicas (entire fleet is quarantined)")
        for replica in targets:
            replica_args = args
            if copy_arrays and replica.index > 0 and args:
                # Replicas must not share mutable base arrays.
                replica_args = tuple(
                    {
                        key: np.array(value, copy=True)
                        for key, value in argument.items()
                    }
                    if isinstance(argument, dict)
                    else argument
                    for argument in args
                )
            futures.append(
                replica.submit(getattr(replica.database, op), *replica_args)
            )
        return [future.result() for future in futures]

    def create_table(self, name: str, columns: dict[str, Any]) -> None:
        self._fan_out("create_table", name, columns)

    def drop_table(self, name: str) -> None:
        self._fan_out("drop_table", name)
        with self._lock:
            self._spec_cache.clear()

    def bulk_load(self, table: str, data: dict[str, Any]) -> None:
        self._fan_out("bulk_load", table, data, copy_arrays=True)

    def insert(self, table: str, data: dict[str, Any]) -> None:
        self._fan_out("insert", table, data, copy_arrays=True)

    def delete(self, table: str, oids: Any) -> None:
        self._fan_out("delete", table, oids)

    def enable_adaptive(self, table: str, column: str, **options: Any) -> Any:
        futures = [
            replica.submit(
                lambda db=replica.database: db.enable_adaptive(table, column, **options)
            )
            for replica in self.replicas
            if replica.health.routable
        ]
        return [future.result() for future in futures][0]

    def disable_adaptive(self, table: str, column: str) -> None:
        self._fan_out("disable_adaptive", table, column)

    def table_names(self) -> list[str]:
        return self._lead_replica().database.table_names()

    def prepare_statement(self, sql: str) -> PreparedPlan:
        lead = self._lead_replica()
        return lead.run(lead.database.prepare_statement, sql)

    def execute(self, sql: str):
        """Route a literal statement round-robin onto a routable replica worker."""
        eligible = self.healthy_indices()
        if not eligible:
            raise TransientError("no routable replicas (entire fleet is quarantined)")
        index = eligible[next(self._rr) % len(eligible)]
        replica = self.replicas[index]
        return replica.run(replica.database.execute, sql)

    def explain(self, sql: str) -> str:
        lead = self._lead_replica()
        return lead.run(lead.database.explain, sql)

    def cache_stats(self) -> dict[str, Any]:
        """Fleet cache counters: single-engine shape + per-replica breakdown."""
        return merge_cache_stats(
            [replica.database.cache_stats() for replica in self.replicas]
        )

    # -- observability ---------------------------------------------------------

    def router_stats(self) -> dict[str, Any]:
        """Routing, cost-model, health and divergence summary for the admin surface."""
        with self._lock:
            clustering = self._clustering
            stats: dict[str, Any] = {
                "replicas": [replica.stats() for replica in self.replicas],
                "routing": {
                    "routed": self._routed,
                    "hot_routes": self._hot_routes,
                    "unclustered_routes": self._unclustered_routes,
                    "history": len(self._history),
                    "hot_query_threshold": self.hot_query_threshold,
                },
                "health": {
                    "states": [
                        replica.health.value for replica in self.replicas
                    ],
                    "routable": self._routable_indices_locked(),
                    "quarantine_after": self.quarantine_after,
                    **dict(self._health),
                },
                "cost_model": {
                    "ewma_alpha": self.ewma_alpha,
                    "observed": {
                        str(cluster): [
                            None if cost is None else float(cost) for cost in costs
                        ]
                        for cluster, costs in self._cost.items()
                    },
                    "io_ewma_bytes_per_query": list(self._io_ewma),
                },
                "clusters": clustering.describe() if clustering else None,
                "assignment": {str(c): r for c, r in self._preferred.items()},
                "shares": list(self._shares),
                "retunes": self._retunes,
                "last_retune": self._last_retune,
                "retune_history": [dict(entry) for entry in self._retune_history],
                "retune_guard": {
                    "cooldown_s": self.retune_cooldown_s,
                    "min_new_routes": self.retune_min_new_routes,
                    "last_retune_at_monotonic_s": self._last_retune_at,
                    "routed_since_last_retune": (
                        self._routed - self._routed_at_last_retune
                    ),
                },
            }
        return stats

    # ------------------------------------------------------------------
    # Self-tuning knob surface
    # ------------------------------------------------------------------

    def knob_registry(self):
        """Build the fleet-wide :class:`~repro.tuning.knobs.KnobRegistry`.

        Covers the router's own knobs (``hot_query_threshold``,
        ``router_ewma_alpha``) plus the engine knobs of every routable
        replica, with a single apply fanned out across the fleet so the
        replicas never diverge on layout policy.  Built fresh per call —
        columns made adaptive after the last call are picked up.
        """
        from repro.tuning.knobs import server_knob_registry

        return server_knob_registry(self)

    def knobs(self) -> dict[str, float]:
        """Current value of every registered fleet knob."""
        return self.knob_registry().knobs()

    def set_knobs(self, values: dict[str, Any]) -> dict[str, float]:
        """Validate and apply knob changes fleet-wide (all-or-nothing)."""
        return self.knob_registry().set_knobs(values)
