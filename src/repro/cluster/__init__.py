"""Scale-out: workload-clustered engine replicas with load-aware routing.

``Router`` fronts N :class:`~repro.engine.database.Database` replicas, each
pinned to its own worker thread (the single-threaded piggy-backed-adaptation
invariant holds per replica).  ``workload_clustering`` partitions recent
query shapes by range similarity; ``Router.retune()`` iterates Hang 2024's
partition→tune→re-cost loop until total modeled cost stops dropping, so the
replicas' adaptive layouts *diverge on purpose* — each serves the slice of
the workload it is organized for.

The router doubles as the fleet's failure detector: each replica carries a
``ReplicaHealth`` state machine (healthy → suspect → quarantined →
rebuilding → healthy), quarantining fails a replica's workload clusters over
to the cheapest surviving sibling, and ``Router.rebuild_replica`` restores
it from a healthy donor via ``clone_database`` before re-admission.
"""

from repro.cluster.replica import (
    EngineReplica,
    ReplicaHealth,
    ReplicaWorker,
    clone_database,
)
from repro.cluster.router import Router, what_if_bytes
from repro.cluster.stats import merge_cache_stats
from repro.cluster.workload_clustering import (
    WorkloadClustering,
    cluster_workload,
    kmeans,
    query_features,
)

__all__ = [
    "EngineReplica",
    "ReplicaHealth",
    "ReplicaWorker",
    "Router",
    "WorkloadClustering",
    "clone_database",
    "cluster_workload",
    "kmeans",
    "merge_cache_stats",
    "query_features",
    "what_if_bytes",
]
