"""repro — a reproduction of "Self-organizing Strategies for a Column-store Database".

The package implements the paper's two workload-driven self-organizing
techniques for a column-store — **adaptive segmentation** and **adaptive
replication** — together with the substrates they rely on: a MonetDB-like
column-store engine (BAT storage, a MAL interpreter, a tactical optimizer
with a segment optimizer and a SQL front-end), an architecture-conscious
simulator with a constrained memory buffer, workload generators and a
benchmark harness reproducing every figure and table of the evaluation.

Quickstart
----------

The client surface is DB-API 2.0 (PEP 249): ``repro.connect()`` opens a
connection whose cursors and prepared statements bind parameters straight
into compiled plans::

    import repro

    with repro.connect() as connection:
        connection.admin.create_table("p", {"objid": "int64", "ra": "float64"})
        connection.admin.bulk_load("p", {"objid": objids, "ra": ra_values})
        connection.admin.enable_adaptive("p", "ra", strategy="segmentation")
        cursor = connection.cursor()
        cursor.execute("SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (205.1, 205.12))
        rows = cursor.fetchall()

The physical layer is importable directly as well:

>>> import numpy as np
>>> from repro import SegmentedColumn, AdaptivePageModel
>>> values = np.random.default_rng(0).integers(0, 1_000_000, size=100_000).astype(np.int32)
>>> column = SegmentedColumn(values, model=AdaptivePageModel(m_min=3072, m_max=12288))
>>> result = column.select(100_000, 200_000)
>>> result.count == int(((values >= 100_000) & (values < 200_000)).sum())
True
"""

from repro.core import (
    AdaptivePageModel,
    AutoTunedAPM,
    GaussianDice,
    IOAccountant,
    QueryLog,
    QueryStats,
    ReplicatedColumn,
    SegmentedColumn,
    SelectionResult,
    UnsegmentedColumn,
    ValueRange,
    available_strategies,
    create_strategy,
    model_from_name,
    register_strategy,
    segment_statistics,
)

# The DB-API 2.0 client facade (imported after repro.core: the api package
# pulls in the engine, which builds on the core substrates).
from repro.api import (  # noqa: E402
    Connection,
    Cursor,
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    PreparedStatement,
    ProgrammingError,
    Warning,  # noqa: A004 - the PEP 249 name shadows the builtin, as in sqlite3
    apilevel,
    connect,
    paramstyle,
    threadsafety,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePageModel",
    "AutoTunedAPM",
    "Connection",
    "Cursor",
    "DataError",
    "DatabaseError",
    "Error",
    "GaussianDice",
    "IOAccountant",
    "IntegrityError",
    "InterfaceError",
    "InternalError",
    "NotSupportedError",
    "OperationalError",
    "PreparedStatement",
    "ProgrammingError",
    "QueryLog",
    "QueryStats",
    "ReplicatedColumn",
    "SegmentedColumn",
    "SelectionResult",
    "UnsegmentedColumn",
    "ValueRange",
    "Warning",
    "apilevel",
    "available_strategies",
    "connect",
    "create_strategy",
    "model_from_name",
    "paramstyle",
    "register_strategy",
    "segment_statistics",
    "threadsafety",
    "__version__",
]
