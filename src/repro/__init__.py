"""repro — a reproduction of "Self-organizing Strategies for a Column-store Database".

The package implements the paper's two workload-driven self-organizing
techniques for a column-store — **adaptive segmentation** and **adaptive
replication** — together with the substrates they rely on: a MonetDB-like
column-store engine (BAT storage, a MAL interpreter, a tactical optimizer
with a segment optimizer and a SQL front-end), an architecture-conscious
simulator with a constrained memory buffer, workload generators and a
benchmark harness reproducing every figure and table of the evaluation.

Quickstart
----------

>>> import numpy as np
>>> from repro import SegmentedColumn, AdaptivePageModel
>>> values = np.random.default_rng(0).integers(0, 1_000_000, size=100_000).astype(np.int32)
>>> column = SegmentedColumn(values, model=AdaptivePageModel(m_min=3072, m_max=12288))
>>> result = column.select(100_000, 200_000)
>>> result.count == int(((values >= 100_000) & (values < 200_000)).sum())
True
"""

from repro.core import (
    AdaptivePageModel,
    AutoTunedAPM,
    GaussianDice,
    IOAccountant,
    QueryLog,
    QueryStats,
    ReplicatedColumn,
    SegmentedColumn,
    SelectionResult,
    UnsegmentedColumn,
    ValueRange,
    available_strategies,
    create_strategy,
    model_from_name,
    register_strategy,
    segment_statistics,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptivePageModel",
    "AutoTunedAPM",
    "GaussianDice",
    "IOAccountant",
    "QueryLog",
    "QueryStats",
    "ReplicatedColumn",
    "SegmentedColumn",
    "SelectionResult",
    "UnsegmentedColumn",
    "ValueRange",
    "available_strategies",
    "create_strategy",
    "model_from_name",
    "register_strategy",
    "segment_statistics",
    "__version__",
]
