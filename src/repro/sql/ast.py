"""Abstract syntax for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass


class Parameter(float):
    """A numeric literal lifted into a named plan parameter.

    AST validation (``high >= low``) and bound arithmetic keep working on the
    actual value, while the SQL compiler recognises the subclass and emits a
    MAL variable reference instead of baking the literal into the plan.
    """

    __slots__ = ("name",)

    def __new__(cls, name: str, value: float) -> "Parameter":
        parameter = super().__new__(cls, value)
        parameter.name = name
        return parameter

    def __repr__(self) -> str:
        return f"Parameter({self.name}={float(self)!r})"


class Placeholder(Parameter):
    """A ``?`` or ``:name`` placeholder awaiting a client-supplied binding.

    Carries no value (the float payload is NaN, which defeats every parse-time
    range comparison — validation happens at bind time instead).  ``index`` is
    the 0-based binding position in textual order; ``key`` is the client-facing
    handle: the same ``index`` for positional ``?`` style, the bare name for
    ``:name`` style (one name may appear at several positions).
    """

    __slots__ = ("index", "key")

    def __new__(cls, index: int, key: "int | str") -> "Placeholder":
        placeholder = super().__new__(cls, f"__p{index}", float("nan"))
        placeholder.index = index
        placeholder.key = key
        return placeholder

    def __repr__(self) -> str:
        return f"Placeholder({self.key!r}@{self.index})"


@dataclass(frozen=True)
class RangePredicate:
    """``column BETWEEN low AND high`` (or an equivalent pair of comparisons)."""

    column: str
    low: float
    high: float
    include_low: bool = True
    include_high: bool = True

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(
                f"range predicate on {self.column!r} has high < low: {self.high} < {self.low}"
            )


@dataclass(frozen=True)
class ComparisonPredicate:
    """A single-sided comparison ``column <op> value``."""

    column: str
    operator: str
    value: float

    _VALID = ("<", "<=", ">", ">=", "=", "<>")

    def __post_init__(self) -> None:
        if self.operator not in self._VALID:
            raise ValueError(f"unsupported comparison operator {self.operator!r}")


@dataclass(frozen=True)
class Aggregate:
    """An aggregate projection such as ``SUM(col)`` or ``COUNT(*)``."""

    function: str
    column: str | None  # None for COUNT(*)

    _VALID = ("sum", "count", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.function not in self._VALID:
            raise ValueError(f"unsupported aggregate {self.function!r}")
        if self.function != "count" and self.column is None:
            raise ValueError(f"{self.function}() requires a column argument")

    @property
    def label(self) -> str:
        """The output column name."""
        return f"{self.function}({self.column or '*'})"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed ``SELECT`` over a single table.

    Exactly one of ``columns`` / ``aggregates`` is non-empty.
    """

    table: str
    columns: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()
    predicates: tuple[RangePredicate | ComparisonPredicate, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if bool(self.columns) == bool(self.aggregates):
            raise ValueError("a SELECT must project either columns or aggregates (not both)")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"LIMIT must be non-negative, got {self.limit}")

    @property
    def is_aggregate(self) -> bool:
        """True for aggregate queries (``SUM``/``COUNT``/...)."""
        return bool(self.aggregates)

    @property
    def predicate_columns(self) -> tuple[str, ...]:
        """The distinct columns referenced in the WHERE clause, in order."""
        seen: list[str] = []
        for predicate in self.predicates:
            if predicate.column not in seen:
                seen.append(predicate.column)
        return tuple(seen)
