"""Query parameterization: lifting range literals into plan parameters.

The paper's evaluation workloads (Figures 5–7, the SkyServer traces) issue
thousands of range selections that differ *only* in their bound constants, so
a plan cache keyed on literal SQL text is cold on almost every query.  This
module extracts the numeric literals of a parsed statement into named
parameters (``__p0``, ``__p1``, ...) and derives a hashable *shape* key — the
statement with the literal values erased — so all queries of one shape share a
single compiled plan and only the parameter values change per execution.

The lifted :class:`Parameter` is a ``float`` subclass carrying its parameter
name: AST validation (``high >= low``) and bound arithmetic keep working on
the actual values, while the SQL compiler recognises the subclass and emits a
MAL variable reference instead of baking the literal into the plan.
"""

from __future__ import annotations

import math
import re
from collections.abc import Mapping
from dataclasses import dataclass, replace
from decimal import Decimal
from numbers import Real
from typing import Any, Sequence

import numpy as np

from repro.sql.ast import (
    ComparisonPredicate,
    Parameter,
    Placeholder,
    RangePredicate,
    SelectStatement,
)
from repro.sql.parser import NUMBER_PATTERN

__all__ = [
    "BindError",
    "BindingSpec",
    "Parameter",
    "ParameterizedQuery",
    "Placeholder",
    "mask_literals",
    "parameter_names",
    "parameterize",
    "prepared_binding",
    "range_parameter_checks",
    "statement_shape",
    "substitute_placeholders",
]

#: A numeric literal as the tokenizer would lex it.  The lookbehind mirrors
#: the tokenizer's greedy identifier consumption: a digit (or sign) directly
#: attached to an identifier or another number never starts a fresh literal.
_LITERAL_PATTERN = re.compile(rf"(?<![\w.]){NUMBER_PATTERN}")


@dataclass(frozen=True)
class ParameterizedQuery:
    """One statement split into shape and parameter values.

    ``statement`` is the parsed statement with every range literal replaced by
    a :class:`Parameter`; ``shape`` is the hashable cache key (no literal
    values); ``arguments`` maps parameter names to this query's literals, in
    the form the compiled plan's environment expects.
    """

    statement: SelectStatement
    shape: tuple
    arguments: dict[str, float]


def statement_shape(statement: SelectStatement) -> tuple:
    """The hashable plan-cache *shape* key of a (parameterized) statement.

    Bounds that are :class:`Parameter` instances are erased (tagged ``None``)
    — their values arrive at bind time; plain literals keep their value, so a
    statement mixing placeholders and baked literals never shares a plan with
    the fully-lifted shape the literal path produces.  A fully-placeholder
    prepared statement therefore hashes identically to the literal path's
    lifted shape and *shares its compiled plan*.
    """
    def tag(value: float) -> float | None:
        return None if isinstance(value, Parameter) else float(value)

    shape_predicates: list[tuple] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            shape_predicates.append(
                (
                    "range",
                    predicate.column,
                    predicate.include_low,
                    predicate.include_high,
                    tag(predicate.low),
                    tag(predicate.high),
                )
            )
        else:
            shape_predicates.append(
                ("cmp", predicate.column, predicate.operator, tag(predicate.value))
            )
    return (
        statement.table,
        statement.columns,
        statement.aggregates,
        tuple(shape_predicates),
        statement.limit,
    )


def parameterize(statement: SelectStatement) -> ParameterizedQuery:
    """Split ``statement`` into its shape and its literal parameter values."""
    arguments: dict[str, float] = {}

    def lift(value: float) -> Parameter:
        name = f"__p{len(arguments)}"
        arguments[name] = float(value)
        return Parameter(name, value)

    predicates: list[RangePredicate | ComparisonPredicate] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            predicates.append(
                replace(predicate, low=lift(predicate.low), high=lift(predicate.high))
            )
        else:
            predicates.append(replace(predicate, value=lift(predicate.value)))
    lifted = replace(statement, predicates=tuple(predicates))
    return ParameterizedQuery(
        statement=lifted,
        shape=statement_shape(lifted),
        arguments=arguments,
    )


def mask_literals(normalized_sql: str) -> tuple[str, tuple[float, ...]]:
    """Replace numeric literals in normalized SQL with ``?``; return the values.

    This is the parse-free route to a cached plan shape: two statements whose
    masked texts are equal differ only in their literal values, which map onto
    parameters ``__p0``, ``__p1``, ... in textual order — the exact order
    :func:`parameterize` assigns them.  Texts whose lexing would diverge from
    the tokenizer (adjacent number lexemes) never parse successfully in this
    grammar, so their masked keys are never installed and they fall through to
    the full parse path with its usual errors.
    """
    values: list[float] = []

    def replace_literal(match: re.Match) -> str:
        values.append(float(match.group()))
        return "?"

    masked = _LITERAL_PATTERN.sub(replace_literal, normalized_sql)
    return masked, tuple(values)


def range_parameter_checks(statement: SelectStatement) -> tuple[tuple[int, int], ...]:
    """Per-range ``(low_index, high_index)`` pairs for bind-time validation.

    A masked-text cache hit skips the parser, so the ``high >= low`` check a
    :class:`RangePredicate` performs at parse time must be re-applied to the
    extracted literal values; violations fall back to the parse path, which
    raises the usual error.
    """
    checks: list[tuple[int, int]] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            low, high = predicate.low, predicate.high
            if isinstance(low, Parameter) and isinstance(high, Parameter):
                checks.append((int(low.name[3:]), int(high.name[3:])))
    return tuple(checks)


class BindError(ValueError):
    """A parameter binding that cannot be applied to a prepared statement.

    Raised at *bind time* — wrong arity, non-numeric or NaN values, a named
    binding for a positional statement (or vice versa), or range bounds with
    ``high < low``.  The client API maps it onto ``ProgrammingError``.
    """


@dataclass(frozen=True)
class BindingSpec:
    """How client-supplied parameters map onto a prepared statement's slots.

    ``style`` is ``"qmark"`` (positional ``?``), ``"named"`` (``:name``) or
    ``"none"`` (no placeholders); ``keys`` holds, per placeholder position,
    the client-facing key (the position itself for qmark, the lowercased name
    for named — one name may cover several positions).  ``range_checks``
    carries the ``high >= low`` validations the skipped parser would have
    performed: per range predicate a ``(low_slot, low_const, high_slot,
    high_const)`` tuple where a slot of ``-1`` means the bound is the baked
    constant next to it.
    """

    style: str
    keys: tuple[int | str, ...]
    range_checks: tuple[tuple[int, float, int, float], ...]

    @property
    def count(self) -> int:
        """Number of placeholder positions to bind."""
        return len(self.keys)

    def bind(self, parameters: Any) -> tuple[float, ...]:
        """Validate ``parameters`` and return one float per placeholder position."""
        if self.style == "named":
            values = self._bind_named(parameters)
        else:
            values = self._bind_positional(parameters)
        for low_slot, low_const, high_slot, high_const in self.range_checks:
            low = values[low_slot] if low_slot >= 0 else low_const
            high = values[high_slot] if high_slot >= 0 else high_const
            if high < low:
                raise BindError(
                    f"range parameters violate high >= low: {high} < {low}"
                )
        return values

    def _bind_positional(self, parameters: Any) -> tuple[float, ...]:
        if parameters is None:
            parameters = ()
        if isinstance(parameters, Mapping):
            raise BindError(
                "statement uses positional '?' placeholders; "
                "got a named parameter mapping"
            )
        # Any sized, indexable container works — tuples, lists, numpy arrays
        # (which are not abc.Sequence) — but not a bare scalar, a string, or
        # an unordered container (a set would bind in hash order).
        if (
            isinstance(parameters, (str, bytes))
            or not hasattr(parameters, "__len__")
            or not hasattr(parameters, "__getitem__")
        ):
            raise BindError(
                f"parameters must be an ordered sequence, got {type(parameters).__name__}"
            )
        if len(parameters) != self.count:
            raise BindError(
                f"statement takes {self.count} parameter(s), got {len(parameters)}"
            )
        return tuple(self._coerce(value, key) for key, value in zip(self.keys, parameters))

    def _bind_named(self, parameters: Any) -> tuple[float, ...]:
        if not isinstance(parameters, Mapping):
            raise BindError(
                "statement uses named ':name' placeholders; "
                f"got {type(parameters).__name__} instead of a mapping"
            )
        supplied: dict[str, Any] = {}
        for key, value in parameters.items():
            lowered = str(key).lower()
            if lowered in supplied:
                raise BindError(
                    f"parameter {lowered!r} supplied more than once "
                    "(names are case-insensitive)"
                )
            supplied[lowered] = value
        expected = set(self.keys)
        missing = expected - supplied.keys()
        if missing:
            raise BindError(f"missing named parameter(s): {sorted(missing)}")
        extra = supplied.keys() - expected
        if extra:
            raise BindError(f"unknown named parameter(s): {sorted(extra)}")
        return tuple(self._coerce(supplied[key], key) for key in self.keys)

    @staticmethod
    def _coerce(value: Any, key: int | str) -> float:
        # Exact float/int first: the abc registry walk behind ``Real`` costs
        # about a microsecond per value, which a batch of bindings feels.
        # Real covers int/float and the numpy scalar types; Decimal is the
        # DB-API's standard exact-numeric type and converts losslessly enough
        # for range bounds.  Booleans are deliberately not range bounds.
        if type(value) is not float and type(value) is not int:
            if isinstance(value, bool) or not isinstance(value, (Real, Decimal)):
                raise BindError(
                    f"parameter {key!r} must be numeric, got {type(value).__name__}"
                )
        number = float(value)
        if math.isnan(number):
            raise BindError(f"parameter {key!r} is NaN; range bounds must be ordered")
        return number

    def bind_many(self, seq_of_parameters: Sequence[Any]) -> list[tuple[float, ...]]:
        """Validate a whole batch of bindings, vectorized when homogeneous.

        Semantically identical to ``[self.bind(p) for p in seq]``: the fast
        path only engages for positional batches whose every value is an
        exact Python ``float``/``int`` (anything else — mappings, Decimals,
        numpy scalars, booleans — falls back to the per-member path and its
        exact error messages), and any vectorized validation failure re-runs
        the per-member path so the first offending binding raises.
        """
        seq = list(seq_of_parameters)
        try:
            homogeneous = self.style == "qmark" and bool(seq) and all(
                type(value) is float or type(value) is int
                for parameters in seq
                for value in parameters
            )
        except TypeError:  # a non-iterable member: let bind() raise its error
            homogeneous = False
        if homogeneous:
            try:
                array = np.asarray(seq, dtype=np.float64)
            except (TypeError, ValueError):
                array = None
            if array is not None and array.ndim == 2 and array.shape[1] == self.count:
                ok = not bool(np.isnan(array).any())
                for low_slot, low_const, high_slot, high_const in self.range_checks:
                    if not ok:
                        break
                    lows = array[:, low_slot] if low_slot >= 0 else low_const
                    highs = array[:, high_slot] if high_slot >= 0 else high_const
                    ok = not bool(np.any(highs < lows))
                if ok:
                    return [tuple(row) for row in array.tolist()]
        return [self.bind(parameters) for parameters in seq]


def prepared_binding(statement: SelectStatement) -> BindingSpec:
    """Derive the :class:`BindingSpec` of a placeholder-parsed statement."""
    placeholders: list[Placeholder] = []
    range_checks: list[tuple[int, float, int, float]] = []

    def note(value: float) -> None:
        if isinstance(value, Placeholder):
            placeholders.append(value)

    def check_part(value: float) -> tuple[int, float]:
        if isinstance(value, Placeholder):
            return value.index, 0.0
        return -1, float(value)

    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            note(predicate.low)
            note(predicate.high)
            if isinstance(predicate.low, Placeholder) or isinstance(
                predicate.high, Placeholder
            ):
                range_checks.append((*check_part(predicate.low), *check_part(predicate.high)))
        else:
            note(predicate.value)
    placeholders.sort(key=lambda placeholder: placeholder.index)
    if [placeholder.index for placeholder in placeholders] != list(range(len(placeholders))):
        raise BindError("placeholder positions are not contiguous")  # pragma: no cover
    if not placeholders:
        style = "none"
    elif isinstance(placeholders[0].key, int):
        style = "qmark"
    else:
        style = "named"
    return BindingSpec(
        style=style,
        keys=tuple(placeholder.key for placeholder in placeholders),
        range_checks=tuple(range_checks),
    )


def substitute_placeholders(
    statement: SelectStatement, values: Sequence[float]
) -> SelectStatement:
    """The statement with every placeholder replaced by its bound value.

    Used by the batched ``executemany`` path, which clusters overlapping
    ranges on the *concrete* bounds.  ``values`` must already be validated by
    :meth:`BindingSpec.bind` (range ordering included).
    """
    def resolve(value: float) -> float:
        if isinstance(value, Placeholder):
            return float(values[value.index])
        return value

    predicates: list[RangePredicate | ComparisonPredicate] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            predicates.append(
                replace(predicate, low=resolve(predicate.low), high=resolve(predicate.high))
            )
        else:
            predicates.append(replace(predicate, value=resolve(predicate.value)))
    return replace(statement, predicates=tuple(predicates))


def parameter_names(statement: SelectStatement) -> tuple[str, ...]:
    """The parameter names referenced by a parameterized statement, in order."""
    names: list[str] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            values = (predicate.low, predicate.high)
        else:
            values = (predicate.value,)
        for value in values:
            if isinstance(value, Parameter) and value.name not in names:
                names.append(value.name)
    return tuple(names)
