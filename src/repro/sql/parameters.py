"""Query parameterization: lifting range literals into plan parameters.

The paper's evaluation workloads (Figures 5–7, the SkyServer traces) issue
thousands of range selections that differ *only* in their bound constants, so
a plan cache keyed on literal SQL text is cold on almost every query.  This
module extracts the numeric literals of a parsed statement into named
parameters (``__p0``, ``__p1``, ...) and derives a hashable *shape* key — the
statement with the literal values erased — so all queries of one shape share a
single compiled plan and only the parameter values change per execution.

The lifted :class:`Parameter` is a ``float`` subclass carrying its parameter
name: AST validation (``high >= low``) and bound arithmetic keep working on
the actual values, while the SQL compiler recognises the subclass and emits a
MAL variable reference instead of baking the literal into the plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace

from repro.sql.ast import ComparisonPredicate, RangePredicate, SelectStatement
from repro.sql.parser import NUMBER_PATTERN

#: A numeric literal as the tokenizer would lex it.  The lookbehind mirrors
#: the tokenizer's greedy identifier consumption: a digit (or sign) directly
#: attached to an identifier or another number never starts a fresh literal.
_LITERAL_PATTERN = re.compile(rf"(?<![\w.]){NUMBER_PATTERN}")


class Parameter(float):
    """A numeric literal lifted into a named plan parameter."""

    __slots__ = ("name",)

    def __new__(cls, name: str, value: float) -> "Parameter":
        parameter = super().__new__(cls, value)
        parameter.name = name
        return parameter

    def __repr__(self) -> str:
        return f"Parameter({self.name}={float(self)!r})"


@dataclass(frozen=True)
class ParameterizedQuery:
    """One statement split into shape and parameter values.

    ``statement`` is the parsed statement with every range literal replaced by
    a :class:`Parameter`; ``shape`` is the hashable cache key (no literal
    values); ``arguments`` maps parameter names to this query's literals, in
    the form the compiled plan's environment expects.
    """

    statement: SelectStatement
    shape: tuple
    arguments: dict[str, float]


def parameterize(statement: SelectStatement) -> ParameterizedQuery:
    """Split ``statement`` into its shape and its literal parameter values."""
    arguments: dict[str, float] = {}

    def lift(value: float) -> Parameter:
        name = f"__p{len(arguments)}"
        arguments[name] = float(value)
        return Parameter(name, value)

    predicates: list[RangePredicate | ComparisonPredicate] = []
    shape_predicates: list[tuple] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            predicates.append(
                replace(predicate, low=lift(predicate.low), high=lift(predicate.high))
            )
            shape_predicates.append(
                ("range", predicate.column, predicate.include_low, predicate.include_high)
            )
        else:
            predicates.append(replace(predicate, value=lift(predicate.value)))
            shape_predicates.append(("cmp", predicate.column, predicate.operator))
    shape = (
        statement.table,
        statement.columns,
        statement.aggregates,
        tuple(shape_predicates),
        statement.limit,
    )
    return ParameterizedQuery(
        statement=replace(statement, predicates=tuple(predicates)),
        shape=shape,
        arguments=arguments,
    )


def mask_literals(normalized_sql: str) -> tuple[str, tuple[float, ...]]:
    """Replace numeric literals in normalized SQL with ``?``; return the values.

    This is the parse-free route to a cached plan shape: two statements whose
    masked texts are equal differ only in their literal values, which map onto
    parameters ``__p0``, ``__p1``, ... in textual order — the exact order
    :func:`parameterize` assigns them.  Texts whose lexing would diverge from
    the tokenizer (adjacent number lexemes) never parse successfully in this
    grammar, so their masked keys are never installed and they fall through to
    the full parse path with its usual errors.
    """
    values: list[float] = []

    def replace_literal(match: re.Match) -> str:
        values.append(float(match.group()))
        return "?"

    masked = _LITERAL_PATTERN.sub(replace_literal, normalized_sql)
    return masked, tuple(values)


def range_parameter_checks(statement: SelectStatement) -> tuple[tuple[int, int], ...]:
    """Per-range ``(low_index, high_index)`` pairs for bind-time validation.

    A masked-text cache hit skips the parser, so the ``high >= low`` check a
    :class:`RangePredicate` performs at parse time must be re-applied to the
    extracted literal values; violations fall back to the parse path, which
    raises the usual error.
    """
    checks: list[tuple[int, int]] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            low, high = predicate.low, predicate.high
            if isinstance(low, Parameter) and isinstance(high, Parameter):
                checks.append((int(low.name[3:]), int(high.name[3:])))
    return tuple(checks)


def parameter_names(statement: SelectStatement) -> tuple[str, ...]:
    """The parameter names referenced by a parameterized statement, in order."""
    names: list[str] = []
    for predicate in statement.predicates:
        if isinstance(predicate, RangePredicate):
            values = (predicate.low, predicate.high)
        else:
            values = (predicate.value,)
        for value in values:
            if isinstance(value, Parameter) and value.name not in names:
                names.append(value.name)
    return tuple(names)
