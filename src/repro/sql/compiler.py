"""SQL → MAL code generation.

The compiler emits plans with the structure of the paper's Figure 1: every
predicate column is bound at its three levels (persistent, inserts, updates)
plus the table's deletion BAT, the range selection is evaluated against each
level and combined with ``kunion``/``kdifference``, deleted oids are removed,
and the surviving candidate list drives positional joins (``markT`` +
``reverse`` + ``join``) that reconstruct the projected columns.  Aggregates
are applied to the reconstructed column and exported as scalars.

The compiler is *naive on purpose* — exactly like the SQL compiler in the
paper — and leaves all physical decisions (segment awareness in particular)
to the tactical optimizer pipeline that runs afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.mal.builder import ProgramBuilder
from repro.mal.program import Const, MALProgram, Var
from repro.sql.ast import Aggregate, ComparisonPredicate, RangePredicate, SelectStatement
from repro.sql.parameters import Parameter, parameter_names
from repro.storage.catalog import Catalog

#: Schema name used in generated ``sql.bind`` calls (MonetDB's default).
DEFAULT_SCHEMA = "sys"


class SQLCompiler:
    """Generates MAL programs from parsed SELECT statements."""

    def __init__(self, catalog: Catalog, *, schema: str = DEFAULT_SCHEMA) -> None:
        self.catalog = catalog
        self.schema = schema
        self._statement_counter = 0

    # -- public API ---------------------------------------------------------

    def compile(self, statement: SelectStatement) -> MALProgram:
        """Compile one statement into a MAL program.

        Statements whose literals were lifted by
        :func:`repro.sql.parameters.parameterize` compile into parameterized
        programs: the bounds become MAL variable references and the parameter
        names are recorded on the program, to be supplied at run time.
        """
        schema = self.catalog.schema(statement.table)  # validates the table
        self._statement_counter += 1
        builder = ProgramBuilder(
            name=f"s{self._statement_counter}_0", parameters=parameter_names(statement)
        )

        candidate = self._compile_predicates(builder, statement)
        columns = self._projected_columns(statement)
        for column in columns:
            schema.dtype_of(column)  # validates projected columns

        if statement.is_aggregate:
            self._compile_aggregates(builder, statement, candidate)
        else:
            self._compile_projection(builder, statement, columns, candidate)
        return builder.build()

    # -- predicate cascade ------------------------------------------------------

    def _compile_predicates(self, builder: ProgramBuilder, statement: SelectStatement) -> str:
        """Emit the candidate-list computation; returns its variable name."""
        table = statement.table
        deletions = builder.call(
            "sql", "bind_dbat", Const(self.schema), Const(table), Const(1),
            comment="deleted oids",
        )
        reversed_deletions = builder.call("bat", "reverse", builder.var(deletions))

        candidate: str | None = None
        if not statement.predicates:
            # No WHERE clause: all live oids of the table qualify.
            base = builder.call(
                "sql", "bind", Const(self.schema), Const(table),
                Const(self._any_column(statement)), Const(0),
            )
            inserts = builder.call(
                "sql", "bind", Const(self.schema), Const(table),
                Const(self._any_column(statement)), Const(1),
            )
            merged = builder.call("algebra", "kunion", builder.var(base), builder.var(inserts))
            candidate = builder.call("bat", "mirror", builder.var(merged))
        for predicate in statement.predicates:
            selected = self._compile_single_predicate(builder, table, predicate)
            if candidate is None:
                candidate = selected
            else:
                candidate = builder.call(
                    "algebra", "kintersect", builder.var(candidate), builder.var(selected)
                )
        live = builder.call(
            "algebra", "kdifference", builder.var(candidate), builder.var(reversed_deletions),
            comment="drop deleted tuples",
        )
        return live

    def _compile_single_predicate(
        self,
        builder: ProgramBuilder,
        table: str,
        predicate: RangePredicate | ComparisonPredicate,
    ) -> str:
        """The Figure-1 cascade for one predicate; returns the candidate variable."""
        column = predicate.column
        persistent = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(0)
        )
        inserts = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(1)
        )
        updates = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(2)
        )
        low, high, include_low, include_high = self._bounds(predicate)

        def uselect(source: str) -> str:
            return builder.call(
                "algebra",
                "uselect",
                builder.var(source),
                self._operand(low),
                self._operand(high),
                Const(include_low),
                Const(include_high),
            )

        persistent_hits = uselect(persistent)
        insert_hits = uselect(inserts)
        union = builder.call(
            "algebra", "kunion", builder.var(persistent_hits), builder.var(insert_hits)
        )
        without_updates = builder.call(
            "algebra", "kdifference", builder.var(union), builder.var(updates)
        )
        update_hits = uselect(updates)
        return builder.call(
            "algebra", "kunion", builder.var(without_updates), builder.var(update_hits)
        )

    @staticmethod
    def _operand(value: float) -> Var | Const:
        """A bound as a plan operand: parameters by reference, literals baked in."""
        if isinstance(value, Parameter):
            return Var(value.name)
        return Const(value)

    @staticmethod
    def _bounds(predicate: RangePredicate | ComparisonPredicate) -> tuple[float, float, bool, bool]:
        if isinstance(predicate, RangePredicate):
            return predicate.low, predicate.high, predicate.include_low, predicate.include_high
        value = predicate.value
        if predicate.operator in {"<", "<="}:
            return -np.inf, value, False, predicate.operator == "<="
        if predicate.operator in {">", ">="}:
            return value, np.inf, predicate.operator == ">=", False
        if predicate.operator == "=":
            return value, value, True, True
        # '<>' is compiled as the full domain; the engine filters afterwards via
        # a theta-select on the reconstructed column.  Rare enough to keep simple.
        raise ValueError("'<>' predicates are not supported by the MAL compiler")

    # -- projections ---------------------------------------------------------------

    def _projected_columns(self, statement: SelectStatement) -> tuple[str, ...]:
        if statement.is_aggregate:
            return tuple(agg.column for agg in statement.aggregates if agg.column is not None)
        if statement.columns == ("*",):
            return self.catalog.schema(statement.table).column_names
        return statement.columns

    def _any_column(self, statement: SelectStatement) -> str:
        columns = self._projected_columns(statement)
        if columns:
            return columns[0]
        return self.catalog.schema(statement.table).column_names[0]

    def _reconstruct_column(
        self, builder: ProgramBuilder, table: str, column: str, positions: str
    ) -> str:
        """Emit the delta merge + positional join for one projected column."""
        persistent = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(0)
        )
        inserts = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(1)
        )
        updates = builder.call(
            "sql", "bind", Const(self.schema), Const(table), Const(column), Const(2)
        )
        merged = builder.call("algebra", "kunion", builder.var(persistent), builder.var(inserts))
        without_updates = builder.call(
            "algebra", "kdifference", builder.var(merged), builder.var(updates)
        )
        with_updates = builder.call(
            "algebra", "kunion", builder.var(without_updates), builder.var(updates)
        )
        return builder.call(
            "algebra", "join", builder.var(positions), builder.var(with_updates),
            comment=f"reconstruct {table}.{column}",
        )

    def _result_positions(self, builder: ProgramBuilder, candidate: str) -> str:
        base = builder.call("calc", "oid", Const(0))
        marked = builder.call("algebra", "markT", builder.var(candidate), builder.var(base))
        return builder.call("bat", "reverse", builder.var(marked))

    def _compile_projection(
        self,
        builder: ProgramBuilder,
        statement: SelectStatement,
        columns: tuple[str, ...],
        candidate: str,
    ) -> None:
        positions = self._result_positions(builder, candidate)
        reconstructed = [
            self._reconstruct_column(builder, statement.table, column, positions)
            for column in columns
        ]
        result_set = builder.call(
            "sql", "resultSet", Const(len(columns)), Const(1), builder.var(reconstructed[0])
        )
        schema = self.catalog.schema(statement.table)
        for column, variable in zip(columns, reconstructed):
            builder.effect(
                "sql",
                "rsColumn",
                builder.var(result_set),
                Const(f"{self.schema}.{statement.table}"),
                Const(column),
                Const(schema.dtype_of(column).name),
                Const(0),
                Const(0),
                builder.var(variable),
            )
        builder.effect("sql", "exportResult", builder.var(result_set), Const(""))

    def _compile_aggregates(
        self, builder: ProgramBuilder, statement: SelectStatement, candidate: str
    ) -> None:
        positions: str | None = None
        for aggregate in statement.aggregates:
            if aggregate.column is None:
                value = builder.call("aggr", "count", builder.var(candidate))
            else:
                if positions is None:
                    positions = self._result_positions(builder, candidate)
                reconstructed = self._reconstruct_column(
                    builder, statement.table, aggregate.column, positions
                )
                value = builder.call("aggr", aggregate.function, builder.var(reconstructed))
            builder.effect("sql", "exportValue", Const(aggregate.label), builder.var(value))
