"""A small SQL front-end: parser and SQL-to-MAL code generator.

The reproduction supports the query shape the paper's evaluation uses —
range selections with projections or aggregates over a single table, e.g.
``SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12`` — and compiles it
into MAL plans with the same structure as the paper's Figure 1 (per-column
bind levels, delta unions/differences, candidate lists, positional joins).
"""

from repro.sql.ast import (
    Aggregate,
    ComparisonPredicate,
    RangePredicate,
    SelectStatement,
)
from repro.sql.parameters import Parameter, ParameterizedQuery, parameterize
from repro.sql.parser import SQLSyntaxError, parse
from repro.sql.compiler import SQLCompiler

__all__ = [
    "Aggregate",
    "ComparisonPredicate",
    "Parameter",
    "ParameterizedQuery",
    "RangePredicate",
    "SelectStatement",
    "SQLSyntaxError",
    "parameterize",
    "parse",
    "SQLCompiler",
]
