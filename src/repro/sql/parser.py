"""A recursive-descent parser for the supported SQL subset.

Grammar (case-insensitive keywords)::

    select    := SELECT projection FROM identifier [WHERE conjunction] [LIMIT number]
    projection:= '*' | column (',' column)* | aggregate (',' aggregate)*
    aggregate := (SUM|COUNT|AVG|MIN|MAX) '(' (column | '*') ')'
    conjunction := predicate (AND predicate)*
    predicate := column BETWEEN operand AND operand
               | column ('<' | '<=' | '>' | '>=' | '=' | '<>') operand
    operand   := number | placeholder          (placeholders: prepared mode only)
    placeholder := '?' | ':' identifier

Placeholders are the prepared-statement surface of the client API: they lex
always, but only :func:`parse` calls with ``placeholders=True`` accept them —
the literal query path keeps rejecting ``?`` so an unbound placeholder can
never slip into a plain :meth:`Database.execute`.  Positional ``?`` and named
``:name`` styles cannot be mixed in one statement, and a named placeholder may
appear at several positions (each position still becomes its own plan
parameter, so prepared statements share compiled plans with the literal path).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.sql.ast import (
    Aggregate,
    ComparisonPredicate,
    Placeholder,
    RangePredicate,
    SelectStatement,
)


class SQLSyntaxError(ValueError):
    """Raised when the query text cannot be parsed."""


#: The numeric-literal lexeme.  Shared with the literal-masking fast path of
#: :mod:`repro.sql.parameters`, which must recognise exactly the same lexemes.
NUMBER_PATTERN = r"[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?"

_TOKEN_PATTERN = re.compile(
    rf"""
    \s*(?:
        (?P<number>{NUMBER_PATTERN})
      | (?P<placeholder>\?|:[A-Za-z_][A-Za-z0-9_]*)
      | (?P<identifier>[A-Za-z_][A-Za-z0-9_.]*)
      | (?P<operator><=|>=|<>|=|<|>)
      | (?P<punct>[(),*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "between", "limit"}
_AGGREGATES = {"sum", "count", "avg", "min", "max"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str

    @property
    def lowered(self) -> str:
        return self.text.lower()


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SQLSyntaxError(f"unexpected input at: {remainder[:25]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind is not None:  # lastgroup is None only for pure whitespace
            tokens.append(_Token(kind, match.group(kind)))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], *, placeholders: bool = False) -> None:
        self.tokens = tokens
        self.position = 0
        self.allow_placeholders = placeholders
        self.placeholder_style: str | None = None  # "qmark" | "named" once seen
        self.placeholders: list[Placeholder] = []

    # -- token helpers ------------------------------------------------------

    def peek(self) -> _Token | None:
        return self.tokens[self.position] if self.position < len(self.tokens) else None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self.position += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.advance()
        if token.kind != "identifier" or token.lowered != keyword:
            raise SQLSyntaxError(f"expected {keyword.upper()}, found {token.text!r}")

    def accept_keyword(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "identifier" and token.lowered == keyword:
            self.position += 1
            return True
        return False

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == char:
            self.position += 1
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            found = self.peek().text if self.peek() else "<eof>"
            raise SQLSyntaxError(f"expected {char!r}, found {found!r}")

    def expect_identifier(self) -> str:
        token = self.advance()
        if token.kind != "identifier" or token.lowered in _KEYWORDS:
            raise SQLSyntaxError(f"expected an identifier, found {token.text!r}")
        return token.text.lower()

    def expect_number(self) -> float:
        token = self.advance()
        if token.kind != "number":
            raise SQLSyntaxError(f"expected a number, found {token.text!r}")
        return float(token.text)

    def expect_operand(self) -> float:
        """A predicate operand: a numeric literal or (in prepared mode) a placeholder."""
        token = self.peek()
        if token is not None and token.kind == "placeholder":
            self.advance()
            return self._make_placeholder(token.text)
        return self.expect_number()

    def _make_placeholder(self, text: str) -> Placeholder:
        if not self.allow_placeholders:
            raise SQLSyntaxError(
                f"placeholder {text!r} is only allowed in prepared statements "
                "(use Connection.prepare or pass parameters to Cursor.execute)"
            )
        style = "qmark" if text == "?" else "named"
        if self.placeholder_style is None:
            self.placeholder_style = style
        elif self.placeholder_style != style:
            raise SQLSyntaxError(
                "cannot mix positional '?' and named ':name' placeholders "
                "in one statement"
            )
        index = len(self.placeholders)
        key: int | str = index if style == "qmark" else text[1:].lower()
        placeholder = Placeholder(index, key)
        self.placeholders.append(placeholder)
        return placeholder

    # -- grammar --------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        columns, aggregates = self._parse_projection()
        self.expect_keyword("from")
        table = self.expect_identifier()
        predicates: list[RangePredicate | ComparisonPredicate] = []
        if self.accept_keyword("where"):
            predicates.append(self._parse_predicate())
            while self.accept_keyword("and"):
                predicates.append(self._parse_predicate())
        limit = None
        if self.accept_keyword("limit"):
            limit = int(self.expect_number())
        if self.peek() is not None:
            raise SQLSyntaxError(f"unexpected trailing input: {self.peek().text!r}")
        return SelectStatement(
            table=table,
            columns=tuple(columns),
            aggregates=tuple(aggregates),
            predicates=tuple(predicates),
            limit=limit,
        )

    def _parse_projection(self) -> tuple[list[str], list[Aggregate]]:
        token = self.peek()
        if token is None:
            raise SQLSyntaxError("missing projection list")
        if token.kind == "punct" and token.text == "*":
            self.advance()
            return ["*"], []
        if token.kind == "identifier" and token.lowered in _AGGREGATES:
            aggregates = [self._parse_aggregate()]
            while self.accept_punct(","):
                aggregates.append(self._parse_aggregate())
            return [], aggregates
        columns = [self.expect_identifier()]
        while self.accept_punct(","):
            columns.append(self.expect_identifier())
        return columns, []

    def _parse_aggregate(self) -> Aggregate:
        function = self.advance().lowered
        if function not in _AGGREGATES:
            raise SQLSyntaxError(f"unknown aggregate {function!r}")
        self.expect_punct("(")
        if self.accept_punct("*"):
            column: str | None = None
        else:
            column = self.expect_identifier()
        self.expect_punct(")")
        return Aggregate(function=function, column=column)

    def _parse_predicate(self) -> RangePredicate | ComparisonPredicate:
        column = self.expect_identifier()
        token = self.peek()
        if token is not None and token.kind == "identifier" and token.lowered == "between":
            self.advance()
            low = self.expect_operand()
            self.expect_keyword("and")
            high = self.expect_operand()
            return RangePredicate(column=column, low=low, high=high)
        operator_token = self.advance()
        if operator_token.kind != "operator":
            raise SQLSyntaxError(
                f"expected a comparison operator after {column!r}, found {operator_token.text!r}"
            )
        value = self.expect_operand()
        return ComparisonPredicate(column=column, operator=operator_token.text, value=value)


def parse(text: str, *, placeholders: bool = False) -> SelectStatement:
    """Parse a query string into a :class:`SelectStatement`.

    With ``placeholders=True`` (the prepared-statement path) predicate
    operands may be ``?`` or ``:name`` placeholders, which parse into
    :class:`~repro.sql.ast.Placeholder` parameters to be bound at execution
    time; the default literal path rejects them with a syntax error.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise SQLSyntaxError("empty query")
    return _Parser(tokens, placeholders=placeholders).parse_select()
