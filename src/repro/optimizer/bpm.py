"""The Bat Partition Manager (BPM).

The BPM owns the adaptive columns (segmented or replicated) that have been
registered for self-organization, and exposes the ``bpm.*`` MAL module the
segment optimizer's rewritten plans call at run time:

.. code-block:: text

    Y1 := bpm.take("sys", "p", "ra");
    Y2 := bpm.new();
    barrier rseg := bpm.newIterator(Y1, A0, A1, true, true);
    T1 := algebra.select(rseg, A0, A1, true, true);
    bpm.addSegment(Y2, T1);
    redo rseg := bpm.hasMoreElements(Y1, A0, A1, true, true);
    exit rseg;
    X14 := bpm.result(Y2);

``bpm.newIterator`` runs the adaptive column's range selection — which is
where adaptation (splitting / replica materialization) is piggy-backed — and
then hands the qualifying pieces to the plan one segment at a time, so the
downstream plan shape matches the paper's §3.1 snippet.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.accounting import QueryStats
from repro.core.models import SegmentationModel
from repro.core.strategy import AdaptiveColumnStrategy, create_strategy
from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


@dataclass
class AdaptiveColumnHandle:
    """A registered adaptive column plus the bookkeeping the BPM needs."""

    table: str
    column: str
    strategy: str
    adaptive: AdaptiveColumnStrategy

    @property
    def qualified_name(self) -> str:
        return f"{self.table}.{self.column}"

    @property
    def last_query_stats(self) -> QueryStats | None:
        """Per-query stats of the most recent selection through this handle."""
        history = self.adaptive.history
        if history is None or len(history) == 0:
            return None
        return history[-1]


@dataclass
class _SegmentIterator:
    """State of one barrier-block iteration over qualifying pieces."""

    pieces: list[BAT]
    position: int = 0

    def next_piece(self) -> BAT | None:
        if self.position >= len(self.pieces):
            return None
        piece = self.pieces[self.position]
        self.position += 1
        return piece


class BatPartitionManager:
    """Owns adaptive columns and implements the ``bpm`` MAL module."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._handles: dict[tuple[str, str], AdaptiveColumnHandle] = {}
        self._iterators: dict[int, _SegmentIterator] = {}
        self.total_adaptation_seconds = 0.0
        self.total_selection_seconds = 0.0

    # -- administration -------------------------------------------------------

    def enable(
        self,
        table: str,
        column: str,
        *,
        strategy: str,
        values: np.ndarray,
        model: SegmentationModel | None = None,
        domain: tuple[float, float] | None = None,
        storage_budget: float | None = None,
        **options: Any,
    ) -> AdaptiveColumnHandle:
        """Hand a column over to the BPM with the chosen registered strategy.

        ``strategy`` is resolved through the strategy registry
        (:mod:`repro.core.strategy`); extra keyword options are forwarded to
        the strategy constructor when it accepts them.
        """
        key = (table, column)
        if key in self._handles:
            raise ValueError(f"column {table}.{column} is already adaptive")
        adaptive = create_strategy(
            strategy,
            values,
            model=model,
            domain=domain,
            storage_budget=storage_budget,
            **options,
        )
        strategy_name = str(adaptive.strategy_name).strip().lower()
        handle = AdaptiveColumnHandle(
            table=table, column=column, strategy=strategy_name, adaptive=adaptive
        )
        # Register with the catalog first so a rejection leaves no half state.
        self.catalog.register_adaptive(table, column, strategy_name)
        self._handles[key] = handle
        return handle

    def disable(self, table: str, column: str) -> None:
        """Return a column to its plain positional organisation."""
        self._handles.pop((table, column), None)
        self.catalog.unregister_adaptive(table, column)

    def handle(self, table: str, column: str) -> AdaptiveColumnHandle:
        """Look up the handle of an adaptive column."""
        try:
            return self._handles[(table, column)]
        except KeyError as exc:
            raise KeyError(f"column {table}.{column} is not managed by the BPM") from exc

    def handles(self) -> list[AdaptiveColumnHandle]:
        """All registered adaptive columns."""
        return list(self._handles.values())

    def iter_handles(self):
        """A view over the registered handles (no list built — hot path)."""
        return self._handles.values()

    def is_managed(self, table: str, column: str) -> bool:
        """True when the column is managed by the BPM."""
        return (table, column) in self._handles

    # -- MAL module implementation -----------------------------------------------

    def mal_module(self) -> dict[str, Any]:
        """The ``bpm`` module functions to register with the MAL registry."""
        return {
            "take": self._mal_take,
            "new": self._mal_new,
            "newIterator": self._mal_new_iterator,
            "hasMoreElements": self._mal_has_more_elements,
            "addSegment": self._mal_add_segment,
            "result": self._mal_result,
        }

    def _mal_take(self, ctx, schema: str, table: str, column: str) -> AdaptiveColumnHandle:
        return self.handle(table, column)

    @staticmethod
    def _mal_new(ctx) -> list[BAT]:
        return []

    def _mal_new_iterator(
        self, ctx, handle: AdaptiveColumnHandle, low, high, include_low=True, include_high=False
    ) -> BAT | None:
        iterator = self._start_iteration(handle, low, high, include_low, include_high)
        self._iterators[id(handle)] = iterator
        return iterator.next_piece()

    def _mal_has_more_elements(
        self, ctx, handle: AdaptiveColumnHandle, low, high, include_low=True, include_high=False
    ) -> BAT | None:
        iterator = self._iterators.get(id(handle))
        if iterator is None:
            return None
        piece = iterator.next_piece()
        if piece is None:
            del self._iterators[id(handle)]
        return piece

    @staticmethod
    def _mal_add_segment(ctx, accumulator: list[BAT], piece: BAT) -> list[BAT]:
        accumulator.append(piece)
        return accumulator

    @staticmethod
    def _mal_result(ctx, accumulator: list[BAT]) -> BAT:
        if not accumulator:
            return BAT.from_pairs(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        if len(accumulator) == 1:
            # The common converged case: one qualifying piece, no copy.
            return accumulator[0]
        heads = np.concatenate([piece.head for piece in accumulator])
        tails = np.concatenate([piece.tail for piece in accumulator])
        return BAT.from_pairs(heads, tails)

    # -- the piggy-backed selection ------------------------------------------------

    def _start_iteration(
        self,
        handle: AdaptiveColumnHandle,
        low: float,
        high: float,
        include_low: bool,
        include_high: bool,
    ) -> _SegmentIterator:
        """Run the adaptive selection and expose its result one piece at a time."""
        adaptive = handle.adaptive
        effective_low, effective_high = self._half_open_bounds(
            adaptive, low, high, include_low, include_high
        )
        started = time.perf_counter()
        result = adaptive.select(effective_low, effective_high)
        elapsed = time.perf_counter() - started
        stats = handle.last_query_stats
        if stats is not None and (stats.selection_seconds or stats.adaptation_seconds):
            self.total_selection_seconds += stats.selection_seconds
            self.total_adaptation_seconds += stats.adaptation_seconds
        else:
            self.total_selection_seconds += elapsed
        pieces: list[BAT] = []
        if result.count:
            # Candidate lists carry the qualifying oids in head and tail, the
            # same shape algebra.uselect produces.  Segment-backed strategies
            # promise sorted values at construction (SelectionResult.values_sorted),
            # letting the plan's inner algebra.select answer the piece with
            # binary-search slicing instead of a scan; the positional baseline
            # and unsorted plugin results leave the flag off and take the
            # mask path — correct either way.
            pieces.append(
                BAT.from_pairs(
                    result.oids, result.values, tail_sorted=result.values_sorted
                )
            )
        return _SegmentIterator(pieces=pieces)

    @staticmethod
    def _half_open_bounds(
        adaptive: AdaptiveColumnStrategy,
        low: float,
        high: float,
        include_low: bool,
        include_high: bool,
    ) -> tuple[float, float]:
        """Translate SQL bound semantics into the core's half-open ranges.

        Scalar ``math`` predicates throughout — this runs once per query on
        the hot path, and ``math.nextafter`` is bit-identical to numpy's for
        float64 operands.
        """
        domain = adaptive.domain
        low = float(low)
        high = float(high)
        low_finite = math.isfinite(low)
        high_finite = math.isfinite(high)
        effective_low = max(low, domain.low) if low_finite else domain.low
        effective_high = min(high, domain.high) if high_finite else domain.high
        if not include_low and low_finite:
            effective_low = math.nextafter(effective_low, math.inf)
        if include_high and high_finite:
            effective_high = math.nextafter(effective_high, math.inf)
        effective_high = min(effective_high, domain.high)
        effective_low = max(min(effective_low, effective_high), domain.low)
        return effective_low, effective_high
