"""The segment optimizer: MAL→MAL rewrite for adaptive columns (paper §3.1).

The rewrite looks for range selections over BATs bound from columns that the
BPM manages, and replaces each of them with a segment-aware iterator block::

    X1  := sql.bind("sys", "p", "ra", 0);
    X14 := algebra.uselect(X1, 205.1, 205.12, true, true);

becomes::

    Y1 := bpm.take("sys", "p", "ra");
    Y2 := bpm.new();
    barrier rseg := bpm.newIterator(Y1, 205.1, 205.12, true, true);
    T1 := algebra.select(rseg, 205.1, 205.12, true, true);
    bpm.addSegment(Y2, T1);
    redo rseg := bpm.hasMoreElements(Y1, 205.1, 205.12, true, true);
    exit rseg;
    X14 := bpm.result(Y2);

Only selections against bind level 0 (the persistent BAT) are rewritten; the
delta BATs stay on the conventional path, exactly as in the paper where the
technique targets bulk-loaded, read-mostly warehouses.

The pieces ``bpm.newIterator`` yields come from value-sorted segments and are
flagged ``tail_sorted``, so the iterator block's inner ``algebra.select``
resolves to the binary-search slice kernel (two probes, zero copies) instead
of a full comparison scan — the rewritten plan never re-scans what the
adaptive layer already ordered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mal.program import Const, Instruction, MALProgram, Var
from repro.optimizer.bpm import BatPartitionManager
from repro.storage.catalog import Catalog


@dataclass(frozen=True)
class _BindInfo:
    """What a ``sql.bind`` instruction binds: table, column and level."""

    table: str
    column: str
    level: int


class SegmentOptimizer:
    """Rewrites selections on BPM-managed columns into iterator blocks."""

    name = "segment_optimizer"

    #: The selection operators eligible for the rewrite.
    _SELECT_FUNCTIONS = {"select", "uselect"}

    def __init__(self, catalog: Catalog, bpm: BatPartitionManager) -> None:
        self.catalog = catalog
        self.bpm = bpm
        self._fresh_counter = 0

    # -- rule protocol --------------------------------------------------------

    def __call__(self, program: MALProgram) -> MALProgram:
        """Apply the rewrite; returns a new program (the input is not mutated)."""
        binds = self._collect_binds(program)
        rewritten = MALProgram(name=program.name, parameters=program.parameters)
        for instruction in program.instructions:
            replacement = self._rewrite_instruction(instruction, binds)
            if replacement is None:
                rewritten.append(instruction)
            else:
                rewritten.extend(replacement)
        return rewritten

    # -- helpers ------------------------------------------------------------------

    def _collect_binds(self, program: MALProgram) -> dict[str, _BindInfo]:
        """Map variable names to the column they were bound from."""
        binds: dict[str, _BindInfo] = {}
        for instruction in program.instructions:
            if instruction.module != "sql" or instruction.function != "bind":
                continue
            if instruction.target is None or len(instruction.args) < 4:
                continue
            args = [arg.value if isinstance(arg, Const) else None for arg in instruction.args]
            if any(arg is None for arg in args[:4]):
                continue
            binds[instruction.target] = _BindInfo(
                table=str(args[1]), column=str(args[2]), level=int(args[3])
            )
        return binds

    def _rewrite_instruction(
        self, instruction: Instruction, binds: dict[str, _BindInfo]
    ) -> list[Instruction] | None:
        """The iterator block replacing one selection, or ``None`` to keep it."""
        if instruction.module != "algebra" or instruction.function not in self._SELECT_FUNCTIONS:
            return None
        if not instruction.args or not isinstance(instruction.args[0], Var):
            return None
        bind = binds.get(instruction.args[0].name)
        if bind is None or bind.level != 0:
            return None
        if not self.bpm.is_managed(bind.table, bind.column):
            return None
        if instruction.target is None:
            return None
        bounds = list(instruction.args[1:])
        return self._emit_iterator_block(instruction.target, bind, bounds)

    def _fresh(self, prefix: str) -> str:
        self._fresh_counter += 1
        return f"{prefix}_{self._fresh_counter}"

    def _emit_iterator_block(
        self, target: str, bind: _BindInfo, bounds: list
    ) -> list[Instruction]:
        handle_var = self._fresh("Y")
        accumulator_var = self._fresh("Y")
        barrier_var = self._fresh("rseg")
        piece_var = self._fresh("T")
        comment = f"segment-aware sorted scan of {bind.table}.{bind.column}"
        return [
            Instruction(
                opcode="assign",
                targets=(handle_var,),
                module="bpm",
                function="take",
                args=(Const("sys"), Const(bind.table), Const(bind.column)),
                comment=comment,
            ),
            Instruction(
                opcode="assign",
                targets=(accumulator_var,),
                module="bpm",
                function="new",
                args=(),
            ),
            Instruction(
                opcode="barrier",
                targets=(barrier_var,),
                module="bpm",
                function="newIterator",
                args=(Var(handle_var), *bounds),
            ),
            Instruction(
                opcode="assign",
                targets=(piece_var,),
                module="algebra",
                function="select",
                args=(Var(barrier_var), *bounds),
            ),
            Instruction(
                opcode="assign",
                targets=(),
                module="bpm",
                function="addSegment",
                args=(Var(accumulator_var), Var(piece_var)),
            ),
            Instruction(
                opcode="redo",
                targets=(barrier_var,),
                module="bpm",
                function="hasMoreElements",
                args=(Var(handle_var), *bounds),
            ),
            Instruction(opcode="exit", targets=(barrier_var,)),
            Instruction(
                opcode="assign",
                targets=(target,),
                module="bpm",
                function="result",
                args=(Var(accumulator_var),),
            ),
        ]
