"""The tactical optimizer layer (paper §3.1).

Self-organization integrates at MonetDB's tactical optimizer level: MAL
programs produced by the SQL compiler are transformed before execution.  This
package provides the optimizer pipeline, a couple of generic MAL→MAL rules,
the **segment optimizer** that rewrites selections over adaptive columns into
segment-aware iterator blocks, and the **Bat Partition Manager (BPM)** runtime
module those blocks call into.
"""

from repro.optimizer.bpm import AdaptiveColumnHandle, BatPartitionManager
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.rules import remove_dead_code, merge_duplicate_binds
from repro.optimizer.segment_optimizer import SegmentOptimizer

__all__ = [
    "AdaptiveColumnHandle",
    "BatPartitionManager",
    "OptimizerPipeline",
    "remove_dead_code",
    "merge_duplicate_binds",
    "SegmentOptimizer",
]
