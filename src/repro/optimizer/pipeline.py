"""The tactical optimizer pipeline.

MonetDB's tactical optimizer is "a MAL to MAL transformation system" (§2);
this pipeline applies an ordered list of such transformations.  The default
order mirrors the paper's placement of the segment optimizer at the tactical
level: first plan hygiene (duplicate-bind merging), then the segment-aware
rewrite, then dead-code elimination to clean up binds the rewrite obsoleted.
"""

from __future__ import annotations

from typing import Callable

from repro.mal.program import MALProgram

OptimizerRule = Callable[[MALProgram], MALProgram]


class OptimizerPipeline:
    """An ordered list of MAL→MAL rules applied to every compiled plan."""

    def __init__(self, rules: list[OptimizerRule] | None = None) -> None:
        self.rules: list[OptimizerRule] = list(rules or [])

    def add_rule(self, rule: OptimizerRule, *, position: int | None = None) -> None:
        """Append a rule (or insert it at ``position``)."""
        if position is None:
            self.rules.append(rule)
        else:
            self.rules.insert(position, rule)

    def remove_rule(self, rule: OptimizerRule) -> None:
        """Remove a rule if present."""
        if rule in self.rules:
            self.rules.remove(rule)

    def optimize(self, program: MALProgram) -> MALProgram:
        """Apply every rule in order and return the final program."""
        optimized = program
        for rule in self.rules:
            optimized = rule(optimized)
        return optimized

    def rule_names(self) -> list[str]:
        """Human-readable names of the configured rules (for diagnostics)."""
        names = []
        for rule in self.rules:
            name = getattr(rule, "name", None) or getattr(rule, "__name__", None)
            names.append(name or type(rule).__name__)
        return names
