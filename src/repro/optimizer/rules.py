"""Generic MAL→MAL optimizer rules.

These model the "common heuristic optimization rules aimed at data volume
reduction" and general plan hygiene the paper attributes to MonetDB's
compilation stack (§2).  They are deliberately simple: duplicate ``sql.bind``
elimination (the naive compiler binds the same column several times) and dead
code elimination for pure operators whose results are never used.
"""

from __future__ import annotations

from repro.mal.program import Const, Instruction, MALProgram, Var

#: Callees considered pure (no observable side effect), eligible for removal.
_PURE_MODULES = {"algebra", "bat", "calc", "aggr"}
_PURE_SQL_FUNCTIONS = {"bind", "bind_dbat"}


def _is_pure(instruction: Instruction) -> bool:
    if instruction.module in _PURE_MODULES:
        return True
    return instruction.module == "sql" and instruction.function in _PURE_SQL_FUNCTIONS


def remove_dead_code(program: MALProgram) -> MALProgram:
    """Drop pure instructions whose targets are never referenced.

    The pass iterates to a fixpoint so chains of dead instructions disappear
    entirely (e.g. a ``sql.bind`` only feeding a dead ``algebra.uselect``).
    """
    instructions = list(program.instructions)
    changed = True
    while changed:
        changed = False
        used = {
            name
            for instruction in instructions
            for name in instruction.argument_names()
        }
        survivors: list[Instruction] = []
        for instruction in instructions:
            is_dead = (
                instruction.opcode == "assign"
                and instruction.targets
                and _is_pure(instruction)
                and not any(target in used for target in instruction.targets)
            )
            if is_dead:
                changed = True
                continue
            survivors.append(instruction)
        instructions = survivors
    optimized = MALProgram(name=program.name, parameters=program.parameters)
    optimized.extend(instructions)
    return optimized


def merge_duplicate_binds(program: MALProgram) -> MALProgram:
    """Reuse the first ``sql.bind`` of each (table, column, level) triple.

    The naive SQL compiler emits a fresh bind cascade per predicate and per
    projected column; this pass canonicalises them so the executed plan binds
    every BAT once, like MonetDB's ``commonTerms`` optimizer.
    """
    seen: dict[tuple, str] = {}
    renames: dict[str, str] = {}
    optimized = MALProgram(name=program.name, parameters=program.parameters)
    for instruction in program.instructions:
        instruction = _apply_renames(instruction, renames)
        if (
            instruction.opcode == "assign"
            and instruction.module == "sql"
            and instruction.function in {"bind", "bind_dbat"}
            and instruction.target is not None
            and all(isinstance(arg, Const) for arg in instruction.args)
        ):
            key = (instruction.function, tuple(arg.value for arg in instruction.args))
            if key in seen:
                renames[instruction.target] = seen[key]
                continue
            seen[key] = instruction.target
        optimized.append(instruction)
    return optimized


def _apply_renames(instruction: Instruction, renames: dict[str, str]) -> Instruction:
    if not renames:
        return instruction
    new_args = tuple(
        Var(renames[arg.name]) if isinstance(arg, Var) and arg.name in renames else arg
        for arg in instruction.args
    )
    if new_args == instruction.args:
        return instruction
    return instruction.with_args(new_args)
