"""Core of the reproduction: the paper's self-organizing techniques.

Public surface:

* :class:`~repro.core.ranges.ValueRange` — half-open ranges over the domain.
* :class:`~repro.core.segment.Segment` / :class:`~repro.core.segment.SelectionResult`.
* :class:`~repro.core.meta_index.SegmentMetaIndex` — the sparse segment index.
* Segmentation models: :class:`~repro.core.models.GaussianDice`,
  :class:`~repro.core.models.AdaptivePageModel`,
  :class:`~repro.core.models.AutoTunedAPM`.
* Strategies: :class:`~repro.core.segmentation.SegmentedColumn` (adaptive
  segmentation), :class:`~repro.core.replication.ReplicatedColumn` (adaptive
  replication) and :class:`~repro.core.baseline.UnsegmentedColumn` (the
  non-segmented baseline).
* Accounting: :class:`~repro.core.accounting.IOAccountant`,
  :class:`~repro.core.accounting.QueryStats`, :class:`~repro.core.accounting.QueryLog`.
* :func:`~repro.core.statistics.segment_statistics` — Table 2 style summaries.
"""

from repro.core.accounting import IOAccountant, PhaseTimer, QueryLog, QueryStats
from repro.core.baseline import UnsegmentedColumn
from repro.core.meta_index import SegmentMetaIndex
from repro.core.models import (
    AdaptivePageModel,
    AutoTunedAPM,
    GaussianDice,
    SegmentationModel,
    SplitAction,
    SplitDecision,
    model_from_name,
)
from repro.core.ranges import ValueRange, coalesce_ranges, domain_of, ranges_cover
from repro.core.replica_tree import ReplicaNode, ReplicaTree
from repro.core.replication import ReplicatedColumn
from repro.core.segment import Segment, SelectionResult
from repro.core.segmentation import SegmentedColumn
from repro.core.statistics import SegmentStatistics, segment_statistics
from repro.core.strategy import (
    AdaptiveColumnBase,
    AdaptiveColumnStrategy,
    available_strategies,
    create_strategy,
    register_strategy,
    strategy_class,
    unregister_strategy,
)

__all__ = [
    "IOAccountant",
    "PhaseTimer",
    "QueryLog",
    "QueryStats",
    "UnsegmentedColumn",
    "SegmentMetaIndex",
    "AdaptivePageModel",
    "AutoTunedAPM",
    "GaussianDice",
    "SegmentationModel",
    "SplitAction",
    "SplitDecision",
    "model_from_name",
    "ValueRange",
    "coalesce_ranges",
    "domain_of",
    "ranges_cover",
    "ReplicaNode",
    "ReplicaTree",
    "ReplicatedColumn",
    "Segment",
    "SelectionResult",
    "SegmentedColumn",
    "SegmentStatistics",
    "segment_statistics",
    "AdaptiveColumnBase",
    "AdaptiveColumnStrategy",
    "available_strategies",
    "create_strategy",
    "register_strategy",
    "strategy_class",
    "unregister_strategy",
]
