"""I/O and time accounting for the self-organizing techniques.

The paper's simulation (§6.1) reports *memory writes due to segment
materialization* and *memory reads*, both in bytes; the prototype experiments
(§6.2) report per-query *adaptation* and *selection* times.  This module
provides the counters and per-query records that every adaptive column
implementation in :mod:`repro.core` feeds, and that the benchmark harness
turns into the paper's figures and tables.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class QueryStats:
    """Per-query measurement record.

    Attributes mirror the quantities reported in the evaluation section:
    bytes read from segments, bytes written for segment materialization,
    the number of qualifying values returned, the segment count after the
    query, the total replica storage after the query (replication only), and
    the wall-clock split between selection work and adaptation work.
    """

    index: int
    low: float
    high: float
    reads_bytes: float = 0.0
    writes_bytes: float = 0.0
    result_count: int = 0
    segment_count: int = 0
    storage_bytes: float = 0.0
    selection_seconds: float = 0.0
    adaptation_seconds: float = 0.0
    segments_scanned: int = 0
    splits_performed: int = 0
    replicas_materialized: int = 0
    segments_dropped: int = 0
    #: Number of member queries this record covers.  1 for the per-query
    #: paths; the batched ``select_many`` kernels append one record per
    #: *batch* (their access statistics are genuinely shared), so consumers
    #: averaging per-query cost divide by this.
    batch_size: int = 1

    @property
    def total_seconds(self) -> float:
        """Wall-clock time attributed to this query (selection + adaptation)."""
        return self.selection_seconds + self.adaptation_seconds


@dataclass
class IOAccountant:
    """Running byte counters shared by one adaptive column.

    ``record_read``/``record_write`` are called by the column implementations
    for every segment scan and every segment materialization.  The optional
    ``current`` query record receives the same increments, so per-query series
    and global totals always agree.
    """

    total_reads_bytes: float = 0.0
    total_writes_bytes: float = 0.0
    current: QueryStats | None = None

    def record_read(self, n_bytes: float, segment: object | None = None) -> None:
        """Account ``n_bytes`` read from a segment.

        ``segment`` identifies the segment being scanned; the base accountant
        ignores it, while buffer-aware accountants (the §6.1 simulator) use it
        to model residency in the constrained memory buffer.
        """
        if n_bytes < 0:
            raise ValueError(f"read size must be non-negative, got {n_bytes}")
        self.total_reads_bytes += n_bytes
        if self.current is not None:
            self.current.reads_bytes += n_bytes
            self.current.segments_scanned += 1

    def record_write(self, n_bytes: float, segment: object | None = None) -> None:
        """Account ``n_bytes`` written while materializing a segment."""
        if n_bytes < 0:
            raise ValueError(f"write size must be non-negative, got {n_bytes}")
        self.total_writes_bytes += n_bytes
        if self.current is not None:
            self.current.writes_bytes += n_bytes

    def attach(self, stats: QueryStats) -> None:
        """Route subsequent increments into ``stats`` as well as the totals."""
        self.current = stats

    def detach(self) -> None:
        """Stop routing increments into a per-query record."""
        self.current = None


class PhaseTimer:
    """Accumulates wall-clock time into named phases of one query.

    The engine experiments of the paper separate *adaptation* time (splitting,
    copying, tree maintenance) from *selection* time (predicate evaluation and
    result extraction); Figure 10 plots exactly this split.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._totals: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager adding the elapsed time of its body to ``name``."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def total(self, name: str) -> float:
        """Accumulated seconds for phase ``name`` (0.0 when never entered)."""
        return self._totals.get(name, 0.0)

    def reset(self) -> None:
        """Clear all accumulated phase times."""
        self._totals.clear()


@dataclass
class QueryLog:
    """Chronological list of :class:`QueryStats` for one experiment run."""

    records: list[QueryStats] = field(default_factory=list)

    def append(self, stats: QueryStats) -> None:
        self.records.append(stats)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, item):
        return self.records[item]

    # -- series used by the benchmark harness ---------------------------

    def series(self, attribute: str) -> list[float]:
        """Per-query series of ``attribute`` (e.g. ``"reads_bytes"``)."""
        return [getattr(record, attribute) for record in self.records]

    def cumulative(self, attribute: str) -> list[float]:
        """Cumulative series of ``attribute`` (Figures 5, 6, 11, 13, 15)."""
        total = 0.0
        out: list[float] = []
        for record in self.records:
            total += getattr(record, attribute)
            out.append(total)
        return out

    def average(self, attribute: str) -> float:
        """Mean of ``attribute`` over all recorded queries (Table 1)."""
        if not self.records:
            return 0.0
        return sum(getattr(record, attribute) for record in self.records) / len(self.records)
