"""Segmentation models: the policies that decide whether to reorganize.

The paper (§3.2) defines two models.  Both receive a selection predicate and a
candidate segment and answer the question "should this query's bounds be used
to split/replicate the segment?":

* **Gaussian Dice (GD)** — a randomized policy.  With ``x`` the size ratio of
  the produced piece to the candidate segment and ``sigma`` the ratio of the
  candidate segment to the whole column, the query is used for reorganization
  with probability ``O(x) = G(x) / G(0.5)`` where ``G`` is the Gaussian pdf
  with mean 0.5 and standard deviation ``sigma``.  Balanced splits of large
  segments are therefore preferred, while point queries rarely fragment the
  column.

* **Adaptive Page Model (APM)** — a deterministic policy with two byte bounds
  ``Mmin < Mmax``.  Segments below ``Mmin`` are never split; splits at the
  query bounds are accepted when every resulting piece is at least ``Mmin``;
  otherwise segments larger than ``Mmax`` are still split, at a single point
  chosen among the query bounds (the one producing the smaller query-side
  piece) or at the approximate middle of the segment.

Both models work from *size estimates* so no data is touched at decision time.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Protocol

import numpy as np

from repro.core.ranges import ValueRange
from repro.util.rng import make_rng
from repro.util.units import KB
from repro.util.validation import ensure_positive


class SegmentLike(Protocol):
    """The minimal segment view a model needs: a range and size estimates."""

    vrange: ValueRange

    @property
    def size_bytes(self) -> float: ...

    def estimate_bytes(self, sub: ValueRange) -> float: ...


class SplitAction(Enum):
    """What the model recommends doing with the candidate segment."""

    NO_SPLIT = "no_split"
    SPLIT_AT_BOUNDS = "split_at_bounds"
    SPLIT_AT_POINT = "split_at_point"


@dataclass(frozen=True)
class SplitDecision:
    """Outcome of a model decision.

    ``points`` holds the domain values at which the segment should be cut:
    the clipped query bounds for :data:`SplitAction.SPLIT_AT_BOUNDS`, a single
    point for :data:`SplitAction.SPLIT_AT_POINT`, and the empty tuple for
    :data:`SplitAction.NO_SPLIT`.
    """

    action: SplitAction
    points: tuple[float, ...] = ()

    @property
    def should_split(self) -> bool:
        """True when the segment should be reorganized."""
        return self.action is not SplitAction.NO_SPLIT

    @classmethod
    def no_split(cls) -> "SplitDecision":
        return cls(SplitAction.NO_SPLIT)


def _clip_points(query: ValueRange, segment_range: ValueRange) -> list[float]:
    """Query bounds strictly inside the segment (the candidate cut points)."""
    return segment_range.interior_points([query.low, query.high])


class SegmentationModel(ABC):
    """Base class for segmentation models (GD, APM and extensions)."""

    name: str = "model"

    @abstractmethod
    def decide(
        self,
        query: ValueRange,
        segment: SegmentLike,
        *,
        total_bytes: float,
    ) -> SplitDecision:
        """Decide whether (and where) the segment should be reorganized.

        Parameters
        ----------
        query:
            The selection predicate range.
        segment:
            The candidate segment (only range and size estimates are used).
        total_bytes:
            Size of the whole column; used by GD to scale its tolerance.
        """

    def observe(self, selected_bytes: float) -> None:
        """Feedback hook: the number of bytes a query actually selected.

        The base models ignore it; :class:`AutoTunedAPM` uses it to derive its
        bounds from the workload (a paper §8 future-work item).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class GaussianDice(SegmentationModel):
    """The randomized Gaussian Dice policy (§3.2.1)."""

    name = "GD"

    def __init__(self, seed: int | None = None, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else make_rng(seed)

    @staticmethod
    def decision_probability(x: float, sigma: float) -> float:
        """``O(x) = G(x) / G(0.5)`` — the acceptance probability (Figure 2).

        ``x`` is the produced/candidate size ratio and ``sigma`` the candidate
        segment size relative to the whole column.  A degenerate ``sigma`` of
        zero only accepts perfectly balanced splits.
        """
        if not 0.0 <= x <= 1.0:
            raise ValueError(f"size ratio x must be within [0, 1], got {x}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        denominator = 2.0 * sigma * sigma
        if denominator == 0.0:
            # A vanishing sigma (an infinitesimally small segment) only ever
            # accepts a perfectly balanced split.
            return 1.0 if x == 0.5 else 0.0
        exponent = ((x - 0.5) ** 2) / denominator
        if exponent > 700.0:  # exp() would underflow to a subnormal / raise
            return 0.0
        return math.exp(-exponent)

    def decide(
        self,
        query: ValueRange,
        segment: SegmentLike,
        *,
        total_bytes: float,
    ) -> SplitDecision:
        points = _clip_points(query, segment.vrange)
        if not points or segment.size_bytes <= 0 or total_bytes <= 0:
            return SplitDecision.no_split()
        produced = query.intersect(segment.vrange)
        x = segment.estimate_bytes(produced) / segment.size_bytes
        x = min(max(x, 0.0), 1.0)
        sigma = segment.size_bytes / total_bytes
        probability = self.decision_probability(x, sigma)
        if float(self._rng.random()) < probability:
            return SplitDecision(SplitAction.SPLIT_AT_BOUNDS, tuple(points))
        return SplitDecision.no_split()


class AdaptivePageModel(SegmentationModel):
    """The deterministic Adaptive Page Model policy (§3.2.2)."""

    name = "APM"

    def __init__(self, m_min: float = 3 * KB, m_max: float = 12 * KB) -> None:
        ensure_positive("m_min", m_min)
        ensure_positive("m_max", m_max)
        if m_min >= m_max:
            raise ValueError(f"m_min must be smaller than m_max, got {m_min} >= {m_max}")
        self.m_min = float(m_min)
        self.m_max = float(m_max)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdaptivePageModel(m_min={self.m_min:g}, m_max={self.m_max:g})"

    # -- rule helpers ------------------------------------------------------

    def _piece_sizes(self, segment: SegmentLike, points: list[float]) -> list[float]:
        """Estimated bytes of each piece a split at ``points`` would produce.

        Equivalent to ``[segment.estimate_bytes(sub) for sub in
        segment.vrange.split_at(points)]`` but computed from the edge list
        directly — no sub-range objects, and bit-identical arithmetic (the
        value width is a power of two, so the scale factor commutes exactly).
        """
        vrange = segment.vrange
        width = vrange.high - vrange.low
        cuts = vrange.interior_points(points)
        if width <= 0.0:
            return [0.0] * (len(cuts) + 1)
        size = segment.size_bytes
        edges = [vrange.low, *cuts, vrange.high]
        return [
            size * ((high - low) / width) for low, high in zip(edges[:-1], edges[1:])
        ]

    def _single_point(self, query: ValueRange, segment: SegmentLike, points: list[float]) -> float:
        """Rule 3: pick one split point among the query bounds or the middle.

        Candidates are ordered as in Algorithm 4 case 4: prefer the query
        bound whose query-side piece is smaller.  A candidate is acceptable if
        both resulting pieces stay above ``Mmin``; otherwise fall back to the
        approximate middle of the segment.
        """
        seg_range = segment.vrange

        def query_side_bytes(point: float) -> float:
            lower = ValueRange(seg_range.low, point)
            upper = ValueRange(point, seg_range.high)
            side = lower if lower.overlaps(query) or query.high <= point else upper
            return segment.estimate_bytes(side)

        ordered = sorted(points, key=query_side_bytes)
        for point in ordered:
            lower, upper = seg_range.split_at([point])
            if (
                segment.estimate_bytes(lower) >= self.m_min
                and segment.estimate_bytes(upper) >= self.m_min
            ):
                return point
        return seg_range.midpoint

    def decide(
        self,
        query: ValueRange,
        segment: SegmentLike,
        *,
        total_bytes: float,
    ) -> SplitDecision:
        points = _clip_points(query, segment.vrange)
        if not points:
            return SplitDecision.no_split()
        # Rule 1: small segments are left intact.
        if segment.size_bytes < self.m_min:
            return SplitDecision.no_split()
        # Rule 2: split at the query bounds when every piece is large enough.
        piece_sizes = self._piece_sizes(segment, points)
        if all(size >= self.m_min for size in piece_sizes):
            return SplitDecision(SplitAction.SPLIT_AT_BOUNDS, tuple(points))
        # Rule 3: pieces would be too small, but the segment itself is large.
        if segment.size_bytes > self.m_max:
            point = self._single_point(query, segment, points)
            if segment.vrange.low < point < segment.vrange.high:
                return SplitDecision(SplitAction.SPLIT_AT_POINT, (point,))
        return SplitDecision.no_split()


class AutoTunedAPM(AdaptivePageModel):
    """APM whose bounds follow the observed query footprint (extension).

    The paper's summary lists automatic determination of the APM parameters as
    future work.  This extension keeps a bounded history of the byte sizes
    queries actually selected and periodically re-derives
    ``Mmin = max(min_floor, 0.75 * median)`` and ``Mmax = 3 * median``, i.e.
    segments converge towards a small multiple of the typical selection.
    """

    name = "APM-auto"

    def __init__(
        self,
        initial_m_min: float = 3 * KB,
        initial_m_max: float = 12 * KB,
        *,
        history_size: int = 256,
        retune_every: int = 32,
        min_floor: float = 1 * KB,
    ) -> None:
        super().__init__(initial_m_min, initial_m_max)
        ensure_positive("history_size", history_size)
        ensure_positive("retune_every", retune_every)
        ensure_positive("min_floor", min_floor)
        self._history: list[float] = []
        self._history_size = int(history_size)
        self._retune_every = int(retune_every)
        self._min_floor = float(min_floor)
        self._observations = 0

    def observe(self, selected_bytes: float) -> None:
        if selected_bytes <= 0:
            return
        self._history.append(float(selected_bytes))
        if len(self._history) > self._history_size:
            del self._history[: len(self._history) - self._history_size]
        self._observations += 1
        if self._observations % self._retune_every == 0:
            self._retune()

    def _retune(self) -> None:
        if not self._history:
            return
        median = float(np.median(self._history))
        new_min = max(self._min_floor, 0.75 * median)
        new_max = max(new_min * 2.0, 3.0 * median)
        self.m_min = new_min
        self.m_max = new_max


def model_from_name(
    name: str,
    *,
    m_min: float = 3 * KB,
    m_max: float = 12 * KB,
    seed: int | None = None,
) -> SegmentationModel:
    """Factory used by the benchmark harness and the examples.

    ``name`` is case-insensitive and one of ``"gd"``, ``"apm"`` or
    ``"apm-auto"``.
    """
    key = name.strip().lower()
    if key in {"gd", "gaussian", "gaussian-dice"}:
        return GaussianDice(seed=seed)
    if key in {"apm", "adaptive-page-model"}:
        return AdaptivePageModel(m_min=m_min, m_max=m_max)
    if key in {"apm-auto", "auto", "autotuned"}:
        return AutoTunedAPM(initial_m_min=m_min, initial_m_max=m_max)
    raise ValueError(f"unknown segmentation model {name!r}")
