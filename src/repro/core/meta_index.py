"""The sparse segment meta-index.

The paper's segment optimizer keeps an in-memory catalogue of segment ranges
and sizes so that it can pre-select the segments overlapping a predicate and
estimate memory footprints *without touching the data* (§3.1).  This module
implements that catalogue for an ordered, non-overlapping list of segments
(the adaptive-segmentation layout).

Concurrency model (copy-on-write at the index level): every mutation —
``add`` or ``replace`` — stages its change in the writer-owned lists and then
*publishes* a fresh immutable :class:`MetaIndexSnapshot` with a single
reference assignment plus a generation bump.  Readers call
:meth:`SegmentMetaIndex.pin_snapshot` (one attribute read, no copy, no lock)
and execute entirely against the pinned snapshot, so they can never observe a
half-rewritten index even while the owning worker splits segments under them.
Segments themselves are immutable views over shared base arrays (the PR-2
zero-copy layout), so a snapshot that outlives a swap keeps serving the old
layout correctly until the last reference is dropped.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.ranges import ValueRange
from repro.core.segment import Segment


class MetaIndexSnapshot:
    """An immutable, point-in-time view of one column's segment list.

    All lookup methods of :class:`SegmentMetaIndex` are implemented here and
    the live index delegates to its current snapshot, so owner-thread reads
    and pinned reader-thread reads run the exact same code over the exact
    same structure.  The segment tuple and the bound caches are never mutated
    after construction; the numpy bound arrays for :meth:`route_many` are
    materialized lazily and cached (a racing double-build is benign — both
    threads compute identical arrays).
    """

    __slots__ = (
        "segments",
        "generation",
        "_lows",
        "_highs",
        "_lows_array",
        "_highs_array",
        # Snapshots must be weak-referenceable so tests can prove that a
        # released snapshot is actually collected (no reader-side leak).
        "__weakref__",
    )

    def __init__(self, segments: tuple[Segment, ...], generation: int) -> None:
        self.segments = segments
        self.generation = generation
        self._lows: tuple[float, ...] = tuple(s.vrange.low for s in segments)
        self._highs: tuple[float, ...] = tuple(s.vrange.high for s in segments)
        self._lows_array: np.ndarray | None = None
        self._highs_array: np.ndarray | None = None

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    def __getitem__(self, index: int) -> Segment:
        return self.segments[index]

    # -- lookups ------------------------------------------------------------

    def overlapping(self, vrange: ValueRange) -> list[Segment]:
        """Segments whose range overlaps ``vrange`` (in value order)."""
        if vrange.is_empty or not self.segments:
            return []
        start = bisect.bisect_right(self._lows, vrange.low) - 1
        start = max(start, 0)
        result: list[Segment] = []
        for segment in self.segments[start:]:
            if segment.vrange.low >= vrange.high:
                break
            if segment.vrange.overlaps(vrange):
                result.append(segment)
        return result

    def overlapping_classified(self, vrange: ValueRange) -> list[tuple[Segment, bool]]:
        """Overlapping segments in value order, tagged *fully contained*.

        The tag is decided purely from range metadata — no data is touched:
        a fully-contained segment's whole (sorted) payload answers the
        predicate, so callers take it as-is without even the binary-search
        probes.  At most the first and last overlapping segments can
        straddle a predicate bound.
        """
        return [
            (segment, vrange.contains_range(segment.vrange))
            for segment in self.overlapping(vrange)
        ]

    def route_many(self, lows: np.ndarray, highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized overlap lookup: segment index spans for N ranges at once.

        Returns per-range ``(start, stop)`` positions such that
        ``self[start:stop]`` are exactly the segments :meth:`overlapping`
        would return for the half-open range ``[lows[i], highs[i])`` — the
        whole batch is classified against the segment bounds in two
        ``np.searchsorted`` passes instead of N bisect walks.  Empty ranges
        (``low >= high``) yield empty spans, matching ``overlapping`` on an
        empty :class:`ValueRange`.  Combine with
        ``vrange.contains_range``-style bound comparisons to recover the
        *fully contained* tag of :meth:`overlapping_classified`.
        """
        seg_lows = self._lows_array
        seg_highs = self._highs_array
        if seg_lows is None or seg_highs is None:
            seg_lows = np.asarray(self._lows, dtype=np.float64)
            seg_highs = np.asarray(self._highs, dtype=np.float64)
            self._lows_array = seg_lows
            self._highs_array = seg_highs
        # Segments are ordered and non-overlapping, so their highs are sorted
        # too: the overlap span is [first high > low, first low >= high).
        starts = np.searchsorted(seg_highs, lows, side="right")
        stops = np.searchsorted(seg_lows, highs, side="left")
        stops = np.where((np.asarray(lows) >= np.asarray(highs)) | (stops < starts), starts, stops)
        return starts, stops

    def covering(self, value: float) -> Segment | None:
        """The segment containing ``value``, or ``None``."""
        position = bisect.bisect_right(self._lows, value) - 1
        if position < 0:
            return None
        segment = self.segments[position]
        return segment if segment.vrange.contains(value) else None

    def estimated_footprint_bytes(self, vrange: ValueRange) -> float:
        """Estimated bytes that must be read to answer a predicate on ``vrange``.

        This is the quantity the tactical optimizer uses for memory allocation
        decisions: the total size of all overlapping segments.
        """
        return sum(segment.size_bytes for segment in self.overlapping(vrange))


class SegmentMetaIndex:
    """Ordered sparse index over non-overlapping segments of one column.

    The index maintains the segments sorted by their lower bound and supports
    the three operations the segment optimizer needs: overlap lookup for a
    predicate range, replacement of a segment by its sub-segments after a
    split, and footprint estimation for a predicate.

    Mutations are single-writer (the column's owning worker thread); every
    mutation publishes a fresh :class:`MetaIndexSnapshot` that concurrent
    readers pin with :meth:`pin_snapshot`.
    """

    def __init__(self, segments: Iterable[Segment] = ()) -> None:
        self._segments: list[Segment] = []
        self._lows: list[float] = []
        self._highs: list[float] = []
        self._generation = 0
        self._checked_generation = -1
        self._snapshot = MetaIndexSnapshot((), 0)
        staged = False
        for segment in segments:
            self._add_staged(segment)
            staged = True
        if staged:
            self._publish()

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> Segment:
        return self._segments[index]

    @property
    def segments(self) -> list[Segment]:
        """The segments in value order (do not mutate)."""
        return list(self._segments)

    @property
    def generation(self) -> int:
        """The published snapshot generation (bumped on every mutation)."""
        return self._generation

    def pin_snapshot(self) -> MetaIndexSnapshot:
        """Pin the current immutable snapshot — one reference grab, no copy.

        The returned snapshot keeps answering lookups against the layout it
        captured even if adaptation swaps in a new one underneath; it is
        garbage-collected once the caller drops it.
        """
        return self._snapshot

    def _publish(self) -> None:
        """Publish the staged segment list as a fresh immutable snapshot."""
        self._generation += 1
        # Single atomic reference assignment: readers see either the old
        # snapshot or the new one, never an in-between state.
        self._snapshot = MetaIndexSnapshot(tuple(self._segments), self._generation)

    # -- maintenance -------------------------------------------------------

    def _add_staged(self, segment: Segment) -> None:
        """Insert into the writer-owned lists without publishing."""
        position = bisect.bisect_left(self._lows, segment.vrange.low)
        for neighbour_index in (position - 1, position):
            if 0 <= neighbour_index < len(self._segments):
                neighbour = self._segments[neighbour_index]
                if neighbour.vrange.overlaps(segment.vrange):
                    raise ValueError(
                        f"segment {segment.vrange} overlaps existing {neighbour.vrange}"
                    )
        self._segments.insert(position, segment)
        self._lows.insert(position, segment.vrange.low)
        self._highs.insert(position, segment.vrange.high)

    def add(self, segment: Segment) -> None:
        """Insert a segment, keeping the list ordered and non-overlapping."""
        self._add_staged(segment)
        self._publish()

    def replace(self, old: Segment, new_segments: list[Segment]) -> None:
        """Replace ``old`` with its sub-segments (after an adaptive split).

        ``old`` is located by bisecting the low-bound cache — segments are
        non-overlapping, so their lows are unique — instead of an O(n)
        linear scan.  The whole replacement is staged in the writer-owned
        lists first and published as one snapshot, so readers never see the
        gap between removal and re-insertion.
        """
        position = bisect.bisect_left(self._lows, old.vrange.low)
        while (
            position < len(self._segments)
            and self._lows[position] == old.vrange.low
            and self._segments[position] is not old
        ):
            position += 1
        if position >= len(self._segments) or self._segments[position] is not old:
            raise KeyError(f"segment {old.vrange} is not in the index")
        del self._segments[position]
        del self._lows[position]
        del self._highs[position]
        for offset, segment in enumerate(sorted(new_segments, key=lambda s: s.vrange.low)):
            self._segments.insert(position + offset, segment)
            self._lows.insert(position + offset, segment.vrange.low)
            self._highs.insert(position + offset, segment.vrange.high)
        self._publish()

    # -- lookups ------------------------------------------------------------

    def overlapping(self, vrange: ValueRange) -> list[Segment]:
        """Segments whose range overlaps ``vrange`` (in value order)."""
        return self._snapshot.overlapping(vrange)

    def overlapping_classified(self, vrange: ValueRange) -> list[tuple[Segment, bool]]:
        """Overlapping segments in value order, tagged *fully contained*."""
        return self._snapshot.overlapping_classified(vrange)

    def route_many(self, lows: np.ndarray, highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized overlap lookup (see :meth:`MetaIndexSnapshot.route_many`)."""
        return self._snapshot.route_many(lows, highs)

    def covering(self, value: float) -> Segment | None:
        """The segment containing ``value``, or ``None``."""
        return self._snapshot.covering(value)

    def estimated_footprint_bytes(self, vrange: ValueRange) -> float:
        """Estimated bytes that must be read to answer a predicate on ``vrange``."""
        return self._snapshot.estimated_footprint_bytes(vrange)

    # -- integrity -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, bookkeeping, snapshot publication and per-segment
        invariants — without building throwaway lists, so stress tests can
        call this on every iteration.
        """
        segments = self._segments
        lows = self._lows
        highs = self._highs
        if not (len(segments) == len(lows) == len(highs)):
            raise AssertionError("meta-index bound caches disagree on length")
        previous_high = -float("inf")
        for index, segment in enumerate(segments):
            vrange = segment.vrange
            if vrange.low < previous_high:
                raise AssertionError(
                    f"segment {vrange} overlaps its predecessor or is out of order"
                )
            previous_high = vrange.high
            if lows[index] != vrange.low:
                raise AssertionError("meta-index low-bound cache is stale")
            if highs[index] != vrange.high:
                raise AssertionError("meta-index high-bound cache is stale")
            segment.check_invariants()
        snapshot = self._snapshot
        if snapshot.generation != self._generation:
            raise AssertionError(
                f"published snapshot generation {snapshot.generation} lags "
                f"index generation {self._generation}"
            )
        if self._generation < self._checked_generation:
            raise AssertionError(
                f"snapshot generation moved backwards: {self._generation} < "
                f"{self._checked_generation}"
            )
        self._checked_generation = self._generation
        if len(snapshot.segments) != len(segments):
            raise AssertionError("published snapshot is stale (length mismatch)")
        for live, published in zip(segments, snapshot.segments):
            if live is not published:
                raise AssertionError("published snapshot is stale (segment mismatch)")
