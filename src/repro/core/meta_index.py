"""The sparse segment meta-index.

The paper's segment optimizer keeps an in-memory catalogue of segment ranges
and sizes so that it can pre-select the segments overlapping a predicate and
estimate memory footprints *without touching the data* (§3.1).  This module
implements that catalogue for an ordered, non-overlapping list of segments
(the adaptive-segmentation layout).
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.ranges import ValueRange
from repro.core.segment import Segment


class SegmentMetaIndex:
    """Ordered sparse index over non-overlapping segments of one column.

    The index maintains the segments sorted by their lower bound and supports
    the three operations the segment optimizer needs: overlap lookup for a
    predicate range, replacement of a segment by its sub-segments after a
    split, and footprint estimation for a predicate.
    """

    def __init__(self, segments: Iterable[Segment] = ()) -> None:
        self._segments: list[Segment] = []
        self._lows: list[float] = []
        self._highs: list[float] = []
        for segment in segments:
            self.add(segment)

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __getitem__(self, index: int) -> Segment:
        return self._segments[index]

    @property
    def segments(self) -> list[Segment]:
        """The segments in value order (do not mutate)."""
        return list(self._segments)

    # -- maintenance -------------------------------------------------------

    def add(self, segment: Segment) -> None:
        """Insert a segment, keeping the list ordered and non-overlapping."""
        position = bisect.bisect_left(self._lows, segment.vrange.low)
        for neighbour_index in (position - 1, position):
            if 0 <= neighbour_index < len(self._segments):
                neighbour = self._segments[neighbour_index]
                if neighbour.vrange.overlaps(segment.vrange):
                    raise ValueError(
                        f"segment {segment.vrange} overlaps existing {neighbour.vrange}"
                    )
        self._segments.insert(position, segment)
        self._lows.insert(position, segment.vrange.low)
        self._highs.insert(position, segment.vrange.high)

    def replace(self, old: Segment, new_segments: list[Segment]) -> None:
        """Replace ``old`` with its sub-segments (after an adaptive split).

        ``old`` is located by bisecting the low-bound cache — segments are
        non-overlapping, so their lows are unique — instead of an O(n)
        linear scan.
        """
        position = bisect.bisect_left(self._lows, old.vrange.low)
        while (
            position < len(self._segments)
            and self._lows[position] == old.vrange.low
            and self._segments[position] is not old
        ):
            position += 1
        if position >= len(self._segments) or self._segments[position] is not old:
            raise KeyError(f"segment {old.vrange} is not in the index")
        del self._segments[position]
        del self._lows[position]
        del self._highs[position]
        for offset, segment in enumerate(sorted(new_segments, key=lambda s: s.vrange.low)):
            self._segments.insert(position + offset, segment)
            self._lows.insert(position + offset, segment.vrange.low)
            self._highs.insert(position + offset, segment.vrange.high)

    # -- lookups ------------------------------------------------------------

    def overlapping(self, vrange: ValueRange) -> list[Segment]:
        """Segments whose range overlaps ``vrange`` (in value order)."""
        if vrange.is_empty or not self._segments:
            return []
        start = bisect.bisect_right(self._lows, vrange.low) - 1
        start = max(start, 0)
        result: list[Segment] = []
        for segment in self._segments[start:]:
            if segment.vrange.low >= vrange.high:
                break
            if segment.vrange.overlaps(vrange):
                result.append(segment)
        return result

    def overlapping_classified(self, vrange: ValueRange) -> list[tuple[Segment, bool]]:
        """Overlapping segments in value order, tagged *fully contained*.

        The tag is decided purely from range metadata — no data is touched:
        a fully-contained segment's whole (sorted) payload answers the
        predicate, so callers take it as-is without even the binary-search
        probes.  At most the first and last overlapping segments can
        straddle a predicate bound.
        """
        return [
            (segment, vrange.contains_range(segment.vrange))
            for segment in self.overlapping(vrange)
        ]

    def route_many(self, lows: np.ndarray, highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized overlap lookup: segment index spans for N ranges at once.

        Returns per-range ``(start, stop)`` positions such that
        ``self[start:stop]`` are exactly the segments :meth:`overlapping`
        would return for the half-open range ``[lows[i], highs[i])`` — the
        whole batch is classified against the segment bounds in two
        ``np.searchsorted`` passes instead of N bisect walks.  Empty ranges
        (``low >= high``) yield empty spans, matching ``overlapping`` on an
        empty :class:`ValueRange`.  Combine with
        ``vrange.contains_range``-style bound comparisons to recover the
        *fully contained* tag of :meth:`overlapping_classified`.
        """
        seg_lows = np.asarray(self._lows, dtype=np.float64)
        seg_highs = np.asarray(self._highs, dtype=np.float64)
        # Segments are ordered and non-overlapping, so their highs are sorted
        # too: the overlap span is [first high > low, first low >= high).
        starts = np.searchsorted(seg_highs, lows, side="right")
        stops = np.searchsorted(seg_lows, highs, side="left")
        stops = np.where((np.asarray(lows) >= np.asarray(highs)) | (stops < starts), starts, stops)
        return starts, stops

    def covering(self, value: float) -> Segment | None:
        """The segment containing ``value``, or ``None``."""
        position = bisect.bisect_right(self._lows, value) - 1
        if position < 0:
            return None
        segment = self._segments[position]
        return segment if segment.vrange.contains(value) else None

    def estimated_footprint_bytes(self, vrange: ValueRange) -> float:
        """Estimated bytes that must be read to answer a predicate on ``vrange``.

        This is the quantity the tactical optimizer uses for memory allocation
        decisions: the total size of all overlapping segments.
        """
        return sum(segment.size_bytes for segment in self.overlapping(vrange))

    # -- integrity -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify ordering, adjacency bookkeeping and per-segment invariants."""
        for first, second in zip(self._segments, self._segments[1:]):
            if first.vrange.high > second.vrange.low:
                raise AssertionError(
                    f"segments {first.vrange} and {second.vrange} overlap or are out of order"
                )
        if [s.vrange.low for s in self._segments] != self._lows:
            raise AssertionError("meta-index low-bound cache is stale")
        if [s.vrange.high for s in self._segments] != self._highs:
            raise AssertionError("meta-index high-bound cache is stale")
        for segment in self._segments:
            segment.check_invariants()
