"""Adaptive replication (paper §5, Algorithms 2-5).

Instead of reorganizing a column in place, adaptive replication keeps query
results as *replica segments* arranged in a replica tree.  Per query the
system:

1. finds the minimal covering set of materialized segments (Algorithm 3),
2. analyses each covering segment's subtree with the segmentation model and
   decides which replicas to create (Algorithm 4),
3. materializes the chosen replicas (and the query result) with a single scan
   of the covering segment (Algorithm 2), and
4. drops segments that are fully replicated by their children, releasing
   storage (Algorithm 5).

Compared with adaptive segmentation the reorganization overhead is smaller —
only pieces queries expressed interest in are ever copied — at the price of
extra storage for the replicas.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accounting import IOAccountant, QueryLog, QueryStats
from repro.core.models import SegmentationModel, SplitAction
from repro.core.ranges import ValueRange, domain_of
from repro.core.replica_tree import CoverSnapshot, ReplicaNode, ReplicaTree
from repro.core.segment import SelectionResult, Segment
from repro.core.strategy import AdaptiveColumnBase, ReadObservations, register_strategy


@register_strategy
class ReplicatedColumn(AdaptiveColumnBase):
    """A column augmented with a workload-driven replica tree.

    Parameters mirror :class:`repro.core.segmentation.SegmentedColumn`; the
    extra ``storage_budget`` implements the paper's future-work item of
    bounding replica storage (least-recently-used replicas are released when
    the budget is exceeded).
    """

    strategy_name = "replication"
    requires_model = True
    display_short = "Repl"
    #: Replication answers batches through the inherited sequential
    #: ``select_many`` fallback: Algorithm 2 interleaves cover computation,
    #: replica analysis and materialization per query, and each query's
    #: minimal cover depends on the replicas the previous one materialized —
    #: a batch kernel would have to re-derive the tree per member anyway.
    supports_batch = False
    supports_snapshot_reads = True

    def __init__(
        self,
        values: np.ndarray,
        *,
        model: SegmentationModel,
        oids: np.ndarray | None = None,
        domain: tuple[float, float] | None = None,
        accountant: IOAccountant | None = None,
        keep_history: bool = True,
        time_phases: bool = True,
        storage_budget: float | None = None,
    ) -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be a one-dimensional array")
        if values.size == 0:
            raise ValueError("cannot build a replicated column from an empty array")
        self.model = model
        self.dtype = values.dtype
        self.value_width = int(values.dtype.itemsize)
        self.domain = (
            ValueRange(float(domain[0]), float(domain[1])) if domain is not None else domain_of(values)
        )
        root_segment = Segment(self.domain, values, oids, value_width=self.value_width)
        root_segment.check_invariants()
        self.tree = ReplicaTree(root_segment)
        self.total_bytes = root_segment.size_bytes
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.history: QueryLog | None = QueryLog() if keep_history else None
        self._time_phases = time_phases
        self._queries_executed = 0
        if storage_budget is not None and storage_budget < self.total_bytes:
            raise ValueError(
                "storage_budget must be at least the column size "
                f"({self.total_bytes:g} bytes), got {storage_budget:g}"
            )
        self.storage_budget = storage_budget
        self._last_access: dict[int, int] = {}
        self.peak_storage_bytes = self.total_bytes
        self._read_observations = ReadObservations()
        self._snapshot_generation = 0
        self._cover_dirty = False
        self._cover_snapshot = CoverSnapshot.capture(self.tree, 0)

    # -- public API --------------------------------------------------------

    @property
    def storage_bytes(self) -> float:
        """Total bytes held by materialized replica segments (Figures 8/9)."""
        return self.tree.storage_bytes

    @property
    def segment_count(self) -> int:
        """Number of nodes in the replica tree (materialized and virtual)."""
        return self.tree.node_count

    @property
    def segments(self) -> list[Segment]:
        """The segments of every replica-tree node (value order not guaranteed)."""
        return [node.segment for node in self.tree.walk()]

    @property
    def tree_depth(self) -> int:
        """Depth of the replica tree (a §6.1.3 quantity)."""
        return self.tree.depth

    def select(self, low: float, high: float) -> SelectionResult:
        """Answer ``low <= value < high`` and adapt the replica tree."""
        query = ValueRange(float(low), float(high)).intersect(self.domain)
        stats = QueryStats(index=self._queries_executed, low=float(low), high=float(high))
        self.accountant.attach(stats)
        try:
            if query.is_empty:
                result = SelectionResult.empty(self.dtype)
            else:
                result = self._execute(query, stats)
        finally:
            self.accountant.detach()
        stats.result_count = result.count
        stats.segment_count = self.segment_count
        stats.storage_bytes = self.storage_bytes
        self.peak_storage_bytes = max(self.peak_storage_bytes, stats.storage_bytes)
        self._queries_executed += 1
        if self.history is not None:
            self.history.append(stats)
        self.model.observe(result.count * self.value_width)
        # Publish a fresh cover snapshot once per mutating query, outside the
        # per-phase timings: one reference assignment makes the new layout
        # visible to readers, which keep their pinned snapshots meanwhile.
        if self._cover_dirty:
            self._publish_snapshot()
        return result

    # -- snapshot reads -------------------------------------------------------

    def _publish_snapshot(self) -> None:
        self._snapshot_generation += 1
        self._cover_snapshot = CoverSnapshot.capture(self.tree, self._snapshot_generation)
        self._cover_dirty = False

    def pin_snapshot(self) -> CoverSnapshot:
        """Pin the current immutable cover snapshot (one reference grab).

        Snapshots capture payload *array references*, not live segments, so a
        pinned snapshot keeps answering correctly even after budget evictions
        ``free()`` the corresponding live nodes.
        """
        return self._cover_snapshot

    def select_readonly(
        self, low: float, high: float, snapshot: CoverSnapshot | None = None
    ) -> SelectionResult:
        """Answer ``low <= value < high`` from a pinned snapshot, adaptation-free.

        Runs Algorithm 3's cover recursion and the per-node sorted probes
        against the frozen forest — no replica analysis, no materialization,
        no budget enforcement, no accounting.  The observation is recorded
        into :attr:`read_observations` for the owning worker.
        """
        query = ValueRange(float(low), float(high)).intersect(self.domain)
        if query.is_empty:
            self.read_observations.record(float(low), float(high), 0.0)
            return SelectionResult.empty(self.dtype)
        snap = snapshot if snapshot is not None else self._cover_snapshot
        parts = [node.select(query) for node in snap.cover(query)]
        result = SelectionResult.concatenate(parts, self.dtype)
        self.read_observations.record(float(low), float(high), result.count * self.value_width)
        return result

    def absorb_reads(self) -> int:
        """Absorb drained snapshot-read observations on the owning worker.

        Replication's structural adaptation (replica analysis, materialization,
        drops) is deliberately *not* replayed here: Algorithm 2 interleaves it
        with the covering scan, and each query's minimal cover depends on the
        replicas the previous one materialized — replaying stale covers would
        materialize replicas nobody scanned for.  Snapshot reads therefore
        only feed the segmentation model's result-size average and the query
        ledger; the next mutating ``select`` adapts from fresh state.
        """
        bounds, result_bytes = self.read_observations.drain()
        if not bounds:
            return 0
        stats = QueryStats(
            index=self._queries_executed,
            low=min(low for low, _ in bounds),
            high=max(high for _, high in bounds),
            batch_size=len(bounds),
        )
        stats.result_count = int(round(sum(result_bytes) / self.value_width))
        stats.segment_count = self.segment_count
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += len(bounds)
        if self.history is not None:
            self.history.append(stats)
        self.model.observe(sum(result_bytes) / len(bounds))
        return len(bounds)

    # -- Algorithm 2: the per-query driver -----------------------------------

    def _now(self) -> float:
        return time.perf_counter() if self._time_phases else 0.0

    def _execute(self, query: ValueRange, stats: QueryStats) -> SelectionResult:
        cover = self.get_cover(query)
        parts: list[SelectionResult] = []
        for node in cover:
            self.accountant.record_read(node.size_bytes, node.segment)
            self._last_access[id(node)] = self._queries_executed

            started = self._now()
            parts.append(node.segment.select(query))
            stats.selection_seconds += self._now() - started

            started = self._now()
            to_materialize = self.analyze_replicas(query, node)
            self._materialize(node, to_materialize, stats)
            stats.adaptation_seconds += self._now() - started

        started = self._now()
        result = SelectionResult.concatenate(parts, self.dtype)
        stats.selection_seconds += self._now() - started

        if self.storage_budget is not None:
            started = self._now()
            self._enforce_budget(stats)
            stats.adaptation_seconds += self._now() - started
        return result

    # -- Algorithm 3: minimal covering set ---------------------------------------

    def get_cover(self, query: ValueRange) -> list[ReplicaNode]:
        """Minimal set of materialized segments covering the query range.

        The recursion prefers the deepest materialized descendants and
        backtracks to an ancestor whenever a subtree would require a virtual
        segment (which holds no data).
        """
        cover: list[ReplicaNode] = []
        for root in self.tree.roots_overlapping(query):
            sub = self._cover_node(root, query)
            if sub is None:
                raise RuntimeError(
                    f"replica tree cannot cover query {query}: invariant violated"
                )
            cover.extend(sub)
        return cover

    def _cover_node(self, node: ReplicaNode, query: ValueRange) -> list[ReplicaNode] | None:
        if node.is_leaf:
            return [node] if node.materialized else None
        collected: list[ReplicaNode] = []
        for child in node.children:
            if not child.vrange.overlaps(query):
                continue
            sub = self._cover_node(child, query)
            if sub is None:
                # Backtrack: some part of the query below is only virtual.
                return [node] if node.materialized else None
            collected.extend(sub)
        return collected

    # -- Algorithm 4: replica analysis ------------------------------------------

    def analyze_replicas(self, query: ValueRange, cover_node: ReplicaNode) -> list[ReplicaNode]:
        """Decide which replicas to create below ``cover_node`` for this query.

        Returns the nodes whose payload should be materialized from the
        covering segment's scan: existing virtual leaves that are materialized
        without splitting (case 0) and newly created query-side children
        (cases 1-4).
        """
        to_materialize: list[ReplicaNode] = []
        self._analyze_node(cover_node, query, to_materialize)
        return to_materialize

    def _analyze_node(
        self, node: ReplicaNode, query: ValueRange, to_materialize: list[ReplicaNode]
    ) -> None:
        if not node.is_leaf:
            for child in node.children:
                if child.vrange.overlaps(query):
                    self._analyze_node(child, query, to_materialize)
            return
        decision = self.model.decide(query, node.segment, total_bytes=self.total_bytes)
        if not decision.should_split:
            # Case 0: the query covers the leaf entirely, or splitting would
            # fragment it; a virtual leaf is materialized without splitting.
            if not node.materialized:
                to_materialize.append(node)
            return
        pieces = node.vrange.split_at(list(decision.points))
        if len(pieces) <= 1:
            if not node.materialized:
                to_materialize.append(node)
            return
        materialize_ranges = self._query_side_pieces(pieces, query, decision.action)
        self._cover_dirty = True
        for piece in pieces:
            child_segment = Segment(
                piece,
                value_width=self.value_width,
                estimated_count=node.segment.estimate_count(piece),
            )
            child = ReplicaNode(child_segment)
            node.add_child(child)
            if piece in materialize_ranges:
                to_materialize.append(child)

    @staticmethod
    def _query_side_pieces(
        pieces: list[ValueRange], query: ValueRange, action: SplitAction
    ) -> set[ValueRange]:
        """The sub-ranges that should become materialized replicas.

        For splits at the query bounds these are exactly the pieces inside the
        selection range (cases 1-3); for a single-point split (case 4) it is
        the piece holding the larger share of the selection, i.e. the smallest
        super-set of the query the model was willing to create.
        """
        if action is SplitAction.SPLIT_AT_BOUNDS:
            return {piece for piece in pieces if query.contains_range(piece)}
        best = max(pieces, key=lambda piece: piece.intersect(query).width)
        return {best}

    # -- materialization and drops -------------------------------------------------

    def _materialize(
        self, cover_node: ReplicaNode, to_materialize: list[ReplicaNode], stats: QueryStats
    ) -> None:
        """Single scan of the covering segment materializes every chosen replica.

        Replicas are zero-copy slices of the covering segment's sorted
        payload (:meth:`ReplicaNode.materialize_from`); the write accounting
        records the logical bytes of each replica exactly as before.
        """
        if to_materialize:
            self._cover_dirty = True
        for node in to_materialize:
            piece = node.materialize_from(cover_node)
            self.accountant.record_write(piece.size_bytes, piece)
            stats.replicas_materialized += 1
            self._last_access[id(node)] = self._queries_executed
        for node in to_materialize:
            self._propagate_drop(node.parent, stats)

    def _propagate_drop(self, node: ReplicaNode | None, stats: QueryStats) -> None:
        """Algorithm 5: drop ancestors that became fully replicated."""
        while node is not None:
            if node.is_leaf or not all(child.materialized for child in node.children):
                return
            parent = node.parent
            if node.materialized:
                node.segment.free()
            self.tree.splice_out(node)
            self._last_access.pop(id(node), None)
            stats.segments_dropped += 1
            self._cover_dirty = True
            node = parent

    # -- storage budget (extension) ---------------------------------------------------

    def _enforce_budget(self, stats: QueryStats) -> None:
        """Release least-recently-used replicas until the budget is respected.

        Only nodes with a materialized ancestor are candidates: releasing them
        never breaks query coverage, the data is simply re-read from the
        ancestor when needed again.
        """
        if self.storage_budget is None or self.storage_bytes <= self.storage_budget:
            return
        candidates = [
            node
            for node in self.tree.walk()
            if node.materialized and self._has_materialized_ancestor(node)
        ]
        candidates.sort(key=lambda node: self._last_access.get(id(node), -1))
        for node in candidates:
            if self.storage_bytes <= self.storage_budget:
                break
            node.segment.free()
            stats.segments_dropped += 1
            self._cover_dirty = True

    @staticmethod
    def _has_materialized_ancestor(node: ReplicaNode) -> bool:
        ancestor = node.parent
        while ancestor is not None:
            if ancestor.materialized:
                return True
            ancestor = ancestor.parent
        return False

    # -- integrity ----------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the replica-tree structural invariants."""
        self.tree.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReplicatedColumn(nodes={self.segment_count}, depth={self.tree_depth}, "
            f"storage={self.storage_bytes:g}B, model={self.model.name})"
        )
