"""The replica tree used by adaptive replication (paper §5).

Segments are organised hierarchically: a segment is a child of another when
its value range is a sub-range of the parent's.  Nodes are *materialized*
(hold data) or *virtual* (range and size estimate only, used to complete the
ranges of their materialized siblings).  Dropping a fully replicated node
splices its children into its parent — or into the top-level forest when the
node was a root, which is how the original column eventually disappears once
its replicas cover the whole domain.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.ranges import ValueRange
from repro.core.segment import Segment, SelectionResult
from repro.util.sorted_search import sorted_probe


class ReplicaNode:
    """One node of the replica tree: a segment plus tree links."""

    __slots__ = ("segment", "parent", "children")

    def __init__(self, segment: Segment, parent: "ReplicaNode | None" = None) -> None:
        self.segment = segment
        self.parent = parent
        self.children: list[ReplicaNode] = []

    # -- convenience pass-throughs ----------------------------------------

    @property
    def vrange(self) -> ValueRange:
        return self.segment.vrange

    @property
    def materialized(self) -> bool:
        return self.segment.materialized

    @property
    def size_bytes(self) -> float:
        return self.segment.size_bytes

    @property
    def count(self) -> float:
        return self.segment.count

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def estimate_bytes(self, sub: ValueRange) -> float:
        return self.segment.estimate_bytes(sub)

    # -- structure maintenance ----------------------------------------------

    def materialize_from(self, source: "ReplicaNode") -> Segment:
        """Materialize this node's payload from ``source``'s segment.

        With the sorted zero-copy layout the replica is a slice *view* of the
        source's base array — creating it moves no payload bytes physically.
        The caller remains responsible for accounting the *logical* write
        (``piece.size_bytes``), which is what the paper's figures count.
        """
        piece = source.segment.extract(self.vrange)
        self.segment = piece
        return piece

    def add_child(self, node: "ReplicaNode") -> None:
        """Attach ``node`` below this node, keeping children ordered by range."""
        if not self.vrange.contains_range(node.vrange):
            raise ValueError(
                f"child range {node.vrange} is not contained in parent range {self.vrange}"
            )
        node.parent = self
        self.children.append(node)
        self.children.sort(key=lambda child: child.vrange.low)

    def depth(self) -> int:
        """Number of edges from this node down to its deepest leaf."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def walk(self) -> Iterator["ReplicaNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "mat" if self.materialized else "vir"
        return f"ReplicaNode({self.vrange}, {kind}, children={len(self.children)})"


class ReplicaTree:
    """The forest of replica nodes covering the attribute domain.

    The tree starts as a single materialized root holding the whole column.
    Dropped roots are replaced by their children, so the structure is a forest
    whose top-level ranges always partition the domain.
    """

    def __init__(self, root_segment: Segment) -> None:
        self.domain = root_segment.vrange
        self.value_width = root_segment.value_width
        self.roots: list[ReplicaNode] = [ReplicaNode(root_segment)]

    # -- iteration ------------------------------------------------------------

    def walk(self) -> Iterator[ReplicaNode]:
        """Pre-order traversal of every node in the forest."""
        for root in self.roots:
            yield from root.walk()

    def nodes(self) -> list[ReplicaNode]:
        """All nodes of the forest as a list."""
        return list(self.walk())

    def materialized_nodes(self) -> list[ReplicaNode]:
        """All nodes currently holding data."""
        return [node for node in self.walk() if node.materialized]

    def leaves(self) -> list[ReplicaNode]:
        """All leaf nodes of the forest."""
        return [node for node in self.walk() if node.is_leaf]

    # -- metrics ----------------------------------------------------------------

    @property
    def storage_bytes(self) -> float:
        """Total bytes held by materialized nodes (the Figure 8/9 quantity)."""
        return sum(node.size_bytes for node in self.materialized_nodes())

    @property
    def node_count(self) -> int:
        """Total number of nodes (materialized and virtual)."""
        return sum(1 for _ in self.walk())

    @property
    def depth(self) -> int:
        """Depth of the deepest root subtree."""
        return max((root.depth() for root in self.roots), default=0)

    # -- structure maintenance ----------------------------------------------------

    def roots_overlapping(self, query: ValueRange) -> list[ReplicaNode]:
        """Top-level nodes whose range overlaps the query."""
        return [root for root in self.roots if root.vrange.overlaps(query)]

    def splice_out(self, node: ReplicaNode) -> None:
        """Remove ``node`` from the tree, re-attaching its children to its parent.

        This is the structural part of Algorithm 5 (``check4Drop``); freeing
        the node's storage is the caller's responsibility so that it can be
        accounted.
        """
        children = list(node.children)
        parent = node.parent
        if parent is None:
            position = self.roots.index(node)
            for child in children:
                child.parent = None
            self.roots[position : position + 1] = sorted(
                children, key=lambda child: child.vrange.low
            )
        else:
            parent.children.remove(node)
            for child in children:
                child.parent = parent
                parent.children.append(child)
            parent.children.sort(key=lambda child: child.vrange.low)
        node.children = []
        node.parent = None

    # -- integrity ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify range containment, child partitioning and coverage invariants."""
        covered = sorted((root.vrange for root in self.roots), key=lambda r: r.low)
        position = self.domain.low
        for vrange in covered:
            if vrange.low != position:
                raise AssertionError("top-level replica ranges do not partition the domain")
            position = vrange.high
        if position != self.domain.high:
            raise AssertionError("top-level replica ranges do not cover the domain")
        for node in self.walk():
            node.segment.check_invariants()
            if not node.children:
                continue
            child_position = node.vrange.low
            for child in node.children:
                if not node.vrange.contains_range(child.vrange):
                    raise AssertionError(
                        f"child {child.vrange} escapes its parent {node.vrange}"
                    )
                if child.vrange.low != child_position:
                    raise AssertionError(
                        f"children of {node.vrange} do not partition it (gap before {child.vrange})"
                    )
                child_position = child.vrange.high
            if child_position != node.vrange.high:
                raise AssertionError(f"children of {node.vrange} do not cover it")
        self._check_virtual_coverage()

    def _check_virtual_coverage(self) -> None:
        """Every virtual leaf must have a materialized ancestor (query coverage)."""
        for node in self.walk():
            if node.materialized or node.children:
                continue
            ancestor = node.parent
            while ancestor is not None and not ancestor.materialized:
                ancestor = ancestor.parent
            if ancestor is None:
                raise AssertionError(
                    f"virtual leaf {node.vrange} has no materialized ancestor; "
                    "queries hitting it could not be answered"
                )


class FrozenReplicaNode:
    """An immutable copy of one replica-tree node for snapshot readers.

    Unlike segmentation segments — which are never mutated after creation —
    a live :class:`ReplicaNode`'s segment is mutated in place
    (``materialize_from`` swaps the payload in, ``free`` nulls it out), so a
    snapshot must capture the *payload array references*, not the live
    ``Segment`` objects.  The captured numpy views stay valid after a later
    ``free()`` because freeing only drops the segment's references.
    """

    __slots__ = ("vrange", "values", "oids", "children")

    def __init__(
        self,
        vrange: ValueRange,
        values: np.ndarray | None,
        oids: np.ndarray | None,
        children: tuple["FrozenReplicaNode", ...],
    ) -> None:
        self.vrange = vrange
        self.values = values
        self.oids = oids
        self.children = children

    @property
    def materialized(self) -> bool:
        return self.values is not None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def select(self, query: ValueRange) -> SelectionResult:
        """Extract the values/oids falling into ``query`` — zero-copy views.

        Mirrors :meth:`Segment.bounds` / :meth:`Segment.select` exactly:
        the fully-contained case is answered from range metadata alone,
        otherwise two ``side="left"`` binary probes slice the sorted payload.
        """
        values = self.values
        oids = self.oids
        assert values is not None and oids is not None
        if query.low <= self.vrange.low and query.high >= self.vrange.high:
            return SelectionResult(values, oids, values_sorted=True)
        lo = sorted_probe(values, query.low, side="left")
        hi = sorted_probe(values, query.high, side="left")
        if lo == 0 and hi == values.size:
            return SelectionResult(values, oids, values_sorted=True)
        return SelectionResult(values[lo:hi], oids[lo:hi], values_sorted=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "mat" if self.materialized else "vir"
        return f"FrozenReplicaNode({self.vrange}, {kind}, children={len(self.children)})"


class CoverSnapshot:
    """An immutable point-in-time view of a replica tree for snapshot readers.

    Captured on the owning worker (never concurrently with mutation) and
    published by reference assignment; readers run Algorithm 3's cover
    recursion and the per-node range probes entirely against frozen nodes,
    so live materialization, drops and budget evictions can proceed
    underneath without ever tearing a read.
    """

    __slots__ = ("domain", "roots", "generation", "__weakref__")

    def __init__(
        self, domain: ValueRange, roots: tuple[FrozenReplicaNode, ...], generation: int
    ) -> None:
        self.domain = domain
        self.roots = roots
        self.generation = generation

    @classmethod
    def capture(cls, tree: ReplicaTree, generation: int) -> "CoverSnapshot":
        """Freeze the forest: every node's range, payload refs and children."""

        def freeze(node: ReplicaNode) -> FrozenReplicaNode:
            segment = node.segment
            return FrozenReplicaNode(
                segment.vrange,
                segment.values,
                segment.oids,
                tuple(freeze(child) for child in node.children),
            )

        return cls(tree.domain, tuple(freeze(root) for root in tree.roots), generation)

    def cover(self, query: ValueRange) -> list[FrozenReplicaNode]:
        """Minimal covering set over the frozen forest (Algorithm 3).

        Identical recursion to :meth:`ReplicatedColumn.get_cover` /
        ``_cover_node``: prefer the deepest materialized descendants,
        backtrack to a materialized ancestor whenever part of the query
        below is only virtual.
        """
        cover: list[FrozenReplicaNode] = []
        for root in self.roots:
            if not root.vrange.overlaps(query):
                continue
            sub = self._cover_node(root, query)
            if sub is None:
                raise RuntimeError(
                    f"replica snapshot cannot cover query {query}: invariant violated"
                )
            cover.extend(sub)
        return cover

    def _cover_node(
        self, node: FrozenReplicaNode, query: ValueRange
    ) -> list[FrozenReplicaNode] | None:
        if node.is_leaf:
            return [node] if node.materialized else None
        collected: list[FrozenReplicaNode] = []
        for child in node.children:
            if not child.vrange.overlaps(query):
                continue
            sub = self._cover_node(child, query)
            if sub is None:
                return [node] if node.materialized else None
            collected.extend(sub)
        return collected
