"""Adaptive segmentation (paper §4, Algorithm 1).

A column is represented as a sequence of adjacent, non-overlapping segments
covering the attribute domain.  Initially the whole column is one segment.
Every range selection offers an opportunity to split the segments it overlaps;
whether the opportunity is taken is decided by a segmentation model (GD or
APM).  When a split is taken, the segment is *eagerly* replaced in place by
its two or three sub-segments — the query result is piggy-backed on this
reorganization, and the pieces outside the selection constitute the
reorganization overhead the paper measures as memory writes.

With the sorted zero-copy segment layout (:mod:`repro.core.segment`), a
split produces slice views over the shared payload and a selection over a
fully-contained segment returns its payload directly; the accountants keep
counting *logical* bytes (``count * value_width``), so the read/write
figures are unchanged.
"""

from __future__ import annotations

import time

import numpy as np

from typing import Sequence

from repro.core.accounting import IOAccountant, QueryLog, QueryStats
from repro.core.meta_index import MetaIndexSnapshot, SegmentMetaIndex
from repro.core.models import SegmentationModel
from repro.core.ranges import ValueRange, domain_of
from repro.core.segment import SelectionResult, Segment
from repro.core.strategy import (
    AdaptiveColumnBase,
    ReadObservations,
    batch_bounds_arrays,
    register_strategy,
)


@register_strategy
class SegmentedColumn(AdaptiveColumnBase):
    """A column organised as value-ranged segments that adapt to the workload.

    Parameters
    ----------
    values:
        The column payload (any numeric numpy array).
    model:
        Segmentation model deciding when to split (GD or APM).
    oids:
        Optional object identifiers; defaults to the positional order.
    domain:
        The attribute domain as a ``(low, high)`` pair (half-open).  Defaults
        to the smallest range containing the data.
    accountant:
        Byte counters; a private one is created when omitted.
    keep_history:
        Record one :class:`QueryStats` per query (needed by the harness).
    time_phases:
        Measure wall-clock selection/adaptation time per query.
    """

    strategy_name = "segmentation"
    requires_model = True
    display_short = "Segm"
    supports_batch = True
    supports_snapshot_reads = True

    def __init__(
        self,
        values: np.ndarray,
        *,
        model: SegmentationModel,
        oids: np.ndarray | None = None,
        domain: tuple[float, float] | None = None,
        accountant: IOAccountant | None = None,
        keep_history: bool = True,
        time_phases: bool = True,
    ) -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be a one-dimensional array")
        if values.size == 0:
            raise ValueError("cannot build a segmented column from an empty array")
        self.model = model
        self.dtype = values.dtype
        self.value_width = int(values.dtype.itemsize)
        self.domain = (
            ValueRange(float(domain[0]), float(domain[1])) if domain is not None else domain_of(values)
        )
        root = Segment(self.domain, values, oids, value_width=self.value_width)
        root.check_invariants()
        self.meta_index = SegmentMetaIndex([root])
        self.total_bytes = root.size_bytes
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.history: QueryLog | None = QueryLog() if keep_history else None
        self._time_phases = time_phases
        self._queries_executed = 0
        self._read_observations = ReadObservations()

    # -- public API ---------------------------------------------------------

    @property
    def segments(self) -> list[Segment]:
        """The current segments in value order."""
        return self.meta_index.segments

    @property
    def segment_count(self) -> int:
        """Number of segments the column is currently split into."""
        return len(self.meta_index)

    @property
    def storage_bytes(self) -> float:
        """Bytes used for the column payload (constant for segmentation).

        Splits and merges conserve the payload exactly (verified by
        :meth:`check_invariants`), so this is ``total_bytes`` — computed in
        O(1) instead of summing over every segment on the query hot path.
        """
        return self.total_bytes

    def select(self, low: float, high: float) -> SelectionResult:
        """Answer ``low <= value < high`` and adapt the segmentation.

        Only segments overlapping the predicate are read; each of them may be
        split according to the segmentation model.  Per-query measurements are
        appended to :attr:`history`.
        """
        query = ValueRange(float(low), float(high))
        stats = QueryStats(
            index=self._queries_executed,
            low=query.low,
            high=query.high,
        )
        self.accountant.attach(stats)
        try:
            result = self._execute(query, stats)
        finally:
            self.accountant.detach()
        stats.result_count = result.count
        stats.segment_count = self.segment_count
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += 1
        if self.history is not None:
            self.history.append(stats)
        self.model.observe(result.count * self.value_width)
        return result

    def select_many(
        self, bounds: Sequence[tuple[float, float]]
    ) -> list[SelectionResult]:
        """Answer N half-open range selections with a vectorized batch kernel.

        The whole batch is routed against the segment bounds in one
        ``np.searchsorted`` pass (:meth:`SegmentMetaIndex.route_many`) and
        every touched segment answers all of its member queries with one
        probe batch (:meth:`Segment.bounds_many`) — O(touched segments) numpy
        calls for the entire batch, never O(N).

        Piggy-backed adaptation fires **once per batch**: each touched
        segment sees a single split decision against the envelope of the
        member ranges that overlap it, and the model observes the batch's
        mean result size.  Access statistics are genuinely shared — each
        touched segment is read once for the whole batch — so one
        :class:`QueryStats` record with ``batch_size == len(bounds)`` is
        appended to :attr:`history`.
        """
        lows, highs = batch_bounds_arrays(bounds)
        if lows.size == 0:
            return []
        stats = QueryStats(
            index=self._queries_executed,
            low=float(lows.min()),
            high=float(highs.max()),
            batch_size=int(lows.size),
        )
        self.accountant.attach(stats)
        try:
            results = self._execute_batch(lows, highs, stats)
        finally:
            self.accountant.detach()
        stats.result_count = sum(result.count for result in results)
        stats.segment_count = self.segment_count
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += int(lows.size)
        if self.history is not None:
            self.history.append(stats)
        self.model.observe(stats.result_count * self.value_width / lows.size)
        return results

    # -- snapshot reads -------------------------------------------------------

    def pin_snapshot(self) -> MetaIndexSnapshot:
        """Pin the current immutable segment-list snapshot (one reference grab)."""
        return self.meta_index.pin_snapshot()

    def select_readonly(
        self, low: float, high: float, snapshot: MetaIndexSnapshot | None = None
    ) -> SelectionResult:
        """Answer ``low <= value < high`` from a pinned snapshot, adaptation-free.

        Runs the exact read half of :meth:`select` against ``snapshot`` (or a
        freshly pinned one): meta-index overlap lookup, the fully-contained
        fast path, zero-copy probe slices.  It never splits, never touches
        the IO accountant or the query history — the observation goes into
        :attr:`read_observations` for the owning worker to absorb later — so
        reader threads can call it concurrently with live adaptation.
        """
        query = ValueRange(float(low), float(high))
        snap = snapshot if snapshot is not None else self.meta_index.pin_snapshot()
        parts: list[SelectionResult] = []
        for segment, fully_contained in snap.overlapping_classified(query):
            if fully_contained:
                parts.append(SelectionResult(segment.values, segment.oids, values_sorted=True))
            else:
                parts.append(segment.select(query))
        result = SelectionResult.concatenate(parts, self.dtype)
        self.read_observations.record(query.low, query.high, result.count * self.value_width)
        return result

    def absorb_reads(self) -> int:
        """Replay drained snapshot-read observations into the adaptation path.

        Runs on the owning worker, mirroring the deferred-adaptation shape of
        :meth:`select_many`: route every drained range against the *current*
        segment list, give each touched segment one split decision against
        the envelope of its member ranges, and feed the model the mean result
        size.  The ``(segment, envelope)`` jobs are collected before any
        split, because splitting shifts meta-index positions.  One
        :class:`QueryStats` record with ``batch_size == absorbed count``
        lands in :attr:`history`; snapshot reads themselves were not
        accounted, so only split writes touch the accountant here.
        """
        bounds, result_bytes = self.read_observations.drain()
        if not bounds:
            return 0
        lows = np.asarray([low for low, _ in bounds], dtype=np.float64)
        highs = np.asarray([high for _, high in bounds], dtype=np.float64)
        stats = QueryStats(
            index=self._queries_executed,
            low=float(lows.min()),
            high=float(highs.max()),
            batch_size=int(lows.size),
        )
        started = self._now()
        starts, stops = self.meta_index.route_many(lows, highs)
        low_list = lows.tolist()
        high_list = highs.tolist()
        touched: dict[int, list[int]] = {}
        for q, (start, stop) in enumerate(zip(starts.tolist(), stops.tolist())):
            for s in range(start, stop):
                touched.setdefault(s, []).append(q)
        split_jobs = [
            (
                self.meta_index[s],
                ValueRange(
                    min(low_list[q] for q in queries),
                    max(high_list[q] for q in queries),
                ),
            )
            for s, queries in sorted(touched.items())
        ]
        self.accountant.attach(stats)
        try:
            for segment, envelope in split_jobs:
                decision = self.model.decide(envelope, segment, total_bytes=self.total_bytes)
                if decision.should_split:
                    self._split(segment, list(decision.points), stats)
        finally:
            self.accountant.detach()
        stats.adaptation_seconds += self._now() - started
        stats.result_count = int(round(sum(result_bytes) / self.value_width))
        stats.segment_count = self.segment_count
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += int(lows.size)
        if self.history is not None:
            self.history.append(stats)
        self.model.observe(sum(result_bytes) / lows.size)
        return int(lows.size)

    # -- internals ------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() if self._time_phases else 0.0

    def _execute(self, query: ValueRange, stats: QueryStats) -> SelectionResult:
        parts: list[SelectionResult] = []
        for segment, fully_contained in self.meta_index.overlapping_classified(query):
            self.accountant.record_read(segment.size_bytes, segment)

            started = self._now()
            if fully_contained:
                # Meta-index fast path: a segment fully inside the predicate
                # contributes its whole (sorted) payload as a zero-copy view
                # — no probes, no data touched.  Logical read bytes are
                # accounted above exactly as before.
                parts.append(SelectionResult(segment.values, segment.oids, values_sorted=True))
            else:
                parts.append(segment.select(query))
            stats.selection_seconds += self._now() - started

            started = self._now()
            decision = self.model.decide(query, segment, total_bytes=self.total_bytes)
            if decision.should_split:
                self._split(segment, list(decision.points), stats)
            stats.adaptation_seconds += self._now() - started
        started = self._now()
        result = SelectionResult.concatenate(parts, self.dtype)
        stats.selection_seconds += self._now() - started
        return result

    def _execute_batch(
        self, lows: np.ndarray, highs: np.ndarray, stats: QueryStats
    ) -> list[SelectionResult]:
        started = self._now()
        starts, stops = self.meta_index.route_many(lows, highs)
        n = int(lows.size)
        low_list = lows.tolist()
        high_list = highs.tolist()
        # Per-query (values, oids) slice pairs; raw tuples until assembly so
        # the hot loop builds no intermediate SelectionResults.
        parts: list[list[tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(n)]
        touched: dict[int, list[int]] = {}
        for q, (start, stop) in enumerate(zip(starts.tolist(), stops.tolist())):
            for s in range(start, stop):
                touched.setdefault(s, []).append(q)

        split_jobs: list[tuple[Segment, ValueRange]] = []
        for s in sorted(touched):
            queries = touched[s]
            segment = self.meta_index[s]
            # One read answers every member query that overlaps this segment
            # — this is the batch's amortization of the shared scan.
            self.accountant.record_read(segment.size_bytes, segment)
            seg_low, seg_high = segment.vrange.low, segment.vrange.high
            seg_values, seg_oids = segment.values, segment.oids
            partial: list[int] = []
            for q in queries:
                if low_list[q] <= seg_low and high_list[q] >= seg_high:
                    # Meta-index fast path, exactly as in _execute: the whole
                    # (sorted) payload answers a fully-contained member.
                    parts[q].append((seg_values, seg_oids))
                else:
                    partial.append(q)
            if partial:
                los, his = segment.bounds_many(lows[partial], highs[partial])
                for q, lo, hi in zip(partial, los.tolist(), his.tolist()):
                    parts[q].append((seg_values[lo:hi], seg_oids[lo:hi]))
            # Adaptation is deferred so every member reads pre-split payloads
            # (the returned views stay valid across splits regardless — splits
            # are slices over the same base array).
            split_jobs.append(
                (
                    segment,
                    ValueRange(
                        min(low_list[q] for q in queries),
                        max(high_list[q] for q in queries),
                    ),
                )
            )
        stats.selection_seconds += self._now() - started

        started = self._now()
        for segment, envelope in split_jobs:
            decision = self.model.decide(envelope, segment, total_bytes=self.total_bytes)
            if decision.should_split:
                self._split(segment, list(decision.points), stats)
        stats.adaptation_seconds += self._now() - started

        started = self._now()
        # Per-query parts were appended in ascending segment order over
        # disjoint sorted payloads, so a multi-part result is already in
        # ascending value order (what concatenate() would verify).
        results: list[SelectionResult] = []
        for q in range(n):
            q_parts = parts[q]
            if not q_parts:
                results.append(SelectionResult.empty(self.dtype))
            elif len(q_parts) == 1:
                values, oids = q_parts[0]
                results.append(SelectionResult(values, oids, values_sorted=True))
            else:
                results.append(
                    SelectionResult(
                        np.concatenate([values for values, _ in q_parts]),
                        np.concatenate([oids for _, oids in q_parts]),
                        values_sorted=True,
                    )
                )
        stats.selection_seconds += self._now() - started
        return results

    def _split(self, segment: Segment, points: list[float], stats: QueryStats) -> None:
        pieces = segment.partition(points)
        if len(pieces) <= 1:
            return
        for piece in pieces:
            self.accountant.record_write(piece.size_bytes, piece)
        self.meta_index.replace(segment, pieces)
        stats.splits_performed += 1

    # -- maintenance and extensions --------------------------------------------

    def merge_small_segments(self, min_bytes: float) -> int:
        """Glue adjacent segments smaller than ``min_bytes`` together.

        This implements the "complementary merging strategies" the paper lists
        as future work (§8): the GD model can fragment a column under skewed
        workloads, and merging counters that.  Returns the number of merge
        operations performed.  Merging writes the glued segment back, which is
        accounted as segment materialization.
        """
        merges = 0
        merged_something = True
        while merged_something:
            merged_something = False
            segments = self.meta_index.segments
            for first, second in zip(segments, segments[1:]):
                if first.size_bytes >= min_bytes and second.size_bytes >= min_bytes:
                    continue
                if first.vrange.high != second.vrange.low:
                    continue
                # Adjacent segments hold disjoint ascending value ranges, so
                # their concatenation is already sorted.
                glued = Segment(
                    ValueRange(first.vrange.low, second.vrange.high),
                    np.concatenate([first.values, second.values]),
                    np.concatenate([first.oids, second.oids]),
                    value_width=self.value_width,
                    assume_sorted=True,
                )
                self.accountant.record_write(glued.size_bytes, glued)
                self.meta_index.replace(first, [glued])
                self.meta_index.replace(second, [])
                merges += 1
                merged_something = True
                break
        return merges

    def check_invariants(self) -> None:
        """Verify that the segments partition the domain and conserve the data."""
        self.meta_index.check_invariants()
        segments = self.meta_index.segments
        if not segments:
            raise AssertionError("a segmented column must always have at least one segment")
        if segments[0].vrange.low != self.domain.low or segments[-1].vrange.high != self.domain.high:
            raise AssertionError("segments do not cover the attribute domain")
        for first, second in zip(segments, segments[1:]):
            if first.vrange.high != second.vrange.low:
                raise AssertionError(
                    f"gap between segments {first.vrange} and {second.vrange}"
                )
        total_values = sum(int(segment.count) for segment in segments)
        expected = int(round(self.total_bytes / self.value_width))
        if total_values != expected:
            raise AssertionError(
                f"segments hold {total_values} values, expected {expected}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentedColumn(segments={self.segment_count}, "
            f"model={self.model.name}, bytes={self.total_bytes:g})"
        )
