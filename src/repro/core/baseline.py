"""Baseline: the conventional, positionally organised column.

The paper's prototype experiments compare the adaptive schemes against a
non-segmented MonetDB column ("NoSegm" in Figures 10–16): every range
selection scans the entire column.  This class mirrors the adaptive columns'
interface (``select``, ``history``, accounting) so the harness can treat all
strategies uniformly.

Unlike the adaptive strategies, the baseline deliberately does **not** adopt
the sorted zero-copy segment layout: it keeps the payload in positional
(load) order and answers every query with a boolean-mask full scan, so its
wall-clock ``selection_seconds`` keeps modelling the unsegmented scan the
paper uses as the experimental control.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.core.accounting import IOAccountant, QueryLog, QueryStats
from repro.core.ranges import ValueRange, domain_of
from repro.core.segment import SelectionResult, Segment
from repro.core.strategy import (
    AdaptiveColumnBase,
    ReadObservations,
    batch_bounds_arrays,
    register_strategy,
)


@register_strategy
class UnsegmentedColumn(AdaptiveColumnBase):
    """A column stored as one positional array; selections always full-scan."""

    strategy_name = "unsegmented"
    requires_model = False
    display_short = "NoSegm"
    supports_batch = True
    #: The baseline never reorganizes, so its payload arrays are inherently
    #: immutable — snapshot reads need no snapshot object at all.
    supports_snapshot_reads = True

    def __init__(
        self,
        values: np.ndarray,
        *,
        oids: np.ndarray | None = None,
        domain: tuple[float, float] | None = None,
        accountant: IOAccountant | None = None,
        keep_history: bool = True,
        time_phases: bool = True,
    ) -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be a one-dimensional array")
        if values.size == 0:
            raise ValueError("cannot build a column from an empty array")
        self.dtype = values.dtype
        self.value_width = int(values.dtype.itemsize)
        self.domain = (
            ValueRange(float(domain[0]), float(domain[1])) if domain is not None else domain_of(values)
        )
        # Positional payload — the baseline never reorganises or sorts.
        self._values = values
        if oids is None:
            self._oids = np.arange(values.size, dtype=np.int64)
        else:
            self._oids = np.asarray(oids, dtype=np.int64)
            if self._oids.size != values.size:
                raise ValueError(
                    f"values and oids must have equal length, "
                    f"got {values.size} and {self._oids.size}"
                )
        self.total_bytes = float(values.size * self.value_width)
        self._segment_view: Segment | None = None
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.history: QueryLog | None = QueryLog() if keep_history else None
        self._time_phases = time_phases
        self._queries_executed = 0
        self._read_observations = ReadObservations()

    def select_readonly(
        self, low: float, high: float, snapshot: object | None = None
    ) -> SelectionResult:
        """Answer ``low <= value < high`` without touching any shared state.

        The positional payload is never mutated, so the full scan is
        trivially thread-safe; the observation goes into
        :attr:`read_observations` instead of the accountant/history.
        ``snapshot`` is accepted (and ignored) for interface uniformity —
        :meth:`pin_snapshot` returns ``None`` for this strategy.
        """
        query = ValueRange(float(low), float(high))
        mask = (self._values >= query.low) & (self._values < query.high)
        result = SelectionResult(self._values[mask], self._oids[mask])
        self.read_observations.record(query.low, query.high, result.count * self.value_width)
        return result

    def absorb_reads(self) -> int:
        """Fold drained snapshot reads into the query ledger (no adaptation)."""
        bounds, result_bytes = self.read_observations.drain()
        if not bounds:
            return 0
        stats = QueryStats(
            index=self._queries_executed,
            low=min(low for low, _ in bounds),
            high=max(high for _, high in bounds),
            batch_size=len(bounds),
        )
        stats.result_count = int(round(sum(result_bytes) / self.value_width))
        stats.segment_count = 1
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += len(bounds)
        if self.history is not None:
            self.history.append(stats)
        return len(bounds)

    @property
    def segment_count(self) -> int:
        """Always one: the whole column."""
        return 1

    @property
    def segments(self) -> list[Segment]:
        """A one-segment view of the column (built once, cached).

        The returned :class:`Segment` follows the sorted layout and owns a
        private copy of the payload — mutating it cannot reach the live
        positional arrays.  The baseline never reorganizes, so the cached
        view never needs invalidating.
        """
        if self._segment_view is None:
            self._segment_view = Segment(self.domain, self._values.copy(), self._oids.copy())
        return [self._segment_view]

    @property
    def storage_bytes(self) -> float:
        """Bytes used for the column payload."""
        return self.total_bytes

    def select(self, low: float, high: float) -> SelectionResult:
        """Answer ``low <= value < high`` with a full column scan."""
        query = ValueRange(float(low), float(high))
        stats = QueryStats(index=self._queries_executed, low=query.low, high=query.high)
        self.accountant.attach(stats)
        try:
            # ``self`` is the buffer-pool page token: one stable identity for
            # the one "segment" the baseline ever reads.
            self.accountant.record_read(self.total_bytes, self)
            started = time.perf_counter() if self._time_phases else 0.0
            mask = (self._values >= query.low) & (self._values < query.high)
            result = SelectionResult(self._values[mask], self._oids[mask])
            if self._time_phases:
                stats.selection_seconds = time.perf_counter() - started
        finally:
            self.accountant.detach()
        stats.result_count = result.count
        stats.segment_count = 1
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += 1
        if self.history is not None:
            self.history.append(stats)
        return result

    def select_many(
        self, bounds: Sequence[tuple[float, float]]
    ) -> list[SelectionResult]:
        """Answer N range selections from **one** scan of the column.

        The batch kernel probes the cached one-segment sorted view
        (:attr:`segments`) with arrays of bounds — two ``np.searchsorted``
        calls for the whole batch — so member results come back in value
        order rather than the per-query path's load order (the two are
        permutations of each other).  The batch's access statistics reflect
        the amortization: one full-column read serves every member, recorded
        as a single :class:`QueryStats` with ``batch_size == len(bounds)``.
        """
        lows, highs = batch_bounds_arrays(bounds)
        if lows.size == 0:
            return []
        stats = QueryStats(
            index=self._queries_executed,
            low=float(lows.min()),
            high=float(highs.max()),
            batch_size=int(lows.size),
        )
        self.accountant.attach(stats)
        try:
            self.accountant.record_read(self.total_bytes, self)
            started = time.perf_counter() if self._time_phases else 0.0
            view = self.segments[0]
            results = view.select_many(lows, highs)
            if self._time_phases:
                stats.selection_seconds = time.perf_counter() - started
        finally:
            self.accountant.detach()
        stats.result_count = sum(result.count for result in results)
        stats.segment_count = 1
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += int(lows.size)
        if self.history is not None:
            self.history.append(stats)
        return results

    def check_invariants(self) -> None:
        """The baseline has a single invariant: its payload matches its domain."""
        if self._values.size and not bool(
            np.all((self._values >= self.domain.low) & (self._values < self.domain.high))
        ):
            raise AssertionError("unsegmented column holds values outside its domain")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnsegmentedColumn(bytes={self.total_bytes:g})"
