"""Baseline: the conventional, positionally organised column.

The paper's prototype experiments compare the adaptive schemes against a
non-segmented MonetDB column ("NoSegm" in Figures 10–16): every range
selection scans the entire column.  This class mirrors the adaptive columns'
interface (``select``, ``history``, accounting) so the harness can treat all
strategies uniformly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.accounting import IOAccountant, QueryLog, QueryStats
from repro.core.ranges import ValueRange, domain_of
from repro.core.segment import SelectionResult, Segment
from repro.core.strategy import AdaptiveColumnBase, register_strategy


@register_strategy
class UnsegmentedColumn(AdaptiveColumnBase):
    """A column stored as one positional array; selections always full-scan."""

    strategy_name = "unsegmented"
    requires_model = False
    display_short = "NoSegm"

    def __init__(
        self,
        values: np.ndarray,
        *,
        oids: np.ndarray | None = None,
        domain: tuple[float, float] | None = None,
        accountant: IOAccountant | None = None,
        keep_history: bool = True,
        time_phases: bool = True,
    ) -> None:
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("a column must be a one-dimensional array")
        if values.size == 0:
            raise ValueError("cannot build a column from an empty array")
        self.dtype = values.dtype
        self.value_width = int(values.dtype.itemsize)
        self.domain = (
            ValueRange(float(domain[0]), float(domain[1])) if domain is not None else domain_of(values)
        )
        self._segment = Segment(self.domain, values, oids, value_width=self.value_width)
        self.total_bytes = self._segment.size_bytes
        self.accountant = accountant if accountant is not None else IOAccountant()
        self.history: QueryLog | None = QueryLog() if keep_history else None
        self._time_phases = time_phases
        self._queries_executed = 0

    @property
    def segment_count(self) -> int:
        """Always one: the whole column."""
        return 1

    @property
    def segments(self) -> list[Segment]:
        """The single segment holding the whole column."""
        return [self._segment]

    @property
    def storage_bytes(self) -> float:
        """Bytes used for the column payload."""
        return self._segment.size_bytes

    def select(self, low: float, high: float) -> SelectionResult:
        """Answer ``low <= value < high`` with a full column scan."""
        query = ValueRange(float(low), float(high))
        stats = QueryStats(index=self._queries_executed, low=query.low, high=query.high)
        self.accountant.attach(stats)
        try:
            self.accountant.record_read(self._segment.size_bytes, self._segment)
            started = time.perf_counter() if self._time_phases else 0.0
            result = self._segment.select(query)
            if self._time_phases:
                stats.selection_seconds = time.perf_counter() - started
        finally:
            self.accountant.detach()
        stats.result_count = result.count
        stats.segment_count = 1
        stats.storage_bytes = self.storage_bytes
        self._queries_executed += 1
        if self.history is not None:
            self.history.append(stats)
        return result

    def check_invariants(self) -> None:
        """The baseline has a single invariant: its payload matches its range."""
        self._segment.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnsegmentedColumn(bytes={self.total_bytes:g})"
