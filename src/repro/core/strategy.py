"""The pluggable adaptive-strategy layer.

The paper's central claim is that *multiple* self-organizing strategies —
the non-segmented baseline, adaptive segmentation (§4) and adaptive
replication (§5) — can coexist behind a single column-store interface.  This
module makes that claim structural: every strategy is a class implementing the
:class:`AdaptiveColumnStrategy` surface and registering itself under its
``strategy_name``.  The BPM, the simulator, the grid runner and the SQL engine
all resolve strategies through the registry, so adding a new strategy (hybrid
segmentation+replication, sharded columns, ...) is one file that calls
:func:`register_strategy` — no dispatch chain anywhere needs editing.

Public surface:

* :class:`AdaptiveColumnStrategy` — the runtime-checkable protocol.
* :class:`AdaptiveColumnBase` — mixin providing ``stats``/``adapt``/
  ``select_many``/``describe``/``paper_label`` on top of a concrete
  ``select``.
* :func:`batch_bounds_arrays` — shared validation for the batched
  ``select_many`` hook (mirrors :class:`~repro.core.ranges.ValueRange`).
* :func:`register_strategy` / :func:`unregister_strategy` — registry admin.
* :func:`strategy_class` / :func:`available_strategies` — lookup.
* :func:`create_strategy` — the factory every layer builds columns through.
"""

from __future__ import annotations

import inspect
import threading
from typing import Any, ClassVar, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.accounting import QueryLog, QueryStats
from repro.core.ranges import ValueRange
from repro.core.segment import SelectionResult


class ReadObservations:
    """Thread-safe accumulator for snapshot-read observations.

    Snapshot readers never mutate the column, its IO accountant or its query
    history — they only record *what they saw* here (query bounds and result
    sizes) under one small lock.  The owning worker later drains the
    accumulator on the serialized adaptation path (:meth:`absorb_reads`), so
    the single-writer invariant holds for every adaptive structure while
    reads run concurrently.
    """

    __slots__ = ("_lock", "_bounds", "_result_bytes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._bounds: list[tuple[float, float]] = []
        self._result_bytes: list[float] = []

    def record(self, low: float, high: float, result_bytes: float) -> None:
        """Record one snapshot read (called from reader threads)."""
        with self._lock:
            self._bounds.append((low, high))
            self._result_bytes.append(float(result_bytes))

    def __len__(self) -> int:
        with self._lock:
            return len(self._bounds)

    def drain(self) -> tuple[list[tuple[float, float]], list[float]]:
        """Take every pending observation (called from the owning worker)."""
        with self._lock:
            bounds, self._bounds = self._bounds, []
            result_bytes, self._result_bytes = self._result_bytes, []
        return bounds, result_bytes


_read_observations_init_lock = threading.Lock()


def batch_bounds_arrays(
    bounds: Sequence[tuple[float, float]]
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a batch of ``(low, high)`` pairs into two float arrays.

    Applies the same constraints :class:`~repro.core.ranges.ValueRange`
    enforces per query (finite bounds, ``high >= low``) so the batched and
    per-query paths reject malformed ranges identically.  An ``(n, 2)``
    float array is accepted directly (its columns become the bound arrays
    without a per-element conversion) — the form the engine's batch executor
    hands over.
    """
    if isinstance(bounds, np.ndarray):
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ValueError(
                f"batch bounds array must have shape (n, 2), got {bounds.shape}"
            )
        array = bounds.astype(np.float64, copy=False)
        lows, highs = array[:, 0], array[:, 1]
    else:
        lows = np.asarray([float(low) for low, _ in bounds], dtype=np.float64)
        highs = np.asarray([float(high) for _, high in bounds], dtype=np.float64)
    if lows.size:
        if not (np.isfinite(lows).all() and np.isfinite(highs).all()):
            raise ValueError("batch range bounds must be finite")
        if bool(np.any(highs < lows)):
            raise ValueError("batch range bounds must satisfy high >= low")
    return lows, highs


@runtime_checkable
class AdaptiveColumnStrategy(Protocol):
    """What every self-organizing column strategy exposes.

    The three built-ins (:class:`~repro.core.baseline.UnsegmentedColumn`,
    :class:`~repro.core.segmentation.SegmentedColumn`,
    :class:`~repro.core.replication.ReplicatedColumn`) implement this surface;
    so must any plugged-in strategy.
    """

    strategy_name: ClassVar[str]
    requires_model: ClassVar[bool]
    domain: ValueRange
    history: QueryLog | None
    total_bytes: float

    @property
    def storage_bytes(self) -> float: ...

    @property
    def segment_count(self) -> int: ...

    def select(self, low: float, high: float) -> SelectionResult: ...

    def select_many(
        self, bounds: Sequence[tuple[float, float]]
    ) -> list[SelectionResult]: ...

    def stats(self) -> QueryStats | None: ...

    def adapt(self, low: float, high: float) -> QueryStats | None: ...

    def describe(self) -> dict[str, Any]: ...

    def check_invariants(self) -> None: ...


class AdaptiveColumnBase:
    """Shared strategy surface on top of a concrete ``select`` implementation.

    Subclasses set :attr:`strategy_name` (the registry key),
    :attr:`requires_model` (whether construction needs a segmentation model)
    and :attr:`display_short` (the label fragment used in the paper's plots).
    """

    #: Registry key; empty means "abstract, do not register".
    strategy_name: ClassVar[str] = ""
    #: Whether :func:`create_strategy` must be given a segmentation model.
    requires_model: ClassVar[bool] = True
    #: Label fragment in the paper's style ("Segm", "Repl", "NoSegm").
    display_short: ClassVar[str] = ""
    #: Whether :meth:`select_many` is a vectorized batch kernel.  ``False``
    #: means the sequential fallback below answers batches one query at a
    #: time (correct for every strategy; just not amortized).
    supports_batch: ClassVar[bool] = False
    #: Whether :meth:`select_readonly` answers from a pinned immutable
    #: snapshot without mutating any shared state, so reader threads can
    #: call it concurrently with adaptation on the owning worker.  ``False``
    #: keeps the strategy on the serialized single-worker path.
    supports_snapshot_reads: ClassVar[bool] = False

    # Concrete subclasses provide these (declared for type checkers only).
    history: QueryLog | None
    domain: ValueRange
    total_bytes: float

    @classmethod
    def paper_label(cls, model_name: str | None = None) -> str:
        """The paper-style run label, e.g. ``"APM Segm"`` or ``"NoSegm"``."""
        if not cls.requires_model or not model_name:
            return cls.display_short
        return f"{model_name.upper()} {cls.display_short}"

    def stats(self) -> QueryStats | None:
        """Per-query stats of the most recent selection (``None`` if nothing ran)."""
        history = self.history
        if history is None or len(history) == 0:
            return None
        return history[-1]

    def select_many(
        self, bounds: Sequence[tuple[float, float]]
    ) -> list[SelectionResult]:
        """Answer N half-open range selections ``[low_i, high_i)`` at once.

        This base implementation is the tested sequential fallback: one
        :meth:`select` per pair, with the usual per-query piggy-backed
        adaptation and one history record per query.  Strategies that can
        amortize the batch (vectorized probes, one adaptation pass per batch)
        override it and set ``supports_batch = True``; the engine's batch
        executor calls ``select_many`` unconditionally, so every registered
        strategy is batch-correct by construction.
        """
        return [self.select(low, high) for low, high in bounds]

    # -- snapshot reads ----------------------------------------------------

    @property
    def read_observations(self) -> ReadObservations:
        """The column's snapshot-read accumulator (created lazily, once).

        Built-ins create it eagerly in ``__init__``; for plugged-in
        strategies the double-checked module lock below makes lazy creation
        safe even if the first readers race.
        """
        observations = getattr(self, "_read_observations", None)
        if observations is None:
            with _read_observations_init_lock:
                observations = getattr(self, "_read_observations", None)
                if observations is None:
                    observations = ReadObservations()
                    self._read_observations = observations
        return observations

    def pin_snapshot(self) -> Any | None:
        """Pin an immutable snapshot of the read structure (or ``None``).

        ``None`` means the strategy needs no snapshot object — either its
        read structure is inherently immutable (the unsegmented baseline) or
        it does not support snapshot reads at all.
        """
        return None

    def select_readonly(
        self, low: float, high: float, snapshot: Any | None = None
    ) -> SelectionResult:
        """Answer one range selection against a pinned snapshot.

        Unlike :meth:`select`, this never adapts, never touches the IO
        accountant or the query history, and records its observation into
        :attr:`read_observations` instead — safe to call from reader threads
        concurrently with adaptation, when ``supports_snapshot_reads`` is
        ``True``.
        """
        raise NotImplementedError(
            f"strategy {self.strategy_name!r} does not support snapshot reads"
        )

    def absorb_reads(self) -> int:
        """Drain pending snapshot-read observations on the owning worker.

        The base implementation discards the drained observations (a
        strategy with no adaptation model has nothing to feed); strategies
        override it to replay the observations into their piggy-backed
        adaptation machinery.  Returns the number of observations absorbed.
        """
        bounds, _ = self.read_observations.drain()
        return len(bounds)

    def adapt(self, low: float, high: float) -> QueryStats | None:
        """Run one selection purely for its adaptation side effect.

        Adaptation is piggy-backed on selections in every strategy, so an
        explicit adaptation pass is a selection whose payload is discarded.
        Returns the stats of that selection.
        """
        self.select(low, high)
        return self.stats()

    def describe(self) -> dict[str, Any]:
        """A structured snapshot of the strategy's current state."""
        history = self.history
        return {
            "strategy": self.strategy_name,
            "segment_count": self.segment_count,  # type: ignore[attr-defined]
            "storage_bytes": float(self.storage_bytes),  # type: ignore[attr-defined]
            "total_bytes": float(self.total_bytes),
            "domain": (self.domain.low, self.domain.high),
            "queries_executed": len(history) if history is not None else 0,
        }


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, type] = {}
_BUILTINS_LOADED = False


def register_strategy(cls: type) -> type:
    """Class decorator registering a strategy under its ``strategy_name``.

    Names are normalized (lowercased, stripped) so registration and lookup
    agree.  Re-registering the same class is a no-op; registering a
    *different* class under a taken name raises, so plugins cannot silently
    shadow built-ins.
    """
    name = str(getattr(cls, "strategy_name", "")).strip().lower()
    if not name:
        raise ValueError(f"{cls.__qualname__} must define a non-empty strategy_name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"strategy {name!r} is already registered by {existing.__qualname__}"
        )
    _REGISTRY[name] = cls
    return cls


def unregister_strategy(name: str) -> None:
    """Remove a strategy from the registry (used by tests and plugins)."""
    _REGISTRY.pop(name.strip().lower(), None)


def _ensure_builtins() -> None:
    """Import the built-in strategy modules so they self-register."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core import baseline, replication, segmentation  # noqa: F401


def available_strategies() -> tuple[str, ...]:
    """The registered strategy names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def strategy_class(name: str) -> type:
    """Look up a strategy class by name (case- and whitespace-insensitive)."""
    _ensure_builtins()
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None


def create_strategy(
    name: str,
    values: np.ndarray,
    *,
    model: Any | None = None,
    strict: bool = True,
    **options: Any,
) -> AdaptiveColumnStrategy:
    """Instantiate the strategy ``name`` over ``values``.

    ``model`` is forwarded only to strategies that declare
    ``requires_model=True`` (and is then mandatory).  Remaining keyword
    options are forwarded when the strategy's constructor accepts them;
    ``None``-valued unknown options are always dropped so callers can pass a
    uniform option set for every strategy (e.g. ``storage_budget=None``).
    With ``strict=True`` (the default) a non-``None`` option the constructor
    does not know is an error; ``strict=False`` drops it instead, which is
    what legacy callers passing one option set to every strategy expect.
    """
    cls = strategy_class(name)
    parameters = inspect.signature(cls.__init__).parameters
    kwargs: dict[str, Any] = {}
    if cls.requires_model:
        if model is None:
            raise ValueError(f"strategy {cls.strategy_name!r} requires a segmentation model")
        kwargs["model"] = model
    for key, value in options.items():
        if key in parameters:
            kwargs[key] = value
        elif strict and value is not None:
            raise TypeError(
                f"strategy {cls.strategy_name!r} does not accept option {key!r}"
            )
    return cls(values, **kwargs)
