"""Segment statistics (paper Table 2).

Table 2 of the paper summarises, per workload and segmentation scheme, the
number of segments created, their average size and the size deviation.  This
module computes the same summary for any strategy exposing a ``segments``
list (adaptive segmentation, adaptive replication and the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import MB, format_bytes


@dataclass(frozen=True)
class SegmentStatistics:
    """Count / mean / standard deviation of segment sizes."""

    segment_count: int
    average_bytes: float
    deviation_bytes: float
    total_bytes: float
    materialized_count: int

    @property
    def average_mb(self) -> float:
        """Average segment size in MB (the unit used by Table 2)."""
        return self.average_bytes / MB

    @property
    def deviation_mb(self) -> float:
        """Standard deviation of segment sizes in MB."""
        return self.deviation_bytes / MB

    def as_row(self) -> dict[str, float]:
        """A flat dictionary used by the reporting helpers."""
        return {
            "segments": self.segment_count,
            "avg_bytes": self.average_bytes,
            "dev_bytes": self.deviation_bytes,
            "avg_mb": self.average_mb,
            "dev_mb": self.deviation_mb,
            "total_bytes": self.total_bytes,
            "materialized": self.materialized_count,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.segment_count} segments, avg {format_bytes(self.average_bytes)}, "
            f"dev {format_bytes(self.deviation_bytes)}"
        )


def segment_statistics(column) -> SegmentStatistics:
    """Summarise the segments of any strategy exposing a ``segments`` list.

    Virtual segments (replication) are excluded from the size statistics but
    reflected in the materialized count vs. segment count difference.
    """
    segments = list(column.segments)
    materialized = [s for s in segments if getattr(s, "materialized", True)]
    sizes = np.array([s.size_bytes for s in materialized], dtype=float)
    if sizes.size == 0:
        return SegmentStatistics(
            segment_count=len(segments),
            average_bytes=0.0,
            deviation_bytes=0.0,
            total_bytes=0.0,
            materialized_count=0,
        )
    return SegmentStatistics(
        segment_count=len(segments),
        average_bytes=float(sizes.mean()),
        deviation_bytes=float(sizes.std()),
        total_bytes=float(sizes.sum()),
        materialized_count=len(materialized),
    )
