"""Value ranges over an attribute domain.

The paper organises a column into segments, each covering "a contiguous range
of attribute values".  Its pseudo-code uses inclusive integer bounds
(``[SL, SH]`` with splits at ``qh + 1``).  We normalise everything to
*half-open* ranges ``[low, high)`` which behave identically for integer
domains and extend cleanly to real-valued domains such as the SkyServer
right-ascension column; a split point ``p`` always produces ``[low, p)`` and
``[p, high)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, order=True, slots=True)
class ValueRange:
    """Half-open interval ``[low, high)`` over the attribute domain.

    Ranges are constructed in large numbers on the query hot path (split
    decisions build several per candidate segment), so validation sticks to
    scalar ``math`` predicates and the class carries ``__slots__``.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.low) or not math.isfinite(self.high):
            raise ValueError(f"range bounds must be finite, got [{self.low}, {self.high})")
        if self.high < self.low:
            raise ValueError(f"range high must be >= low, got [{self.low}, {self.high})")

    # -- basic geometry -------------------------------------------------

    @property
    def width(self) -> float:
        """Extent of the range in domain units."""
        return self.high - self.low

    @property
    def is_empty(self) -> bool:
        """True when the range covers no domain values."""
        return self.high <= self.low

    @property
    def midpoint(self) -> float:
        """Centre of the range; used by APM rule 3 as the fallback split point."""
        return self.low + self.width / 2.0

    def contains(self, value: float) -> bool:
        """True when ``low <= value < high``."""
        return self.low <= value < self.high

    def contains_range(self, other: "ValueRange") -> bool:
        """True when ``other`` lies entirely within this range."""
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "ValueRange") -> bool:
        """True when the two ranges share at least one domain value."""
        return self.low < other.high and other.low < self.high

    def intersect(self, other: "ValueRange") -> "ValueRange":
        """The overlapping part of the two ranges (possibly empty)."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if high < low:
            return ValueRange(low, low)
        return ValueRange(low, high)

    def fraction_of(self, other: "ValueRange") -> float:
        """Fraction of ``other``'s width covered by this range (0.0 when empty).

        Computed inline (equivalent to ``intersect(other).width / other.width``
        but without constructing the intersection) — split decisions evaluate
        this several times per query.
        """
        width = other.high - other.low
        if width <= 0.0:
            return 0.0
        low = self.low if self.low > other.low else other.low
        high = self.high if self.high < other.high else other.high
        if high <= low:
            return 0.0
        return (high - low) / width

    # -- splitting -------------------------------------------------------

    def interior_points(self, points: Iterable[float]) -> list[float]:
        """Sorted unique split points strictly inside the range."""
        unique = sorted({float(p) for p in points})
        return [p for p in unique if self.low < p < self.high]

    def split_at(self, points: Iterable[float]) -> list["ValueRange"]:
        """Split into adjacent sub-ranges at every point strictly inside.

        Points outside ``(low, high)`` are ignored; duplicates collapse.
        The result always partitions the original range.
        """
        cuts = self.interior_points(points)
        bounds = [self.low, *cuts, self.high]
        return [ValueRange(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:])]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low:g}, {self.high:g})"


def domain_of(values: np.ndarray) -> ValueRange:
    """The smallest half-open range containing every value of the array.

    For integer columns the upper bound is ``max + 1``; for floating-point
    columns it is the next representable number above the maximum so that the
    maximum itself is always inside the domain.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        raise ValueError("cannot derive a domain from an empty column")
    low = float(arr.min())
    high = float(arr.max())
    if np.issubdtype(arr.dtype, np.integer):
        return ValueRange(low, high + 1.0)
    return ValueRange(low, float(np.nextafter(high, np.inf)))


def coalesce_ranges(ranges: Sequence[ValueRange]) -> list[ValueRange]:
    """Merge adjacent/overlapping ranges into a minimal sorted cover."""
    if not ranges:
        return []
    ordered = sorted(ranges, key=lambda r: (r.low, r.high))
    merged = [ordered[0]]
    for current in ordered[1:]:
        last = merged[-1]
        if current.low <= last.high:
            merged[-1] = ValueRange(last.low, max(last.high, current.high))
        else:
            merged.append(current)
    return merged


def ranges_cover(ranges: Sequence[ValueRange], target: ValueRange) -> bool:
    """True when the union of ``ranges`` covers ``target`` entirely."""
    if target.is_empty:
        return True
    merged = coalesce_ranges([r for r in ranges if r.overlaps(target)])
    position = target.low
    for candidate in merged:
        if candidate.low > position:
            return False
        position = max(position, candidate.high)
        if position >= target.high:
            return True
    return position >= target.high
