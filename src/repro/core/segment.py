"""Segments: the unit of value-based column organisation.

A segment owns the ``(oid, value)`` pairs of a column whose values fall into a
contiguous range of the attribute domain.  Segments back both self-organizing
techniques: adaptive segmentation keeps an ordered, non-overlapping list of
them, while adaptive replication arranges (possibly virtual) segments into a
replica tree.

Physical layout (sorted, zero-copy)
-----------------------------------

A materialized segment keeps its payload **sorted by value**, with the oids
co-sorted so that ``(oids[i], values[i])`` pairs are preserved.  This is the
physical realisation of the paper's observation that a BAT "conveniently
splits at any point" (§2): with a value-ordered payload,

* :meth:`Segment.select` is two ``np.searchsorted`` probes returning array
  *views* (no mask, no copy),
* :meth:`Segment.partition` and :meth:`Segment.extract` are O(log n) slice
  operations over the shared base array — splitting a segment copies **no**
  payload bytes,
* a range fully containing the segment is answered without touching the data
  at all (the whole payload is the answer).

Zero-copy invariants
~~~~~~~~~~~~~~~~~~~~

Arrays returned by ``select`` and held by sub-segments produced by
``partition``/``extract`` are *views* into a shared base array.  Callers may
read them freely but must **never mutate** them: a write through a view
would corrupt every segment sharing the base.  Callers that need a private
mutable copy must ``np.copy`` the result themselves.

Byte accounting is unaffected: the accountants count *logical* bytes moved
(``count * value_width``), not physical copies, so the simulation's
read/write figures are identical to the pre-zero-copy implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ranges import ValueRange
from repro.util.sorted_search import sorted_probe, sorted_probe_many


def is_value_sorted(values: np.ndarray) -> bool:
    """True when ``values`` is non-decreasing (the segment payload order)."""
    if values.size < 2:
        return True
    return bool(np.all(values[:-1] <= values[1:]))


@dataclass
class SelectionResult:
    """Qualifying values (and their oids) returned by a range selection.

    Segment-backed strategies return ``values`` sorted ascending (the
    payload order); the positional baseline returns load order.  Both
    arrays may be zero-copy views into live column storage — treat them as
    read-only.

    ``values_sorted`` is a constructor-set promise (not an O(n) check):
    producers that build results from sorted payloads — :meth:`Segment.select`,
    :meth:`concatenate` over value-ordered disjoint parts — set it so
    downstream consumers (the BPM's sorted-BAT pieces) can binary-search
    without re-verifying.  It defaults to ``False``: an unsorted result that
    is merely treated as unordered costs a scan; one falsely promised sorted
    would return wrong answers.
    """

    values: np.ndarray
    oids: np.ndarray
    values_sorted: bool = False

    @property
    def count(self) -> int:
        """Number of qualifying values."""
        return int(self.values.size)

    @classmethod
    def empty(cls, dtype: np.dtype) -> "SelectionResult":
        """An empty result of the given value dtype."""
        return cls(np.empty(0, dtype=dtype), np.empty(0, dtype=np.int64), values_sorted=True)

    @classmethod
    def concatenate(cls, parts: list["SelectionResult"], dtype: np.dtype) -> "SelectionResult":
        """Concatenate partial results (order follows the parts).

        A single non-empty part is returned unwrapped — the common
        fully-contained-segment case stays zero-copy end to end.  The
        result is flagged sorted when every part is sorted and the parts
        are in ascending, non-overlapping value order (an O(#parts) check
        on the boundary elements only).
        """
        parts = [p for p in parts if p.count > 0]
        if not parts:
            return cls.empty(dtype)
        if len(parts) == 1:
            return parts[0]
        ascending = all(p.values_sorted for p in parts) and all(
            parts[i].values[-1] <= parts[i + 1].values[0] for i in range(len(parts) - 1)
        )
        return cls(
            np.concatenate([p.values for p in parts]),
            np.concatenate([p.oids for p in parts]),
            values_sorted=ascending,
        )


class Segment:
    """A contiguous value-range piece of a column.

    Parameters
    ----------
    vrange:
        Half-open value range covered by the segment.
    values, oids:
        The segment payload.  ``None`` for *virtual* segments (used by
        adaptive replication), which describe a range and an estimated size
        but hold no data.  Unsorted payloads are sorted by value at
        construction (oids are co-sorted so pairs are preserved).
    value_width:
        Bytes per value, used for all byte accounting.  Derived from the
        dtype when data is present.
    estimated_count:
        Size estimate for virtual segments.
    assume_sorted:
        Internal fast path: the caller guarantees ``values`` is already
        sorted (slices of a sorted parent).  Skips the sortedness check so
        splits stay O(log n).
    """

    __slots__ = ("vrange", "values", "oids", "value_width", "estimated_count")

    def __init__(
        self,
        vrange: ValueRange,
        values: np.ndarray | None = None,
        oids: np.ndarray | None = None,
        *,
        value_width: int | None = None,
        estimated_count: float | None = None,
        assume_sorted: bool = False,
    ) -> None:
        self.vrange = vrange
        if values is not None:
            values = np.asarray(values)
            if oids is None:
                oids = np.arange(values.size, dtype=np.int64)
            else:
                oids = np.asarray(oids, dtype=np.int64)
            if oids.size != values.size:
                raise ValueError(
                    f"values and oids must have equal length, got {values.size} and {oids.size}"
                )
            if not assume_sorted and not is_value_sorted(values):
                order = np.argsort(values, kind="stable")
                values = values[order]
                oids = oids[order]
            if value_width is None:
                value_width = int(values.dtype.itemsize)
        elif value_width is None:
            raise ValueError("virtual segments must specify value_width explicitly")
        self.values = values
        self.oids = oids
        self.value_width = int(value_width)
        self.estimated_count = float(
            estimated_count if estimated_count is not None else (0 if values is None else values.size)
        )

    # -- basic properties ------------------------------------------------

    @property
    def materialized(self) -> bool:
        """True when the segment holds actual data."""
        return self.values is not None

    @property
    def count(self) -> float:
        """Number of values held (materialized) or estimated (virtual)."""
        if self.values is not None:
            return float(self.values.size)
        return self.estimated_count

    @property
    def size_bytes(self) -> float:
        """Payload size in bytes (estimate for virtual segments)."""
        return self.count * self.value_width

    # -- size estimation --------------------------------------------------

    def estimate_count(self, sub: ValueRange) -> float:
        """Estimated number of values in ``sub`` assuming a uniform spread.

        The segmentation models make their decisions from estimates so that
        no data needs to be touched at optimization time (paper §3.1).
        """
        return self.count * sub.fraction_of(self.vrange)

    def estimate_bytes(self, sub: ValueRange) -> float:
        """Estimated payload bytes of the portion of this segment in ``sub``."""
        return self.estimate_count(sub) * self.value_width

    # -- data operations --------------------------------------------------

    def _require_data(self) -> None:
        if self.values is None:
            raise RuntimeError(f"segment {self.vrange} is virtual and holds no data")

    def bounds(self, vrange: ValueRange) -> tuple[int, int]:
        """Positional slice ``[lo, hi)`` of the values falling into ``vrange``.

        Two binary searches over the sorted payload; the fully-contained case
        is answered from the range metadata alone without probing the data.
        """
        self._require_data()
        if vrange.low <= self.vrange.low and vrange.high >= self.vrange.high:
            return 0, int(self.values.size)
        lo = sorted_probe(self.values, vrange.low, side="left")
        hi = sorted_probe(self.values, vrange.high, side="left")
        return lo, hi

    def select(self, vrange: ValueRange) -> SelectionResult:
        """Extract the values (and oids) falling into ``vrange``.

        Returns zero-copy views into the segment payload (read-only by
        contract — see the module docstring).
        """
        lo, hi = self.bounds(vrange)
        if lo == 0 and hi == self.values.size:
            return SelectionResult(self.values, self.oids, values_sorted=True)
        return SelectionResult(self.values[lo:hi], self.oids[lo:hi], values_sorted=True)

    def bounds_many(self, lows: np.ndarray, highs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Positional slices ``[lo_i, hi_i)`` for N half-open ranges at once.

        Two ``np.searchsorted`` calls answer the whole batch — the vectorized
        counterpart of :meth:`bounds`, with identical per-range semantics
        (``side="left"`` probes over the sorted payload).
        """
        self._require_data()
        return (
            sorted_probe_many(self.values, lows, side="left"),
            sorted_probe_many(self.values, highs, side="left"),
        )

    def select_many(self, lows: np.ndarray, highs: np.ndarray) -> list[SelectionResult]:
        """Extract the values (and oids) of N half-open ranges in one batch.

        Every result is a zero-copy view slice of the segment payload (no
        envelope over-scan: each range gets exactly its own ``[lo, hi)``
        slice).  An empty or reversed range yields an empty result.
        """
        los, his = self.bounds_many(lows, highs)
        values, oids = self.values, self.oids
        return [
            SelectionResult(values[lo:hi], oids[lo:hi], values_sorted=True)
            for lo, hi in zip(los.tolist(), his.tolist())
        ]

    def extract(self, vrange: ValueRange) -> "Segment":
        """A new materialized segment holding this segment's data in ``vrange``.

        The new segment shares the base array (slice views, no payload copy).
        """
        lo, hi = self.bounds(vrange)
        return Segment(
            vrange,
            self.values[lo:hi],
            self.oids[lo:hi],
            value_width=self.value_width,
            assume_sorted=True,
        )

    def partition(self, points: list[float]) -> list["Segment"]:
        """Split into adjacent materialized sub-segments at the given points.

        Points outside the segment range are ignored.  The sub-segments
        together hold exactly the same multiset of ``(oid, value)`` pairs,
        as O(log n) slices over the shared base array (no payload copies).
        """
        self._require_data()
        sub_ranges = self.vrange.split_at(points)
        if len(sub_ranges) == 1:
            return [self]
        edges = [
            0,
            *(sorted_probe(self.values, r.high, side="left") for r in sub_ranges[:-1]),
            int(self.values.size),
        ]
        return [
            Segment(
                sub,
                self.values[start:stop],
                self.oids[start:stop],
                value_width=self.value_width,
                assume_sorted=True,
            )
            for sub, start, stop in zip(sub_ranges, edges[:-1], edges[1:])
        ]

    def free(self) -> None:
        """Drop the payload, turning the segment into a virtual one."""
        self.estimated_count = self.count
        self.values = None
        self.oids = None

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` when the payload violates the layout.

        Checks both the range invariant (every value inside ``vrange``) and
        the physical sortedness the zero-copy kernels rely on.
        """
        if self.values is None:
            return
        if self.values.size == 0:
            return
        if not bool(np.all((self.values >= self.vrange.low) & (self.values < self.vrange.high))):
            raise AssertionError(f"segment {self.vrange} holds values outside its range")
        if not is_value_sorted(self.values):
            raise AssertionError(f"segment {self.vrange} payload is not value-sorted")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "mat" if self.materialized else "vir"
        return f"Segment({self.vrange}, {kind}, count={self.count:g})"
