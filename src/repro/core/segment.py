"""Segments: the unit of value-based column organisation.

A segment owns the ``(oid, value)`` pairs of a column whose values fall into a
contiguous range of the attribute domain.  Segments back both self-organizing
techniques: adaptive segmentation keeps an ordered, non-overlapping list of
them, while adaptive replication arranges (possibly virtual) segments into a
replica tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ranges import ValueRange


@dataclass
class SelectionResult:
    """Qualifying values (and their oids) returned by a range selection."""

    values: np.ndarray
    oids: np.ndarray

    @property
    def count(self) -> int:
        """Number of qualifying values."""
        return int(self.values.size)

    @classmethod
    def empty(cls, dtype: np.dtype) -> "SelectionResult":
        """An empty result of the given value dtype."""
        return cls(np.empty(0, dtype=dtype), np.empty(0, dtype=np.int64))

    @classmethod
    def concatenate(cls, parts: list["SelectionResult"], dtype: np.dtype) -> "SelectionResult":
        """Concatenate partial results (order follows the parts)."""
        parts = [p for p in parts if p.count > 0]
        if not parts:
            return cls.empty(dtype)
        return cls(
            np.concatenate([p.values for p in parts]),
            np.concatenate([p.oids for p in parts]),
        )


class Segment:
    """A contiguous value-range piece of a column.

    Parameters
    ----------
    vrange:
        Half-open value range covered by the segment.
    values, oids:
        The segment payload.  ``None`` for *virtual* segments (used by
        adaptive replication), which describe a range and an estimated size
        but hold no data.
    value_width:
        Bytes per value, used for all byte accounting.  Derived from the
        dtype when data is present.
    estimated_count:
        Size estimate for virtual segments.
    """

    __slots__ = ("vrange", "values", "oids", "value_width", "estimated_count")

    def __init__(
        self,
        vrange: ValueRange,
        values: np.ndarray | None = None,
        oids: np.ndarray | None = None,
        *,
        value_width: int | None = None,
        estimated_count: float | None = None,
    ) -> None:
        self.vrange = vrange
        if values is not None:
            values = np.asarray(values)
            if oids is None:
                oids = np.arange(values.size, dtype=np.int64)
            else:
                oids = np.asarray(oids, dtype=np.int64)
            if oids.size != values.size:
                raise ValueError(
                    f"values and oids must have equal length, got {values.size} and {oids.size}"
                )
            if value_width is None:
                value_width = int(values.dtype.itemsize)
        elif value_width is None:
            raise ValueError("virtual segments must specify value_width explicitly")
        self.values = values
        self.oids = oids
        self.value_width = int(value_width)
        self.estimated_count = float(
            estimated_count if estimated_count is not None else (0 if values is None else values.size)
        )

    # -- basic properties ------------------------------------------------

    @property
    def materialized(self) -> bool:
        """True when the segment holds actual data."""
        return self.values is not None

    @property
    def count(self) -> float:
        """Number of values held (materialized) or estimated (virtual)."""
        if self.values is not None:
            return float(self.values.size)
        return self.estimated_count

    @property
    def size_bytes(self) -> float:
        """Payload size in bytes (estimate for virtual segments)."""
        return self.count * self.value_width

    # -- size estimation --------------------------------------------------

    def estimate_count(self, sub: ValueRange) -> float:
        """Estimated number of values in ``sub`` assuming a uniform spread.

        The segmentation models make their decisions from estimates so that
        no data needs to be touched at optimization time (paper §3.1).
        """
        return self.count * sub.fraction_of(self.vrange)

    def estimate_bytes(self, sub: ValueRange) -> float:
        """Estimated payload bytes of the portion of this segment in ``sub``."""
        return self.estimate_count(sub) * self.value_width

    # -- data operations --------------------------------------------------

    def _require_data(self) -> None:
        if self.values is None:
            raise RuntimeError(f"segment {self.vrange} is virtual and holds no data")

    def mask(self, vrange: ValueRange) -> np.ndarray:
        """Boolean mask of values falling into ``vrange``."""
        self._require_data()
        return (self.values >= vrange.low) & (self.values < vrange.high)

    def select(self, vrange: ValueRange) -> SelectionResult:
        """Extract the values (and oids) falling into ``vrange``."""
        self._require_data()
        selected = self.mask(vrange)
        return SelectionResult(self.values[selected], self.oids[selected])

    def extract(self, vrange: ValueRange) -> "Segment":
        """A new materialized segment holding this segment's data in ``vrange``."""
        result = self.select(vrange)
        return Segment(vrange, result.values, result.oids, value_width=self.value_width)

    def partition(self, points: list[float]) -> list["Segment"]:
        """Split into adjacent materialized sub-segments at the given points.

        Points outside the segment range are ignored.  The sub-segments
        together hold exactly the same multiset of ``(oid, value)`` pairs.
        """
        self._require_data()
        sub_ranges = self.vrange.split_at(points)
        if len(sub_ranges) == 1:
            return [self]
        cuts = [r.high for r in sub_ranges[:-1]]
        bucket = np.searchsorted(np.asarray(cuts), self.values, side="right")
        pieces: list[Segment] = []
        for i, sub in enumerate(sub_ranges):
            selected = bucket == i
            pieces.append(
                Segment(
                    sub,
                    self.values[selected],
                    self.oids[selected],
                    value_width=self.value_width,
                )
            )
        return pieces

    def free(self) -> None:
        """Drop the payload, turning the segment into a virtual one."""
        self.estimated_count = self.count
        self.values = None
        self.oids = None

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` when the payload violates the range."""
        if self.values is None:
            return
        if self.values.size == 0:
            return
        if not bool(np.all((self.values >= self.vrange.low) & (self.values < self.vrange.high))):
            raise AssertionError(f"segment {self.vrange} holds values outside its range")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "mat" if self.materialized else "vir"
        return f"Segment({self.vrange}, {kind}, count={self.count:g})"
