"""Experiment drivers shared by the benchmarks and the console script.

Two families of experiments exist, matching the paper's evaluation:

* **Simulation** (§6.1, Figures 5-9 and Table 1): the strategy/model grid on
  a 100 K-value integer column probed by uniform or Zipf range queries.
* **Prototype / engine** (§6.2, Figures 10-16 and Table 2): the SQL engine
  with the segment optimizer, driven by SkyServer-style 200-query workloads
  against a synthetic right-ascension column, comparing the non-segmented
  baseline against GD and two APM configurations.

Experiment sizes follow the paper by default and can be scaled down through
environment variables (useful on slow machines or in CI):

* ``REPRO_SIM_QUERIES``   — queries per simulated run (default 10000)
* ``REPRO_ENGINE_ROWS``   — rows of the synthetic SkyServer column (default 2000000)
* ``REPRO_ENGINE_QUERIES``— queries per engine workload (default 200)

Results are memoised per process so different benchmark files that need the
same run (e.g. Figure 5 and Table 1) do not repeat the work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.statistics import SegmentStatistics, segment_statistics
from repro.engine.database import Database
from repro.simulation.metrics import ExperimentResult
from repro.simulation.runner import run_grid
from repro.util.rng import DEFAULT_SEED
from repro.util.stats import moving_average
from repro.workloads.generators import uniform_workload, zipf_workload
from repro.workloads.query import Workload
from repro.workloads.skyserver import (
    PAPER_M_MAX_LARGE,
    PAPER_M_MAX_SMALL,
    PAPER_M_MIN,
    skyserver_dataset,
    skyserver_workload,
)

#: Paper-order listing of the §6.2 schemes (Figure 10's x axis).
SCHEME_ORDER = ("NoSegm", "GD", "APM 1-25", "APM 1-5")


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    return max(1, int(value))


def sim_query_count() -> int:
    """Number of queries per simulated run (paper: 10 000)."""
    return _env_int("REPRO_SIM_QUERIES", 10_000)


def engine_row_count() -> int:
    """Rows of the synthetic SkyServer column."""
    return _env_int("REPRO_ENGINE_ROWS", 2_000_000)


def engine_query_count() -> int:
    """Queries per engine workload (paper: 200)."""
    return _env_int("REPRO_ENGINE_QUERIES", 200)


# ---------------------------------------------------------------------------
# Simulation experiments (§6.1)
# ---------------------------------------------------------------------------

_SIM_CACHE: dict[tuple, dict[str, ExperimentResult]] = {}


def simulation_workload(distribution: str, selectivity: float, n_queries: int) -> Workload:
    """The §6.1 query stream over the 1 M-integer domain."""
    domain = (0.0, 1_000_000.0)
    if distribution == "uniform":
        return uniform_workload(n_queries, domain, selectivity, seed=DEFAULT_SEED)
    if distribution == "zipf":
        return zipf_workload(n_queries, domain, selectivity, seed=DEFAULT_SEED)
    raise ValueError(f"unknown simulation distribution {distribution!r}")


def simulation_grid(
    distribution: str,
    selectivity: float,
    *,
    n_queries: int | None = None,
    include_baseline: bool = False,
) -> dict[str, ExperimentResult]:
    """Run (or fetch from cache) the strategy/model grid for one workload."""
    queries = n_queries if n_queries is not None else sim_query_count()
    key = (distribution, selectivity, queries, include_baseline)
    if key not in _SIM_CACHE:
        workload = simulation_workload(distribution, selectivity, queries)
        _SIM_CACHE[key] = run_grid(
            workload, include_baseline=include_baseline, seed=DEFAULT_SEED
        )
    return _SIM_CACHE[key]


# ---------------------------------------------------------------------------
# Engine experiments (§6.2)
# ---------------------------------------------------------------------------


@dataclass
class EngineRunResult:
    """Per-query timings of one scheme on one SkyServer-style workload."""

    scheme: str
    workload: str
    selection_seconds: list[float] = field(default_factory=list)
    adaptation_seconds: list[float] = field(default_factory=list)
    segment_stats: SegmentStatistics | None = None
    column_bytes: int = 0

    @property
    def total_seconds(self) -> list[float]:
        """Per-query total time (selection + adaptation)."""
        return [s + a for s, a in zip(self.selection_seconds, self.adaptation_seconds)]

    def cumulative_ms(self) -> list[float]:
        """Cumulative query time in milliseconds (Figures 11, 13, 15)."""
        return list(np.cumsum(self.total_seconds) * 1000.0)

    def moving_average_ms(self, window: int = 20) -> list[float]:
        """Moving-average query time in milliseconds (Figures 12, 14, 16)."""
        return list(moving_average(self.total_seconds, window) * 1000.0)

    def average_ms(self, *, skip: int = 0) -> dict[str, float]:
        """Average per-query adaptation/selection milliseconds (Figure 10).

        ``skip`` ignores the first queries, matching the paper's "after the
        first 200 queries" framing when a longer run is used.
        """
        selection = self.selection_seconds[skip:]
        adaptation = self.adaptation_seconds[skip:]
        count = max(len(selection), 1)
        return {
            "selection_ms": 1000.0 * sum(selection) / count,
            "adaptation_ms": 1000.0 * sum(adaptation) / count,
            "total_ms": 1000.0 * (sum(selection) + sum(adaptation)) / count,
        }


def skyserver_schemes(column_bytes: int) -> dict[str, dict]:
    """The four §6.2 schemes with APM bounds scaled to the column size.

    The paper used Mmin = 1 MB with Mmax = 25 MB or 5 MB against a ~1 GB
    column; the same ratios are applied to our synthetic column.
    """
    scale = column_bytes / (1024**3)
    m_min = PAPER_M_MIN * scale
    return {
        "NoSegm": {"strategy": None},
        "GD": {"strategy": "segmentation", "model": "gd"},
        "APM 1-25": {
            "strategy": "segmentation",
            "model": "apm",
            "m_min": m_min,
            "m_max": PAPER_M_MAX_LARGE * scale,
        },
        "APM 1-5": {
            "strategy": "segmentation",
            "model": "apm",
            "m_min": m_min,
            "m_max": PAPER_M_MAX_SMALL * scale,
        },
    }


_ENGINE_CACHE: dict[tuple, EngineRunResult] = {}
_DATASET_CACHE: dict[int, object] = {}


def _engine_dataset(n_rows: int):
    if n_rows not in _DATASET_CACHE:
        _DATASET_CACHE[n_rows] = skyserver_dataset(n_rows, seed=DEFAULT_SEED)
    return _DATASET_CACHE[n_rows]


def _build_database(dataset) -> Database:
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {"objid": np.arange(dataset.ra.size, dtype=np.int64), "ra": dataset.ra},
    )
    return database


def skyserver_engine_run(
    workload_kind: str,
    scheme: str,
    *,
    n_rows: int | None = None,
    n_queries: int | None = None,
    replication: bool = False,
) -> EngineRunResult:
    """Run one scheme against one SkyServer-style workload through the engine.

    ``replication=True`` swaps adaptive segmentation for adaptive replication
    (an extension run; the paper's §6.2 only evaluates segmentation).
    """
    rows = n_rows if n_rows is not None else engine_row_count()
    queries = n_queries if n_queries is not None else engine_query_count()
    key = (workload_kind, scheme, rows, queries, replication)
    if key in _ENGINE_CACHE:
        return _ENGINE_CACHE[key]

    dataset = _engine_dataset(rows)
    database = _build_database(dataset)
    column_bytes = dataset.column_bytes
    schemes = skyserver_schemes(column_bytes)
    if scheme not in schemes:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {sorted(schemes)}")
    configuration = schemes[scheme]

    if configuration["strategy"] is not None:
        strategy = "replication" if replication else configuration["strategy"]
        kwargs = {"model": configuration["model"], "seed": DEFAULT_SEED}
        if "m_min" in configuration:
            kwargs["m_min"] = configuration["m_min"]
            kwargs["m_max"] = configuration["m_max"]
        database.enable_adaptive("p", "ra", strategy=strategy, **kwargs)

    workload = skyserver_workload(workload_kind, queries, seed=DEFAULT_SEED)
    run = EngineRunResult(scheme=scheme, workload=workload.name, column_bytes=column_bytes)
    for query in workload:
        result = database.execute(
            f"SELECT objid FROM p WHERE ra BETWEEN {float(query.low)!r} AND {float(query.high)!r}"
        )
        adaptation = result.adaptation_seconds
        selection = max(result.total_seconds - adaptation, 0.0)
        run.adaptation_seconds.append(adaptation)
        run.selection_seconds.append(selection)

    if configuration["strategy"] is not None:
        handle = database.adaptive_handle("p", "ra")
        run.segment_stats = segment_statistics(handle.adaptive)
    _ENGINE_CACHE[key] = run
    return run
