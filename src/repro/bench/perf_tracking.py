"""Standing performance tracking: timed suites persisted as ``BENCH_*.json``.

The repo's perf trajectory is tracked by small JSON reports written at the
repository root (``BENCH_<suite>.json``).  Each report records what was
measured, how (iterations, repeats), the numbers themselves, and enough
environment detail to interpret a regression.  Benchmarks never fail on
timing — a report is data, not a gate — so CI runs them crash-only and
archives the JSON as an artifact.

Usage::

    suite = PerfSuite("segment_kernels")
    suite.measure("sorted_select", fn, number=1000)
    suite.derive("speedup_select", baseline_s / sorted_s, unit="x")
    suite.write(repo_root / "BENCH_segment_kernels.json")
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np


def env_scale(name: str, default: int) -> int:
    """An integer scale knob read from the environment (CI runs reduced).

    Raises :class:`ValueError` for a malformed value instead of silently
    benchmarking the wrong size.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = int(raw)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def time_per_op(fn: Callable[[], Any], *, number: int, repeat: int = 5) -> dict[str, float]:
    """Best and median seconds-per-call of ``fn`` over ``repeat`` batches.

    The *best* batch is the standard micro-benchmark statistic (least noise);
    the median is kept alongside it as a stability indicator.
    """
    if number <= 0 or repeat <= 0:
        raise ValueError("number and repeat must be positive")
    batches: list[float] = []
    for _ in range(repeat):
        started = time.perf_counter()
        for _ in range(number):
            fn()
        batches.append((time.perf_counter() - started) / number)
    batches.sort()
    return {"best_s": batches[0], "median_s": batches[len(batches) // 2]}


@dataclass
class BenchRecord:
    """One measured (or derived) quantity of a perf suite."""

    name: str
    value: float
    unit: str = "s"
    number: int | None = None
    repeat: int | None = None
    median_s: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        record: dict[str, Any] = {"name": self.name, "value": self.value, "unit": self.unit}
        if self.number is not None:
            record["number"] = self.number
        if self.repeat is not None:
            record["repeat"] = self.repeat
        if self.median_s is not None:
            record["median_s"] = self.median_s
        if self.metadata:
            record["metadata"] = self.metadata
        return record


class PerfSuite:
    """Collects timed kernels and derived figures into one JSON report."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: list[BenchRecord] = []

    # -- measuring ---------------------------------------------------------

    def measure(
        self,
        name: str,
        fn: Callable[[], Any],
        *,
        number: int,
        repeat: int = 5,
        **metadata: Any,
    ) -> BenchRecord:
        """Time ``fn`` and record its best seconds-per-call."""
        timing = time_per_op(fn, number=number, repeat=repeat)
        record = BenchRecord(
            name=name,
            value=timing["best_s"],
            unit="s",
            number=number,
            repeat=repeat,
            median_s=timing["median_s"],
            metadata=dict(metadata),
        )
        self.records.append(record)
        return record

    def derive(self, name: str, value: float, *, unit: str = "x", **metadata: Any) -> BenchRecord:
        """Record a derived figure (a speedup ratio, a byte count, ...)."""
        record = BenchRecord(name=name, value=float(value), unit=unit, metadata=dict(metadata))
        self.records.append(record)
        return record

    def __getitem__(self, name: str) -> BenchRecord:
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(f"no benchmark record named {name!r}")

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def environment() -> dict[str, Any]:
        """Environment details a reader needs to interpret the numbers."""
        return {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
            "processor": platform.processor(),
        }

    def report(self) -> dict[str, Any]:
        """The full suite as a JSON-serialisable mapping."""
        return {
            "suite": self.name,
            "created_unix": time.time(),
            "environment": self.environment(),
            "results": [record.to_json() for record in self.records],
        }

    def write(self, path: str | Path) -> Path:
        """Persist the report (pretty-printed, stable key order)."""
        path = Path(path)
        path.write_text(json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def merge_write(self, path: str | Path) -> Path:
        """Merge this suite's records into an existing report file.

        Records already present in the file (by name) are replaced by this
        suite's measurements; everything else is kept in place.  This is how
        several benchmark scripts contribute to one standing ``BENCH_*.json``
        — the main suite ``write()``s the report, satellite suites (e.g. the
        server throughput bench) ``merge_write()`` their records in
        afterwards.  A missing or unreadable file degrades to :meth:`write`.
        """
        path = Path(path)
        report = self.report()
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = None
        if isinstance(existing, dict):
            mine = {record["name"] for record in report["results"]}
            kept = [
                record
                for record in existing.get("results", [])
                if record.get("name") not in mine
            ]
            report["results"] = kept + report["results"]
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def format_summary(self) -> str:
        """A fixed-width text rendering of the suite for terminal output."""
        width = max((len(r.name) for r in self.records), default=4)
        lines = [f"== perf suite: {self.name} =="]
        for record in self.records:
            if record.unit == "s":
                rendered = f"{record.value * 1e6:12.2f} µs/op"
            else:
                rendered = f"{record.value:12.2f} {record.unit}"
            lines.append(f"  {record.name:<{width}s} {rendered}")
        return "\n".join(lines)


def load_report(path: str | Path) -> dict[str, Any]:
    """Load a previously written ``BENCH_*.json`` report."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_to_baseline(
    current: dict[str, Any], baseline: dict[str, Any]
) -> dict[str, float]:
    """Per-record ratio ``current / baseline`` for records present in both.

    Ratios above 1.0 mean the current run is slower (for ``s``-unit records).
    This is the hook future PRs use to watch the perf trajectory across
    reports.
    """
    baseline_values = {
        r["name"]: r["value"] for r in baseline.get("results", []) if r.get("value")
    }
    ratios: dict[str, float] = {}
    for record in current.get("results", []):
        name = record["name"]
        if name in baseline_values and baseline_values[name]:
            ratios[name] = record["value"] / baseline_values[name]
    return ratios
