"""One function per paper figure/table, plus the ``repro-experiments`` CLI.

Each ``figure_*`` / ``table_*`` function runs the corresponding experiment and
returns a formatted text block in the paper's shape (series sampled over the
query axis, or a table of rows).  The benchmarks in ``benchmarks/`` call these
functions through ``pytest-benchmark``; the console script runs any subset:

.. code-block:: console

    $ repro-experiments --list
    $ repro-experiments fig5 table1
    $ repro-experiments all
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bench.harness import (
    SCHEME_ORDER,
    simulation_grid,
    skyserver_engine_run,
)
from repro.bench.reporting import format_series, format_table
from repro.core.models import GaussianDice
from repro.util.units import KB


# ---------------------------------------------------------------------------
# Simulation figures (§6.1)
# ---------------------------------------------------------------------------


def figure_2() -> str:
    """Figure 2: the Gaussian Dice decision function for several sigmas."""
    xs = np.linspace(0.0, 1.0, 21)
    sigmas = (0.05, 0.1, 0.2, 0.3, 0.5, 1.0)
    rows = []
    for x in xs:
        row: dict[str, object] = {"x (ratio P/S)": round(float(x), 2)}
        for sigma in sigmas:
            row[f"sigma={sigma}"] = GaussianDice.decision_probability(float(x), sigma)
        rows.append(row)
    return format_table("Figure 2: Gaussian Dice decision probability O(x)", rows, floatfmt=".3f")


def _writes_figure(title: str, distribution: str) -> str:
    blocks = []
    for selectivity in (0.1, 0.01):
        grid = simulation_grid(distribution, selectivity)
        series = {label: result.cumulative_writes() for label, result in grid.items()}
        blocks.append(
            format_series(
                f"{title} (selectivity {selectivity})",
                series,
                unit="cumulative bytes written",
            )
        )
    return "\n\n".join(blocks)


def figure_5() -> str:
    """Figure 5: cumulative memory writes, uniform query distribution."""
    return _writes_figure("Figure 5: cumulative memory writes, uniform", "uniform")


def figure_6() -> str:
    """Figure 6: cumulative memory writes, Zipf query distribution."""
    return _writes_figure("Figure 6: cumulative memory writes, Zipf", "zipf")


def figure_7() -> str:
    """Figure 7: per-query memory reads during the first 1000 queries."""
    grid = simulation_grid("uniform", 0.1)
    series = {label: result.reads_series()[:1000] for label, result in grid.items()}
    return format_series(
        "Figure 7: memory reads, first 1000 queries (uniform, selectivity 0.1)",
        series,
        unit="bytes read per query",
        max_points=20,
    )


def table_1() -> str:
    """Table 1: average read size per query (KB) over the full run."""
    configurations = [
        ("U 0.1", "uniform", 0.1),
        ("U 0.01", "uniform", 0.01),
        ("Z 0.1", "zipf", 0.1),
        ("Z 0.01", "zipf", 0.01),
    ]
    per_strategy: dict[str, dict[str, object]] = {}
    for column_label, distribution, selectivity in configurations:
        grid = simulation_grid(distribution, selectivity)
        for strategy_label, result in grid.items():
            row = per_strategy.setdefault(strategy_label, {"Strategy": strategy_label})
            row[column_label] = result.average_read_kb()
    order = ["GD Segm", "GD Repl", "APM Segm", "APM Repl"]
    rows = [per_strategy[label] for label in order if label in per_strategy]
    return format_table(
        "Table 1: average read sizes in KB per query",
        rows,
        columns=["Strategy", "U 0.1", "U 0.01", "Z 0.1", "Z 0.01"],
    )


def _replica_storage_figure(title: str, distribution: str, first_n: int | None) -> str:
    blocks = []
    for selectivity in (0.1, 0.01):
        grid = simulation_grid(distribution, selectivity)
        series = {}
        for label in ("GD Repl", "APM Repl"):
            storage = grid[label].storage_series()
            series[label] = storage[:first_n] if first_n else storage
        column_bytes = grid["GD Repl"].column_bytes
        series["DB size"] = [column_bytes] * len(series["GD Repl"])
        blocks.append(
            format_series(
                f"{title} (selectivity {selectivity})",
                series,
                unit="replica storage bytes",
            )
        )
    return "\n\n".join(blocks)


def figure_8() -> str:
    """Figure 8: replica storage over the first 500 queries, uniform."""
    return _replica_storage_figure("Figure 8: replica storage, uniform", "uniform", 500)


def figure_9() -> str:
    """Figure 9: replica storage over the full run, Zipf."""
    return _replica_storage_figure("Figure 9: replica storage, Zipf", "zipf", None)


# ---------------------------------------------------------------------------
# Engine figures (§6.2)
# ---------------------------------------------------------------------------


def figure_10() -> str:
    """Figure 10: average adaptation vs selection time per workload and scheme."""
    blocks = []
    for workload in ("random", "skewed", "changing"):
        rows = []
        for scheme in SCHEME_ORDER:
            run = skyserver_engine_run(workload, scheme)
            averages = run.average_ms()
            rows.append(
                {
                    "Scheme": scheme,
                    "adaptation ms": averages["adaptation_ms"],
                    "selection ms": averages["selection_ms"],
                    "total ms": averages["total_ms"],
                }
            )
        blocks.append(
            format_table(
                f"Figure 10: avg time per query, {workload} workload",
                rows,
                floatfmt=".2f",
            )
        )
    return "\n\n".join(blocks)


def _time_figures(workload: str, cumulative_title: str, moving_title: str) -> str:
    cumulative = {}
    moving = {}
    for scheme in SCHEME_ORDER:
        run = skyserver_engine_run(workload, scheme)
        cumulative[scheme] = run.cumulative_ms()
        moving[scheme] = run.moving_average_ms()
    return "\n\n".join(
        [
            format_series(cumulative_title, cumulative, unit="cumulative ms"),
            format_series(moving_title, moving, unit="moving average ms"),
        ]
    )


def figure_11_12() -> str:
    """Figures 11/12: cumulative and moving-average time, random workload."""
    return _time_figures(
        "random",
        "Figure 11: cumulative time, random workload",
        "Figure 12: moving average query time, random workload",
    )


def figure_13_14() -> str:
    """Figures 13/14: cumulative and moving-average time, skewed workload."""
    return _time_figures(
        "skewed",
        "Figure 13: cumulative time, skewed workload",
        "Figure 14: moving average query time, skewed workload",
    )


def figure_15_16() -> str:
    """Figures 15/16: cumulative and moving-average time, changing workload."""
    return _time_figures(
        "changing",
        "Figure 15: cumulative time, changing workload",
        "Figure 16: moving average query time, changing workload",
    )


def table_2() -> str:
    """Table 2: segment statistics per workload and scheme."""
    rows = []
    for workload in ("random", "skewed"):
        for scheme in ("GD", "APM 1-25", "APM 1-5"):
            run = skyserver_engine_run(workload, scheme)
            stats = run.segment_stats
            if stats is None:
                continue
            rows.append(
                {
                    "Load": workload,
                    "Scheme": scheme,
                    "Segm.#": stats.segment_count,
                    "Avg size (KB)": stats.average_bytes / KB,
                    "Deviation (KB)": stats.deviation_bytes / KB,
                }
            )
    return format_table("Table 2: segment statistics", rows, floatfmt=".1f")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "fig2": figure_2,
    "fig5": figure_5,
    "fig6": figure_6,
    "fig7": figure_7,
    "table1": table_1,
    "fig8": figure_8,
    "fig9": figure_9,
    "fig10": figure_10,
    "fig11-12": figure_11_12,
    "fig13-14": figure_13_14,
    "fig15-16": figure_15_16,
    "table2": table_2,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-experiments`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the paper's evaluation section.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (e.g. fig5 table1) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("Available experiments:")
        for name, function in EXPERIMENTS.items():
            print(f"  {name:<10s} {function.__doc__.splitlines()[0] if function.__doc__ else ''}")
        return 0

    selected = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in selected:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
