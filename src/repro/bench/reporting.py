"""Rendering helpers: turn experiment data into paper-shaped text output."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def downsample(values: Sequence[float], max_points: int = 20) -> list[tuple[int, float]]:
    """Pick ~``max_points`` evenly spaced (index, value) samples from a series.

    The benchmarks print long per-query series (10 000 points in the paper's
    figures); sampling keeps the output readable while preserving the shape.
    Indices are 1-based to match the paper's query counters.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return []
    if arr.size <= max_points:
        return [(i + 1, float(v)) for i, v in enumerate(arr)]
    positions = np.unique(np.linspace(0, arr.size - 1, max_points).astype(int))
    return [(int(i) + 1, float(arr[i])) for i in positions]


def format_series(
    title: str,
    series_by_label: dict[str, Sequence[float]],
    *,
    max_points: int = 15,
    unit: str = "",
) -> str:
    """Render several aligned series as one fixed-width table.

    The output imitates reading values off the paper's figures: one row per
    sampled query index, one column per strategy.
    """
    labels = list(series_by_label)
    if not labels:
        return f"== {title} ==\n(no data)"
    sampled = {label: dict(downsample(series, max_points)) for label, series in series_by_label.items()}
    indices = sorted({index for points in sampled.values() for index in points})
    header = f"{'query':>8s} | " + " | ".join(f"{label:>14s}" for label in labels)
    rule = "-" * len(header)
    lines = [f"== {title} ==" + (f"  [{unit}]" if unit else ""), header, rule]
    for index in indices:
        cells = []
        for label in labels:
            value = sampled[label].get(index)
            cells.append(f"{value:>14.4g}" if value is not None else " " * 14)
        lines.append(f"{index:>8d} | " + " | ".join(cells))
    return "\n".join(lines)


def format_table(
    title: str,
    rows: list[dict[str, object]],
    *,
    columns: list[str] | None = None,
    floatfmt: str = ".1f",
) -> str:
    """Render a list of row dictionaries as a fixed-width table (Tables 1/2)."""
    if not rows:
        return f"== {title} ==\n(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(column), *(len(_fmt(row.get(column), floatfmt)) for row in rows))
        for column in columns
    }
    header = " | ".join(f"{column:>{widths[column]}s}" for column in columns)
    rule = "-+-".join("-" * widths[column] for column in columns)
    lines = [f"== {title} ==", header, rule]
    for row in rows:
        lines.append(
            " | ".join(f"{_fmt(row.get(column), floatfmt):>{widths[column]}s}" for column in columns)
        )
    return "\n".join(lines)


def _fmt(value: object, floatfmt: str) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)
