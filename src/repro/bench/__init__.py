"""Benchmark harness: experiment definitions and reporting.

Every table and figure of the paper's evaluation section has a corresponding
experiment function here and a benchmark in ``benchmarks/``.  The functions
return plain data structures (series and rows); :mod:`repro.bench.reporting`
renders them in the paper's shape, and ``repro-experiments`` (the console
script) runs any subset from the command line.
"""

from repro.bench.harness import (
    EngineRunResult,
    SCHEME_ORDER,
    simulation_grid,
    skyserver_engine_run,
    skyserver_schemes,
)
from repro.bench.reporting import format_series, format_table, downsample

__all__ = [
    "EngineRunResult",
    "SCHEME_ORDER",
    "simulation_grid",
    "skyserver_engine_run",
    "skyserver_schemes",
    "format_series",
    "format_table",
    "downsample",
]
