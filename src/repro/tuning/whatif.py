"""IWEK-style interpretable what-if estimation for knob changes.

Before the controller moves a knob it asks "what would this setting cost?".
The estimator answering that question is deliberately small and inspectable
(the IWEK argument: an interpretable model a DBA can audit beats a black box
for knob tuning): a bagged linear regressor over (knob values, workload
features) fit by ridge-regularized least squares, predicting log IO bytes
per query and log warm latency per query.  The bag — ``n_models`` fits on
bootstrap resamples of the training set — yields a per-prediction
uncertainty (the spread of the bag's answers), which is exactly the gate the
KnobCF-shaped controller needs: apply a move only when the predicted gain
clears the uncertainty band.

Training examples come from two sources, both first-class here:

* offline sweeps — :func:`simulation_sweep_examples` replays a workload
  through :func:`repro.simulation.runner.run_single` over a grid of knob
  settings and records the observed per-query IO (the ``run_grid`` family's
  accounting);
* online observation — the controller feeds each completed evaluation
  window back as an example (knob snapshot, window features, observed cost),
  so the model keeps learning the engine it actually runs on.

Numpy-only by design (same discipline as the in-repo k-means): no scipy, no
sklearn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.cluster.workload_clustering import query_features

__all__ = [
    "Prediction",
    "TrainingExample",
    "WhatIfEstimator",
    "WORKLOAD_FEATURE_NAMES",
    "rank_correlation",
    "simulation_sweep_examples",
    "workload_feature_vector",
]

#: Interpretable summary of one query window, in feature order.
WORKLOAD_FEATURE_NAMES = ("center_mean", "center_std", "width_mean", "width_std")


def workload_feature_vector(
    lows: Sequence[float] | np.ndarray,
    highs: Sequence[float] | np.ndarray,
    *,
    domain_low: float,
    domain_high: float,
) -> np.ndarray:
    """Summarise a window of range queries as ``WORKLOAD_FEATURE_NAMES``.

    Built on the same per-query ``(center, width)`` normalization the
    workload clustering uses, so the estimator and the router describe
    workloads in one vocabulary.
    """
    lows = np.asarray(lows, dtype=np.float64)
    if lows.size == 0:
        return np.zeros(len(WORKLOAD_FEATURE_NAMES))
    features = query_features(
        lows, np.asarray(highs, dtype=np.float64),
        domain_low=domain_low, domain_high=domain_high,
    )
    centers, widths = features[:, 0], features[:, 1]
    return np.array([
        float(centers.mean()),
        float(centers.std()),
        float(widths.mean()),
        float(widths.std()),
    ])


@dataclass(frozen=True)
class TrainingExample:
    """One observed (configuration, workload) -> cost measurement."""

    knobs: dict[str, float]
    workload: np.ndarray  # WORKLOAD_FEATURE_NAMES vector
    io_bytes: float  # mean IO bytes per query under this configuration
    latency_s: float | None = None  # mean warm latency per query (optional)


@dataclass(frozen=True)
class Prediction:
    """A what-if answer with its uncertainty (bag spread, same units)."""

    io_bytes: float
    io_std: float
    latency_s: float | None
    latency_std: float | None


@dataclass
class _Bag:
    """One target's bagged ridge fit: coefficient matrix, one row per model."""

    weights: np.ndarray  # (n_models, n_features)

    def predict(self, row: np.ndarray) -> tuple[float, float]:
        answers = self.weights @ row
        return float(answers.mean()), float(answers.std())


class WhatIfEstimator:
    """Bagged ridge regression over (knob values, workload features).

    Targets are fit in log space (``log1p``) — IO per query spans orders of
    magnitude between a fitting and a thrashing configuration, and ranking
    (all the controller needs) is invariant under the monotone transform —
    and predictions are reported back in natural units.  Knob columns are
    z-scored from the training set; each knob additionally contributes a
    quadratic term so one-knob sweet spots (not just monotone trends) are
    representable while every coefficient stays attributable to a named
    feature.
    """

    def __init__(
        self,
        knob_names: Sequence[str],
        *,
        n_models: int = 12,
        ridge: float = 1e-2,
        seed: int | None = 0,
    ) -> None:
        if not knob_names:
            raise ValueError("WhatIfEstimator needs at least one knob name")
        self.knob_names = tuple(knob_names)
        self.n_models = int(n_models)
        self.ridge = float(ridge)
        self.seed = seed
        self.examples: list[TrainingExample] = []
        self._scale_mean: np.ndarray | None = None
        self._scale_std: np.ndarray | None = None
        self._io_bag: _Bag | None = None
        self._latency_bag: _Bag | None = None

    # -- feature construction ------------------------------------------------

    @property
    def feature_names(self) -> tuple[str, ...]:
        return (
            "intercept",
            *self.knob_names,
            *(f"{name}^2" for name in self.knob_names),
            *WORKLOAD_FEATURE_NAMES,
        )

    def _raw_row(self, knobs: dict[str, float], workload: np.ndarray) -> np.ndarray:
        missing = [name for name in self.knob_names if name not in knobs]
        if missing:
            raise ValueError(f"missing knob values for {missing}")
        knob_values = np.array([float(knobs[name]) for name in self.knob_names])
        workload = np.asarray(workload, dtype=np.float64)
        if workload.shape != (len(WORKLOAD_FEATURE_NAMES),):
            raise ValueError(
                f"workload feature vector must have shape "
                f"({len(WORKLOAD_FEATURE_NAMES)},), got {workload.shape}"
            )
        return np.concatenate([knob_values, workload])

    def _design_row(self, raw: np.ndarray) -> np.ndarray:
        assert self._scale_mean is not None and self._scale_std is not None
        n_knobs = len(self.knob_names)
        scaled = (raw - self._scale_mean) / self._scale_std
        knobs = scaled[:n_knobs]
        return np.concatenate([[1.0], knobs, knobs**2, scaled[n_knobs:]])

    # -- training ------------------------------------------------------------

    def add(self, example: TrainingExample) -> None:
        """Record one example (call :meth:`fit` to fold it into the model)."""
        self.examples.append(example)

    def extend(self, examples: Iterable[TrainingExample]) -> None:
        self.examples.extend(examples)

    @property
    def trained(self) -> bool:
        return self._io_bag is not None

    def fit(self, examples: Iterable[TrainingExample] | None = None) -> "WhatIfEstimator":
        """(Re)fit the bag on ``examples`` (appended to any recorded earlier)."""
        if examples is not None:
            self.extend(examples)
        if len(self.examples) < 3:
            raise ValueError(
                f"need >= 3 training examples to fit, have {len(self.examples)}"
            )
        raw = np.vstack([
            self._raw_row(example.knobs, example.workload)
            for example in self.examples
        ])
        self._scale_mean = raw.mean(axis=0)
        std = raw.std(axis=0)
        self._scale_std = np.where(std > 1e-12, std, 1.0)
        design = np.vstack([self._design_row(row) for row in raw])
        io_target = np.log1p(np.array([e.io_bytes for e in self.examples]))
        self._io_bag = self._fit_bag(design, io_target)
        latencies = [e.latency_s for e in self.examples]
        if all(latency is not None for latency in latencies):
            latency_target = np.log1p(np.array(latencies, dtype=np.float64) * 1e6)
            self._latency_bag = self._fit_bag(design, latency_target)
        else:
            self._latency_bag = None
        return self

    def _fit_bag(self, design: np.ndarray, target: np.ndarray) -> _Bag:
        rng = np.random.default_rng(self.seed)
        n_rows, n_features = design.shape
        penalty = self.ridge * np.eye(n_features)
        penalty[0, 0] = 0.0  # never shrink the intercept
        weights = np.empty((self.n_models, n_features))
        for index in range(self.n_models):
            rows = (
                np.arange(n_rows)
                if index == 0  # model 0 sees the full data (stable center)
                else rng.integers(0, n_rows, size=n_rows)
            )
            x, y = design[rows], target[rows]
            weights[index] = np.linalg.solve(x.T @ x + penalty, x.T @ y)
        return _Bag(weights)

    # -- prediction ----------------------------------------------------------

    def predict(self, knobs: dict[str, float], workload: np.ndarray) -> Prediction:
        """What-if: expected cost of running ``workload`` under ``knobs``.

        Uncertainties are the bag's spread mapped through the same inverse
        transform as the mean, so gain and uncertainty share units.
        """
        if self._io_bag is None:
            raise RuntimeError("estimator is not fitted (call fit() first)")
        row = self._design_row(self._raw_row(knobs, workload))
        io_log, io_log_std = self._io_bag.predict(row)
        io_bytes = float(np.expm1(np.clip(io_log, 0.0, 50.0)))
        io_std = abs(float(np.expm1(np.clip(io_log + io_log_std, 0.0, 50.0))) - io_bytes)
        latency_s = latency_std = None
        if self._latency_bag is not None:
            lat_log, lat_log_std = self._latency_bag.predict(row)
            latency_us = float(np.expm1(np.clip(lat_log, 0.0, 50.0)))
            latency_s = latency_us / 1e6
            latency_std = abs(
                float(np.expm1(np.clip(lat_log + lat_log_std, 0.0, 50.0))) - latency_us
            ) / 1e6
        return Prediction(io_bytes, io_std, latency_s, latency_std)

    def explain(self) -> dict[str, float]:
        """Mean IO-model coefficient per named feature (the IWEK payoff).

        Coefficients act on z-scored features in log-IO space: the sign says
        which direction moves IO, the magnitude ranks which knobs matter.
        """
        if self._io_bag is None:
            raise RuntimeError("estimator is not fitted (call fit() first)")
        means = self._io_bag.weights.mean(axis=0)
        return dict(zip(self.feature_names, (float(value) for value in means)))

    def stats(self) -> dict[str, Any]:
        return {
            "trained": self.trained,
            "examples": len(self.examples),
            "knobs": list(self.knob_names),
            "n_models": self.n_models,
        }


# ---------------------------------------------------------------------------
# Validation and offline training helpers
# ---------------------------------------------------------------------------


def rank_correlation(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Spearman rank correlation (average ranks for ties), numpy-only."""
    predicted = np.asarray(predicted, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    if predicted.shape != observed.shape or predicted.size < 2:
        raise ValueError("need two same-length series of >= 2 values")
    p_ranks = _average_ranks(predicted)
    o_ranks = _average_ranks(observed)
    p_centered = p_ranks - p_ranks.mean()
    o_centered = o_ranks - o_ranks.mean()
    denominator = float(
        np.sqrt((p_centered**2).sum() * (o_centered**2).sum())
    )
    if denominator == 0.0:
        return 0.0
    return float((p_centered * o_centered).sum() / denominator)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their average rank."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def simulation_sweep_examples(
    workloads: Sequence[Any],
    knob_grid: Sequence[dict[str, float]],
    *,
    strategy: str = "segmentation",
    model_name: str = "apm",
    column_size: int = 20_000,
    domain_size: int = 200_000,
    seed: int | None = 17,
) -> list[TrainingExample]:
    """Offline training sweep through the paper's simulation runner.

    Replays every workload under every knob setting in ``knob_grid`` (dicts
    with ``apm_m_min`` / ``apm_m_max``) through
    :func:`repro.simulation.runner.run_single` — the same engine-accurate
    accounting ``run_grid`` uses — and returns one example per (workload,
    setting) with the observed mean per-query IO bytes and mean per-query
    selection+adaptation seconds.
    """
    from repro.simulation.runner import run_single
    from repro.workloads.generators import make_column

    values = make_column(column_size, domain_size, seed=seed)
    examples: list[TrainingExample] = []
    for workload in workloads:
        domain_low, domain_high = workload.domain
        features = workload_feature_vector(
            [query.low for query in workload.queries],
            [query.high for query in workload.queries],
            domain_low=domain_low,
            domain_high=domain_high,
        )
        for knobs in knob_grid:
            result = run_single(
                workload,
                strategy=strategy,
                model_name=model_name,
                values=values.copy(),
                column_size=column_size,
                domain_size=domain_size,
                m_min=knobs["apm_m_min"],
                m_max=knobs["apm_m_max"],
                seed=seed,
            )
            reads = result.reads_series()
            seconds = [
                record.selection_seconds + record.adaptation_seconds
                for record in result.log
            ]
            examples.append(TrainingExample(
                knobs=dict(knobs),
                workload=features,
                io_bytes=float(np.mean(reads)) if reads else 0.0,
                latency_s=float(np.mean(seconds)) if seconds else None,
            ))
    return examples
