"""The typed knob registry: one surface over the engine's scattered tunables.

Every adaptive layer grew its own constants — the APM split thresholds in
:mod:`repro.core.models`, the replication storage budget in
:mod:`repro.core.replication`, the admission window and queue caps in
:mod:`repro.server.admission`, the routing thresholds in
:mod:`repro.cluster.router`.  A :class:`KnobSpec` wraps each one with its
layer, bounds, step and read/apply callbacks; a :class:`KnobRegistry`
collects them behind ``knobs()`` / ``set_knobs()`` so the what-if estimator
and the online controller (and the ADMIN ``set_knobs`` wire op) can treat
"the engine's configuration" as one typed vector.

Thread-safety: applying an engine-layer knob mutates live adaptive state, so
``set_knobs`` must run on the thread that owns the engine — the server
dispatches it on its single engine worker exactly like any other admin op.
Admission-layer knobs are plain attribute stores read afresh by the flush
loop each iteration, so crossing from the worker thread is benign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.util.units import KB

__all__ = [
    "KnobRegistry",
    "KnobSpec",
    "admission_knobs",
    "database_knobs",
    "router_knobs",
    "server_knob_registry",
]


@dataclass(frozen=True)
class KnobSpec:
    """One tunable: identity, bounds, granularity and live accessors.

    ``read`` returns the current live value; ``apply`` writes a validated
    value into the owning component.  ``step`` is the controller's move
    granularity — one proposed move changes the knob by ``±step`` (clamped
    into ``[low, high]``).
    """

    name: str
    layer: str  # "storage-model" | "engine" | "cluster" | "server"
    default: float
    low: float
    high: float
    step: float
    read: Callable[[], float]
    apply: Callable[[float], None]
    integer: bool = False
    description: str = ""

    def coerce(self, value: Any) -> float:
        """Validate ``value`` against the bounds (and integrality)."""
        try:
            value = float(value)
        except (TypeError, ValueError):
            raise ValueError(f"knob {self.name}: not a number: {value!r}") from None
        if not self.low <= value <= self.high:
            raise ValueError(
                f"knob {self.name}: {value:g} outside [{self.low:g}, {self.high:g}]"
            )
        return float(int(round(value))) if self.integer else value

    def clamp(self, value: float) -> float:
        """``value`` forced into bounds (for controller-proposed moves)."""
        value = min(max(float(value), self.low), self.high)
        return float(int(round(value))) if self.integer else value

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "layer": self.layer,
            "default": self.default,
            "low": self.low,
            "high": self.high,
            "step": self.step,
            "integer": self.integer,
            "value": float(self.read()),
            "description": self.description,
        }


class KnobRegistry:
    """An ordered collection of :class:`KnobSpec` plus cross-knob constraints."""

    def __init__(self) -> None:
        self._specs: dict[str, KnobSpec] = {}
        self._constraints: list[Callable[[dict[str, float]], None]] = []

    def register(self, spec: KnobSpec) -> KnobSpec:
        if spec.name in self._specs:
            raise ValueError(f"knob {spec.name!r} is already registered")
        self._specs[spec.name] = spec
        return spec

    def register_constraint(self, check: Callable[[dict[str, float]], None]) -> None:
        """Add a cross-knob validator called with the *prospective* full vector."""
        self._constraints.append(check)

    def merge(self, other: "KnobRegistry") -> "KnobRegistry":
        """Fold another registry's specs and constraints into this one."""
        for spec in other.specs():
            self.register(spec)
        self._constraints.extend(other._constraints)
        return self

    def specs(self) -> list[KnobSpec]:
        return list(self._specs.values())

    def names(self) -> list[str]:
        return list(self._specs)

    def spec(self, name: str) -> KnobSpec:
        try:
            return self._specs[name]
        except KeyError:
            known = ", ".join(self._specs) or "<none>"
            raise KeyError(f"unknown knob {name!r} (known: {known})") from None

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def knobs(self) -> dict[str, float]:
        """The current live value of every registered knob."""
        return {name: float(spec.read()) for name, spec in self._specs.items()}

    def set_knobs(self, values: dict[str, Any]) -> dict[str, float]:
        """Validate and apply ``values``; returns the new full knob vector.

        All-or-nothing: every value is validated (bounds, integrality and
        cross-knob constraints, e.g. ``apm_m_min < apm_m_max``) against the
        prospective merged vector *before* anything is applied, so a rejected
        batch leaves the engine untouched.
        """
        coerced = {
            name: self.spec(name).coerce(value) for name, value in values.items()
        }
        prospective = self.knobs()
        prospective.update(coerced)
        for check in self._constraints:
            check(prospective)
        for name, value in coerced.items():
            self._specs[name].apply(value)
        return self.knobs()

    def validate(self, values: dict[str, Any]) -> bool:
        """Whether ``values`` would be accepted by :meth:`set_knobs`."""
        try:
            coerced = {
                name: self.spec(name).coerce(value) for name, value in values.items()
            }
            prospective = self.knobs()
            prospective.update(coerced)
            for check in self._constraints:
                check(prospective)
        except (KeyError, ValueError):
            return False
        return True

    def snapshot(self) -> dict[str, float]:
        """The current vector, suitable for a later :meth:`set_knobs` rollback."""
        return self.knobs()

    def table(self) -> list[dict[str, Any]]:
        """Per-knob description rows (the README table / ``knobs`` admin op)."""
        return [spec.describe() for spec in self._specs.values()]


# ---------------------------------------------------------------------------
# Collectors: one builder per layer
# ---------------------------------------------------------------------------


def _apm_models(database: Any) -> list[Any]:
    """Every APM-family model instance managed by ``database`` (in BPM order)."""
    from repro.core.models import AdaptivePageModel

    return [
        handle.adaptive.model
        for handle in database.bpm.handles()
        if isinstance(getattr(handle.adaptive, "model", None), AdaptivePageModel)
    ]


def _budgeted_columns(database: Any) -> list[Any]:
    """Every managed replication column with a finite storage budget."""
    return [
        handle.adaptive
        for handle in database.bpm.handles()
        if getattr(handle.adaptive, "storage_budget", None) is not None
    ]


def _snapshot_capable(database: Any) -> bool:
    """Whether any managed column can serve snapshot-isolated reads."""
    return any(
        getattr(handle.adaptive, "supports_snapshot_reads", False)
        for handle in database.bpm.handles()
    )


def database_knobs(database: Any) -> KnobRegistry:
    """The storage-model knobs of one engine's managed adaptive columns.

    Knobs appear only when a column that carries them is registered: the APM
    bound pair when any managed column runs an APM-family split model, the
    storage budget when any replication column was given one.  A knob applies
    to *every* matching column — the registry models the engine's policy, not
    one column's — and takes effect on the next selection (no plan-cache
    interaction: compiled plans never bake the thresholds in).
    """
    registry = KnobRegistry()
    models = _apm_models(database)
    if models:
        lead = models[0]

        def _set_m_min(value: float, models=models) -> None:
            for model in models:
                model.m_min = float(value)

        def _set_m_max(value: float, models=models) -> None:
            for model in models:
                model.m_max = float(value)

        registry.register(KnobSpec(
            name="apm_m_min",
            layer="storage-model",
            default=3 * KB,
            low=0.25 * KB,
            high=64 * KB,
            step=0.5 * KB,
            read=lambda lead=lead: lead.m_min,
            apply=_set_m_min,
            description="APM lower split threshold: segments are never split "
                        "below this size (smaller = finer layout, less "
                        "over-read, more segments)",
        ))
        registry.register(KnobSpec(
            name="apm_m_max",
            layer="storage-model",
            default=12 * KB,
            low=1 * KB,
            high=256 * KB,
            step=2 * KB,
            read=lambda lead=lead: lead.m_max,
            apply=_set_m_max,
            description="APM upper split threshold: segments larger than this "
                        "always split when touched",
        ))

        def _ordered(values: dict[str, float]) -> None:
            if values["apm_m_min"] >= values["apm_m_max"]:
                raise ValueError(
                    f"apm_m_min must stay below apm_m_max "
                    f"({values['apm_m_min']:g} >= {values['apm_m_max']:g})"
                )

        registry.register_constraint(_ordered)

    budgeted = _budgeted_columns(database)
    if budgeted:
        lead_column = budgeted[0]
        floor = max(column.total_bytes for column in budgeted)

        def _set_budget(value: float, columns=budgeted) -> None:
            for column in columns:
                column.storage_budget = max(float(value), column.total_bytes)

        registry.register(KnobSpec(
            name="replication_storage_budget",
            layer="storage-model",
            default=float(lead_column.storage_budget),
            low=float(floor),
            high=float(floor) * 4.0,
            # Budget moves only matter at working-set granularity: a step a
            # quarter of the column makes one controller move change eviction
            # behaviour, instead of 50 imperceptible nudges to double it.
            step=max(float(floor) * 0.25, 32 * KB),
            read=lambda lead_column=lead_column: float(lead_column.storage_budget),
            apply=_set_budget,
            description="replication storage budget (paper §5 future work): "
                        "total replica bytes before LRU release kicks in "
                        "(larger = fewer evictions/rematerializations, more "
                        "memory)",
        ))

    if _snapshot_capable(database):

        def _set_read_workers(value: float) -> None:
            database.read_workers = int(value)

        registry.register(KnobSpec(
            name="read_workers",
            layer="engine",
            default=1,
            low=1,
            high=8,
            step=1,
            integer=True,
            read=lambda: float(database.read_workers),
            apply=_set_read_workers,
            description="snapshot-reader pool size: how many threads "
                        "execute_wave fans read-only members across against "
                        "pinned index snapshots (1 = fully serialized; the "
                        "adaptation path always stays single-threaded)",
        ))
    return registry


def router_knobs(router: Any) -> KnobRegistry:
    """The routing knobs of a :class:`~repro.cluster.Router`."""

    def _set_threshold(value: float) -> None:
        router.hot_query_threshold = float(value)

    def _set_alpha(value: float) -> None:
        router.ewma_alpha = float(value)

    registry = KnobRegistry()
    registry.register(KnobSpec(
        name="hot_query_threshold",
        layer="cluster",
        default=0.5,
        low=0.05,
        high=1.0,
        step=0.05,
        read=lambda: router.hot_query_threshold,
        apply=_set_threshold,
        description="traffic share above which a query cluster spreads "
                    "round-robin over every replica instead of sticking to "
                    "its best-fit home",
    ))
    registry.register(KnobSpec(
        name="router_ewma_alpha",
        layer="cluster",
        default=0.2,
        low=0.01,
        high=0.9,
        step=0.05,
        read=lambda: router.ewma_alpha,
        apply=_set_alpha,
        description="EWMA decay of the observed cluster-by-replica cost model "
                    "(larger = faster adaptation, noisier routing)",
    ))
    return registry


def admission_knobs(admission: Any) -> KnobRegistry:
    """The server-layer knobs of an :class:`~repro.server.AdmissionController`.

    The flush loop re-reads these attributes every iteration, so a mutation
    takes effect on the very next wave without restarting the server.
    """

    def _set_window(value: float) -> None:
        admission.batch_window_us = float(value)

    def _set_inflight(value: float) -> None:
        admission.max_inflight = int(value)

    def _set_wave(value: float) -> None:
        admission.max_wave = int(value)

    registry = KnobRegistry()
    registry.register(KnobSpec(
        name="batch_window_us",
        layer="server",
        default=250.0,
        low=0.0,
        high=10_000.0,
        step=50.0,
        read=lambda: admission.batch_window_us,
        apply=_set_window,
        description="how long the first request of a wave waits for company "
                    "(larger = bigger waves/throughput, worse idle latency)",
    ))
    registry.register(KnobSpec(
        name="max_inflight",
        layer="server",
        default=1024,
        low=1,
        high=65_536,
        step=64,
        integer=True,
        read=lambda: admission.max_inflight,
        apply=_set_inflight,
        description="bounded-queue backpressure: queued requests before "
                    "submissions error or wait",
    ))
    registry.register(KnobSpec(
        name="max_wave",
        layer="server",
        default=256,
        low=1,
        high=4_096,
        step=32,
        integer=True,
        read=lambda: admission.max_wave,
        apply=_set_wave,
        description="batch-size cap: the most members one wave may carry "
                    "(per replica)",
    ))
    return registry


def server_knob_registry(
    engine: Any,
    *,
    admission: Any | None = None,
    router: Any | None = None,
) -> KnobRegistry:
    """The full knob surface of one server: engine + admission + router.

    ``engine`` may be a :class:`~repro.engine.database.Database` or a
    :class:`~repro.cluster.Router` (whose storage-model knobs then fan out to
    every routable replica so the fleet's policy moves in lockstep).
    """
    registry = KnobRegistry()
    replicas = getattr(engine, "replicas", None)
    if replicas is not None:  # a Router: fan engine knobs over the fleet
        fleet = KnobRegistry()
        for replica in replicas:
            if not replica.health.routable:
                continue
            for spec in database_knobs(replica.database).specs():
                if spec.name in fleet:
                    # Chain the lead's apply with this replica's.
                    lead = fleet.spec(spec.name)
                    chained = _chain_apply(lead.apply, spec.apply)
                    fleet._specs[spec.name] = KnobSpec(
                        name=lead.name, layer=lead.layer, default=lead.default,
                        low=lead.low, high=lead.high, step=lead.step,
                        read=lead.read, apply=chained, integer=lead.integer,
                        description=lead.description,
                    )
                else:
                    fleet.register(spec)
        if any(spec.name == "apm_m_min" for spec in fleet.specs()):
            fleet.register_constraint(_apm_order_constraint)
        registry.merge(fleet)
        if router is None:
            router = engine
    else:
        registry.merge(database_knobs(engine))
    if router is not None:
        registry.merge(router_knobs(router))
    if admission is not None:
        registry.merge(admission_knobs(admission))
    return registry


def _apm_order_constraint(values: dict[str, float]) -> None:
    if values["apm_m_min"] >= values["apm_m_max"]:
        raise ValueError(
            f"apm_m_min must stay below apm_m_max "
            f"({values['apm_m_min']:g} >= {values['apm_m_max']:g})"
        )


def _chain_apply(
    first: Callable[[float], None], second: Callable[[float], None]
) -> Callable[[float], None]:
    def apply(value: float) -> None:
        first(value)
        second(value)

    return apply
