"""Self-tuning knobs: what-if estimation and online retuning under drift.

The paper's adaptive layer reacts per query, but the knobs that govern it —
APM split thresholds, the replication storage budget, the admission batch
window, the router's hot-query threshold — were hand-picked constants.
This package turns them into one tunable surface:

``knobs``
    A typed registry (:class:`KnobSpec`) unifying the scattered tunables of
    :mod:`repro.core.models`, :mod:`repro.core.replication`,
    :mod:`repro.server.admission` and :mod:`repro.cluster.router` behind one
    ``knobs()`` / ``set_knobs()`` surface.
``whatif``
    An IWEK-style interpretable what-if estimator: a small bagged linear
    regressor over (knob values, workload features) predicting IO bytes and
    warm latency per knob setting, with a per-prediction uncertainty.
``drift``
    Workload drift detection from query-bound histograms or the router's
    traffic-share EWMAs.
``controller``
    The online controller (KnobCF shape): detect drift, propose a knob move,
    apply it only when the predicted gain clears the uncertainty band, and
    roll back when the observed cost regresses.
"""

from repro.tuning.controller import TuningController
from repro.tuning.drift import DriftDetector, DriftReport
from repro.tuning.knobs import (
    KnobRegistry,
    KnobSpec,
    admission_knobs,
    database_knobs,
    router_knobs,
    server_knob_registry,
)
from repro.tuning.whatif import (
    Prediction,
    TrainingExample,
    WhatIfEstimator,
    rank_correlation,
    simulation_sweep_examples,
    workload_feature_vector,
)

__all__ = [
    "DriftDetector",
    "DriftReport",
    "KnobRegistry",
    "KnobSpec",
    "Prediction",
    "TrainingExample",
    "TuningController",
    "WhatIfEstimator",
    "admission_knobs",
    "database_knobs",
    "rank_correlation",
    "router_knobs",
    "server_knob_registry",
    "simulation_sweep_examples",
    "workload_feature_vector",
]
