"""Workload drift detection: has the query mix moved since we last tuned?

Two complementary signals, one detector:

* **Query-bound histograms** — every observed range query drops its center
  into a fixed-bin histogram over the attribute domain; once a window fills,
  its normalized histogram is compared to the reference window by total
  variation distance.  This is the single-engine path (the controller feeds
  it the bounds it observes).
* **Router traffic shares** — behind a fleet, the router already maintains
  per-cluster traffic-share EWMAs (:attr:`Router._shares` via
  ``router_stats()["shares"]``); :meth:`DriftDetector.observe_shares`
  compares the live share vector to the one captured at the last drift
  event.  This is the KnobCF-shaped controller's scale-out drift source.

Both scores live in ``[0, 1]`` (0 = identical mix, 1 = disjoint), so one
``threshold`` governs either signal.  On a confirmed drift the detector
re-anchors: the drifted window becomes the new reference, so a persistent
new mix fires exactly once until the mix moves again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

__all__ = ["DriftDetector", "DriftReport"]


@dataclass(frozen=True)
class DriftReport:
    """One drift check: the verdict, its score and what was compared."""

    drifted: bool
    score: float
    threshold: float
    source: str  # "bounds" | "shares" | "none"
    reference_queries: int
    window_queries: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "drifted": self.drifted,
            "score": self.score,
            "threshold": self.threshold,
            "source": self.source,
            "reference_queries": self.reference_queries,
            "window_queries": self.window_queries,
        }


class DriftDetector:
    """Total-variation drift detection over query centers or traffic shares."""

    def __init__(
        self,
        *,
        domain: tuple[float, float] = (0.0, 1.0),
        window: int = 64,
        bins: int = 16,
        threshold: float = 0.35,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.domain = (float(domain[0]), float(domain[1]))
        self.window = int(window)
        self.bins = int(bins)
        self.threshold = float(threshold)
        self._current = np.zeros(self.bins)
        self._current_count = 0
        self._reference: np.ndarray | None = None
        self._reference_count = 0
        self._reference_shares: np.ndarray | None = None
        self._drift_events = 0
        self._checks = 0
        self._last_report: DriftReport | None = None

    # -- signal ingestion -----------------------------------------------------

    def observe(self, low: float, high: float) -> None:
        """Drop one range query's center into the current window histogram."""
        domain_low, domain_high = self.domain
        span = max(domain_high - domain_low, 1e-12)
        center = ((float(low) + float(high)) * 0.5 - domain_low) / span
        index = int(np.clip(center * self.bins, 0, self.bins - 1))
        self._current[index] += 1.0
        self._current_count += 1

    def observe_many(self, bounds: Sequence[tuple[float, float]]) -> None:
        for low, high in bounds:
            self.observe(low, high)

    # -- the verdict ----------------------------------------------------------

    @property
    def window_full(self) -> bool:
        return self._current_count >= self.window

    def check(self, *, shares: Sequence[float] | None = None) -> DriftReport:
        """Compare the current window (or ``shares``) to the reference.

        With ``shares`` given (the router's live per-cluster traffic-share
        EWMAs) the share vector is the signal and the histogram path is
        bypassed.  Without it, the check is a no-op verdict until the
        current window has ``window`` observations; a full window either
        becomes the first reference or is scored against it.  Either way a
        drift verdict re-anchors the reference on the drifted mix.
        """
        self._checks += 1
        if shares is not None:
            report = self._check_shares(np.asarray(shares, dtype=np.float64))
        else:
            report = self._check_bounds()
        if report.drifted:
            self._drift_events += 1
        self._last_report = report
        return report

    def _check_bounds(self) -> DriftReport:
        if not self.window_full:
            return DriftReport(
                False, 0.0, self.threshold, "none",
                self._reference_count, self._current_count,
            )
        window = self._current / self._current.sum()
        if self._reference is None:
            self._anchor(window)
            return DriftReport(
                False, 0.0, self.threshold, "bounds",
                self._reference_count, 0,
            )
        score = 0.5 * float(np.abs(window - self._reference).sum())
        drifted = score > self.threshold
        count = self._current_count
        if drifted:
            self._anchor(window)
        else:
            # Fold the window into the reference (slow mix evolution is not
            # drift) and start a fresh window.
            self._reference = 0.75 * self._reference + 0.25 * window
            self._reference = self._reference / self._reference.sum()
            self._current = np.zeros(self.bins)
            self._current_count = 0
        return DriftReport(
            drifted, score, self.threshold, "bounds",
            self._reference_count, count,
        )

    def _check_shares(self, shares: np.ndarray) -> DriftReport:
        total = float(shares.sum())
        normalized = shares / total if total > 0 else shares
        if self._reference_shares is None or len(self._reference_shares) != len(
            normalized
        ):
            self._reference_shares = normalized.copy()
            return DriftReport(False, 0.0, self.threshold, "shares", len(normalized), 0)
        score = 0.5 * float(np.abs(normalized - self._reference_shares).sum())
        drifted = score > self.threshold
        if drifted:
            self._reference_shares = normalized.copy()
        return DriftReport(
            drifted, score, self.threshold, "shares",
            len(normalized), len(normalized),
        )

    def _anchor(self, window: np.ndarray) -> None:
        self._reference = window.copy()
        self._reference_count = self._current_count
        self._current = np.zeros(self.bins)
        self._current_count = 0

    # -- observability --------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "bins": self.bins,
            "threshold": self.threshold,
            "checks": self._checks,
            "drift_events": self._drift_events,
            "window_queries": self._current_count,
            "has_reference": self._reference is not None
            or self._reference_shares is not None,
            "last": self._last_report.as_dict() if self._last_report else None,
        }
