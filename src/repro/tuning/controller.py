"""The online tuning controller: drift-gated, uncertainty-gated knob moves.

The KnobCF shape, grown over this engine's substrate:

1. **Observe.**  Every query (or every admission wave) reports its bounds
   and its observed cost — IO bytes from the adaptive accountants, or warm
   latency.  Observations aggregate into fixed-size windows; each completed
   window becomes a training example for the what-if estimator, so the model
   keeps learning the live engine.
2. **Detect.**  The :class:`~repro.tuning.drift.DriftDetector` watches the
   window stream (single engine) or the router's traffic-share EWMAs
   (fleet).  No drift, no tuning — a stable workload keeps its knobs.
3. **Propose.**  On drift, every registered knob offers two candidate moves
   (``±step``, clamped, cross-validated); the estimator prices each against
   the current workload features and the best predicted objective wins.
4. **Gate.**  The move is applied only when its predicted gain clears the
   estimator's own uncertainty band (``gain > kappa * std``) *and* a
   minimum relative-gain floor — an uncertain model tunes nothing.
5. **Verify or roll back.**  The next window(s) run under the new knobs as
   a trial.  Observed cost regressing beyond tolerance restores the
   pre-move snapshot; an improvement commits the move and lets the
   controller keep climbing while gains persist.

Everything the controller does is observable through
:meth:`TuningController.tuning_stats` (served over the wire by the ADMIN
``tuning_stats`` op).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

import numpy as np

from repro.tuning.drift import DriftDetector
from repro.tuning.knobs import KnobRegistry
from repro.tuning.whatif import (
    Prediction,
    TrainingExample,
    WhatIfEstimator,
    workload_feature_vector,
)

__all__ = ["TuningController"]

#: Controller states (the README's state diagram).
IDLE = "idle"
TRIAL = "trial"


class TuningController:
    """Propose → gate → trial → commit/rollback over one knob registry.

    Parameters
    ----------
    registry:
        The knob surface to tune (see :mod:`repro.tuning.knobs`).
    estimator:
        The what-if model.  May start unfitted; the controller trains it
        from completed observation windows and refits incrementally.  Knobs
        outside ``estimator.knob_names`` are surfaced but never moved.
    detector:
        Drift detection; defaults to a bounds-histogram detector over
        ``domain`` with the controller's window size.
    domain:
        Attribute domain for feature normalization.
    objective:
        ``"io_bytes"`` (default) or ``"latency"`` — which predicted cost the
        proposal minimizes and which observed cost gates the trial.
    window:
        Queries per observation window.
    kappa:
        Uncertainty gate: apply only when ``gain > kappa * std``.
    min_gain_fraction:
        Relative-gain floor: predicted gain must also exceed this fraction
        of the predicted baseline cost.
    regress_tolerance:
        Rollback trigger: observed trial cost above
        ``baseline * (1 + tolerance)`` restores the snapshot.
    cooldown_windows:
        Windows to sit out after a rollback or rejected proposal.
    refit_every:
        Refit the estimator after this many fresh examples.
    max_examples:
        Online-example cap (oldest dropped first; offline sweep examples
        count too).
    """

    def __init__(
        self,
        registry: KnobRegistry,
        estimator: WhatIfEstimator,
        *,
        detector: DriftDetector | None = None,
        domain: tuple[float, float] = (0.0, 1.0),
        objective: str = "io_bytes",
        window: int = 64,
        kappa: float = 1.0,
        min_gain_fraction: float = 0.02,
        regress_tolerance: float = 0.10,
        cooldown_windows: int = 2,
        refit_every: int = 4,
        max_examples: int = 512,
        history: int = 64,
    ) -> None:
        if objective not in ("io_bytes", "latency"):
            raise ValueError(f"objective must be io_bytes or latency, got {objective!r}")
        if window < 4:
            raise ValueError(f"window must be >= 4, got {window}")
        self.registry = registry
        self.estimator = estimator
        self.domain = (float(domain[0]), float(domain[1]))
        self.objective = objective
        self.window = int(window)
        self.kappa = float(kappa)
        self.min_gain_fraction = float(min_gain_fraction)
        self.regress_tolerance = float(regress_tolerance)
        self.cooldown_windows = int(cooldown_windows)
        self.refit_every = int(refit_every)
        self.max_examples = int(max_examples)
        self.detector = detector or DriftDetector(
            domain=self.domain, window=self.window
        )

        self.state = IDLE
        self._bounds: list[tuple[float, float]] = []
        self._cost_sum = 0.0
        self._latency_sum = 0.0
        self._count = 0
        self._last_features: np.ndarray | None = None
        self._last_window_cost: float | None = None
        self._baseline_cost: float | None = None
        self._snapshot: dict[str, float] | None = None
        self._pending_move: dict[str, Any] | None = None
        self._cooldown = 0
        self._climbing = False
        self._unfitted_examples = 0
        self._windows = 0
        self._moves: deque[dict[str, Any]] = deque(maxlen=int(history))
        self._counters = {
            "observed_queries": 0,
            "windows": 0,
            "drift_events": 0,
            "proposals": 0,
            "applied": 0,
            "committed": 0,
            "rollbacks": 0,
            "rejected_uncertain": 0,
            "rejected_no_gain": 0,
            "skipped_untrained": 0,
            "refits": 0,
        }

    # -- observation ----------------------------------------------------------

    def observe(
        self,
        low: float,
        high: float,
        cost: float,
        *,
        latency_s: float | None = None,
    ) -> None:
        """Feed one executed query: its bounds and its observed cost.

        ``cost`` is whatever the caller accounts per query — typically the
        adaptive accountant's IO-bytes delta.  Every ``window`` observations
        the controller completes a window (train, detect, maybe move).
        """
        self._counters["observed_queries"] += 1
        self._bounds.append((float(low), float(high)))
        self._cost_sum += float(cost)
        if latency_s is not None:
            self._latency_sum += float(latency_s)
        self._count += 1
        self.detector.observe(low, high)
        if self._count >= self.window:
            bounds, self._bounds = self._bounds, []
            cost_mean = self._cost_sum / self._count
            latency_mean = (
                self._latency_sum / self._count if self._latency_sum > 0.0 else None
            )
            self._cost_sum = self._latency_sum = 0.0
            self._count = 0
            self._complete_window(bounds, cost_mean, latency_mean)

    def observe_window(
        self,
        bounds: Sequence[tuple[float, float]],
        cost_per_query: float,
        *,
        latency_s: float | None = None,
        shares: Sequence[float] | None = None,
    ) -> None:
        """Feed one pre-aggregated window (the server's pulse-task path).

        ``shares`` — the router's live per-cluster traffic shares — switches
        drift detection to the share-vector signal for this window.
        """
        if not bounds:
            return
        self.detector.observe_many(bounds)
        self._counters["observed_queries"] += len(bounds)
        self._complete_window(
            list(bounds), float(cost_per_query), latency_s, shares=shares
        )

    # -- the per-window loop ---------------------------------------------------

    def _complete_window(
        self,
        bounds: list[tuple[float, float]],
        cost: float,
        latency_s: float | None,
        *,
        shares: Sequence[float] | None = None,
    ) -> None:
        self._windows += 1
        self._counters["windows"] += 1
        features = workload_feature_vector(
            [low for low, _ in bounds],
            [high for _, high in bounds],
            domain_low=self.domain[0],
            domain_high=self.domain[1],
        )
        self._last_features = features
        self._train(features, cost, latency_s)

        if self.state == TRIAL:
            self._judge_trial(cost)
            self._last_window_cost = cost
            return
        self._last_window_cost = cost

        report = self.detector.check(shares=shares)
        if report.drifted:
            self._counters["drift_events"] += 1
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if report.drifted or self._climbing:
            self.maybe_propose()

    def _train(
        self, features: np.ndarray, cost: float, latency_s: float | None
    ) -> None:
        """Fold the window into the estimator (bounded, periodically refit)."""
        knobs = self.registry.knobs()
        self.estimator.add(TrainingExample(
            knobs=knobs, workload=features, io_bytes=cost, latency_s=latency_s
        ))
        if len(self.estimator.examples) > self.max_examples:
            del self.estimator.examples[: -self.max_examples]
        self._unfitted_examples += 1
        if self._unfitted_examples >= self.refit_every and len(
            self.estimator.examples
        ) >= 3:
            self.estimator.fit()
            self._counters["refits"] += 1
            self._unfitted_examples = 0

    # -- proposal -------------------------------------------------------------

    def maybe_propose(self, *, force: bool = False) -> dict[str, Any] | None:
        """Price every one-knob move and apply the best if it clears the gate.

        Returns the applied move record, or ``None`` (not trained, no
        candidate, or gated out).  ``force=True`` skips the drift/cooldown
        preconditions — the callers' loop already checked them; tests and
        operators use it to trigger a tuning step directly.
        """
        if self.state == TRIAL:
            return None
        if not self.estimator.trained:
            self._counters["skipped_untrained"] += 1
            return None
        if self._last_features is None:
            return None
        if not force and self._cooldown > 0:
            return None
        features = self._last_features
        current = self.registry.knobs()
        movable = [
            name for name in self.estimator.knob_names if name in self.registry
        ]
        if not movable:
            return None
        baseline = self._objective(self.estimator.predict(current, features))[0]
        self._counters["proposals"] += 1
        best: dict[str, Any] | None = None
        for name in movable:
            spec = self.registry.spec(name)
            for direction in (-1.0, 1.0):
                candidate = spec.clamp(current[name] + direction * spec.step)
                if candidate == current[name]:
                    continue
                if not self.registry.validate({name: candidate}):
                    continue
                predicted, std = self._objective(
                    self.estimator.predict({**current, name: candidate}, features)
                )
                if best is None or predicted < best["predicted"]:
                    best = {
                        "knob": name,
                        "from": current[name],
                        "to": candidate,
                        "predicted": predicted,
                        "uncertainty": std,
                    }
        if best is None:
            self._climbing = False
            return None
        gain = baseline - best["predicted"]
        best["predicted_baseline"] = baseline
        best["predicted_gain"] = gain
        if gain <= self.min_gain_fraction * max(baseline, 1e-12):
            self._counters["rejected_no_gain"] += 1
            self._climbing = False
            self._record_move(best, outcome="rejected_no_gain")
            return None
        if gain <= self.kappa * best["uncertainty"]:
            self._counters["rejected_uncertain"] += 1
            self._climbing = False
            self._record_move(best, outcome="rejected_uncertain")
            return None
        self._snapshot = self.registry.snapshot()
        self.registry.set_knobs({best["knob"]: best["to"]})
        self._baseline_cost = self._last_window_cost
        self._pending_move = best
        self.state = TRIAL
        self._counters["applied"] += 1
        return best

    def _objective(self, prediction: Prediction) -> tuple[float, float]:
        if self.objective == "latency" and prediction.latency_s is not None:
            return prediction.latency_s, prediction.latency_std or 0.0
        return prediction.io_bytes, prediction.io_std

    # -- trial judgment -------------------------------------------------------

    def _judge_trial(self, observed_cost: float) -> None:
        move = self._pending_move or {}
        baseline = self._baseline_cost
        regressed = (
            baseline is not None
            and observed_cost > baseline * (1.0 + self.regress_tolerance)
        )
        move["observed_baseline"] = baseline
        move["observed_trial"] = observed_cost
        if regressed:
            assert self._snapshot is not None
            self.registry.set_knobs(self._snapshot)
            self._counters["rollbacks"] += 1
            self._cooldown = self.cooldown_windows
            self._climbing = False
            self._record_move(move, outcome="rolled_back")
        else:
            self._counters["committed"] += 1
            self._climbing = True  # keep climbing while moves keep paying off
            self._record_move(move, outcome="committed")
        self.state = IDLE
        self._snapshot = None
        self._pending_move = None
        self._baseline_cost = None

    def _record_move(self, move: dict[str, Any], *, outcome: str) -> None:
        self._moves.append({**move, "outcome": outcome, "window": self._windows})

    # -- observability --------------------------------------------------------

    def tuning_stats(self) -> dict[str, Any]:
        """The controller's full observable state (the ADMIN ``tuning_stats`` op)."""
        return {
            "state": self.state,
            "objective": self.objective,
            "window": self.window,
            "kappa": self.kappa,
            "counters": dict(self._counters),
            "knobs": self.registry.knobs(),
            "knob_table": self.registry.table(),
            "drift": self.detector.stats(),
            "estimator": self.estimator.stats(),
            "pending_move": dict(self._pending_move) if self._pending_move else None,
            "recent_moves": list(self._moves),
            "climbing": self._climbing,
            "cooldown_windows_left": self._cooldown,
        }
