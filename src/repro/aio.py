"""Async client entry point: ``connection = await repro.aio.connect(host, port)``.

The asyncio twin of :func:`repro.connect` — see :mod:`repro.api.aio` for the
classes and :mod:`repro.server` for the server this client speaks to.
"""

from repro.api.aio import (
    AsyncAdmin,
    AsyncConnection,
    AsyncCursor,
    AsyncPreparedStatement,
    RemoteResult,
    connect,
)

__all__ = [
    "AsyncAdmin",
    "AsyncConnection",
    "AsyncCursor",
    "AsyncPreparedStatement",
    "RemoteResult",
    "connect",
]
