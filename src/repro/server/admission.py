"""Batch admission control: N concurrent clients, one vectorized wave.

The controller is the heart of the server front-end.  Incoming bound selects
are not executed as they arrive: each is queued for at most ``batch_window_us``
microseconds so that requests from *other* connections can pile on, then the
whole wave is handed to :meth:`~repro.engine.database.Database.execute_wave`
on a single engine worker thread — same-column selects collapse into one
``select_many`` kernel pass (piggy-backed adaptation runs once per batch,
preserving the engine's single-threaded adaptation invariant), everything
else falls back to per-query prepared execution inside the same wave.

When the controller fronts a :class:`~repro.cluster.Router` it keeps **one
wave queue per replica**: each submission is routed to a replica up front
(load-aware, cluster best-fit), queued on that replica's shard, and each
flush window drains *one wave per replica*, executed concurrently — every
replica on its own worker thread, so the per-replica adaptation invariant
holds while the fleet proceeds in parallel.

Knobs (all first-class constructor parameters, surfaced over the wire in the
HELLO response and in :meth:`AdmissionController.stats`):

``batch_window_us``
    How long the first request of a wave may wait for company.  Larger
    windows grow waves (throughput) at the cost of idle-system latency;
    ``0`` flushes as soon as the event loop gets around to it.  Under
    backlog (``max_wave`` requests already queued) the window is skipped —
    waves run back-to-back.
``max_wave``
    Batch-size cap: the most members one wave may carry (per replica).
``max_inflight``
    Bounded-queue backpressure: when this many requests are queued, further
    submissions either raise :class:`~repro.api.exceptions.OperationalError`
    (``overflow="error"``) or await until the queue drains
    (``overflow="wait"``).
``max_inflight_per_connection``
    Per-connection fairness cap: one firehose client saturating its own cap
    awaits (its reads stop, TCP pushes back) while other connections keep
    submitting.  Waves are drained **round-robin across connections** — each
    round takes at most one request per connection — so an interactive
    client's query rides the very next wave no matter how deep the
    firehose's backlog is.

Fault tolerance (the wave-level half; the replica health machine lives in
:class:`~repro.cluster.Router`):

* member errors are **isolated** — waves execute with ``isolate=True``, so a
  poison member resolves its own future with its own exception while its
  wave-mates complete normally;
* a wave that dies with the *infrastructure*
  (:class:`~repro.api.exceptions.TransientError`: replica crash, injected
  fault, deadline timeout) is **retried with exponential backoff** on a
  failover replica, up to ``max_retries`` times — safe because waves carry
  bound range selects, idempotent above adaptation;
* ``wave_deadline_s`` bounds each wave attempt; a blown deadline quarantines
  the replica (its worker is presumed wedged and is abandoned — the engine
  call keeps running on the orphaned thread but its result is discarded);
* quarantined replicas are **rebuilt in the background**
  (``auto_rebuild=True``) via ``Router.rebuild_replica`` on a default-pool
  thread, then re-admitted to routing;
* :meth:`AdmissionController.drain` supports graceful shutdown: new
  submissions are refused while queued requests and in-flight waves run to
  completion.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import Executor
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Hashable

from repro.api.exceptions import (
    OperationalError,
    TransientError,
    translate_exception,
)


@dataclass(slots=True)
class _Request:
    """One admitted statement waiting for its wave."""

    connection_id: Hashable
    prepared: Any
    values: tuple[float, ...]
    future: asyncio.Future


@dataclass(slots=True)
class _Shard:
    """Per-replica wave queue: per-connection FIFOs plus the fairness ring."""

    queues: dict[Hashable, deque[_Request]] = field(default_factory=dict)
    ring: deque[Hashable] = field(default_factory=deque)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self.queues.values())


@dataclass
class AdmissionStats:
    """Counters of one controller (monotonic; ``pending`` is instantaneous)."""

    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected_overflow: int = 0
    waves: int = 0
    last_wave: int = 0
    max_wave_seen: int = 0
    wave_members: int = 0
    retries: int = 0
    wave_timeouts: int = 0
    member_failures: int = 0
    rebuilds_started: int = 0
    connections_seen: set = field(default_factory=set, repr=False)
    replica_waves: list[int] = field(default_factory=list)
    replica_members: list[int] = field(default_factory=list)

    def as_dict(
        self, pending: int, replica_pending: list[int] | None = None
    ) -> dict[str, Any]:
        payload = {
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected_overflow": self.rejected_overflow,
            "waves": self.waves,
            "last_wave": self.last_wave,
            "max_wave_seen": self.max_wave_seen,
            "mean_wave": self.wave_members / self.waves if self.waves else 0.0,
            "retries": self.retries,
            "wave_timeouts": self.wave_timeouts,
            "member_failures": self.member_failures,
            "rebuilds_started": self.rebuilds_started,
            "pending": pending,
        }
        if len(self.replica_waves) > 1:
            pending_list = replica_pending or [0] * len(self.replica_waves)
            payload["per_replica"] = [
                {
                    "waves": self.replica_waves[index],
                    "members": self.replica_members[index],
                    "mean_wave": (
                        self.replica_members[index] / self.replica_waves[index]
                        if self.replica_waves[index]
                        else 0.0
                    ),
                    "pending": pending_list[index],
                }
                for index in range(len(self.replica_waves))
            ]
        return payload


class AdmissionController:
    """Window-batched, fairness-aware admission onto one or N engine workers.

    The controller owns no sockets and no threads of its own: the server
    hands it an executor (one worker thread — the engine thread) and submits
    ``(connection_id, prepared_plan, bound_values)`` triples from its
    connection handlers.  ``submit`` returns an :class:`asyncio.Future` that
    resolves to the member's :class:`~repro.engine.result.QueryResult`.

    ``database`` may be a :class:`~repro.engine.database.Database` (one
    shard, executed on ``executor``) or a :class:`~repro.cluster.Router`
    (one shard per replica, each wave executed on its replica's own
    executor; routing happens at submit time via ``Router.route``).
    """

    def __init__(
        self,
        database: Any,
        *,
        executor: Executor,
        batch_window_us: float = 250.0,
        max_inflight: int = 1024,
        max_wave: int = 256,
        max_inflight_per_connection: int | None = None,
        overflow: str = "error",
        wave_deadline_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        auto_rebuild: bool = True,
        read_workers: int | None = None,
    ) -> None:
        if batch_window_us < 0:
            raise ValueError("batch_window_us must be >= 0")
        if max_inflight < 1 or max_wave < 1:
            raise ValueError("max_inflight and max_wave must be >= 1")
        if overflow not in ("error", "wait"):
            raise ValueError(f"overflow must be 'error' or 'wait', got {overflow!r}")
        if wave_deadline_s is not None and wave_deadline_s <= 0:
            raise ValueError("wave_deadline_s must be > 0 (or None)")
        if max_retries < 0 or retry_backoff_s < 0:
            raise ValueError("max_retries and retry_backoff_s must be >= 0")
        if read_workers is not None and read_workers < 1:
            raise ValueError("read_workers must be >= 1 (or None)")
        if max_inflight_per_connection is None:
            max_inflight_per_connection = max(1, max_inflight // 4)
        if max_inflight_per_connection < 1:
            raise ValueError("max_inflight_per_connection must be >= 1")
        self._database = database
        self._executor = executor
        # A Router quacks like a Database but routes and owns its replica
        # executors; duck-typed so repro.server has no hard cluster import.
        self._router = database if hasattr(database, "execute_wave_on") else None
        n_replicas = self._router.n_replicas if self._router is not None else 1
        self.batch_window_us = float(batch_window_us)
        self.max_inflight = int(max_inflight)
        self.max_wave = int(max_wave)
        self.max_inflight_per_connection = int(max_inflight_per_connection)
        self.overflow = overflow
        self.wave_deadline_s = wave_deadline_s
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.auto_rebuild = bool(auto_rebuild)
        #: Snapshot-reader fan-out per wave: ``None`` defers to each engine's
        #: own ``read_workers`` attribute (the knob the self-tuner moves);
        #: an explicit value overrides it for single-engine waves.
        self.read_workers = read_workers

        self._shards: list[_Shard] = [_Shard() for _ in range(n_replicas)]
        self._connection_pending: dict[Hashable, int] = {}
        self._pending = 0
        self._inflight_waves = 0
        self._running = False
        self._draining = False
        self._task: asyncio.Task | None = None
        self._rebuild_tasks: set[asyncio.Task] = set()
        self._wake = asyncio.Event()
        self._drained = asyncio.Condition()
        self.stats = AdmissionStats(
            replica_waves=[0] * n_replicas, replica_members=[0] * n_replicas
        )

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Start the flush loop on the running event loop."""
        if self._running:
            return
        self._running = True
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="repro-admission-flush"
        )

    async def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown, phase 1: refuse new work, finish what's queued.

        Flips the controller into draining mode (``submit`` raises
        :class:`OperationalError`), then waits for every queued request *and*
        every in-flight wave to resolve — completed waves still deliver their
        results to waiting clients, which is the point of draining instead of
        stopping.  Returns ``True`` when the backlog hit zero, ``False`` on
        timeout (a wedged wave past its deadline; :meth:`stop` will fail the
        leftovers).  Idempotent; the controller stays usable for ``stop``.
        """
        self._draining = True
        self._wake.set()

        async def settled() -> None:
            while self._pending > 0 or self._inflight_waves > 0:
                async with self._drained:
                    if self._pending == 0 and self._inflight_waves == 0:
                        return
                    await self._drained.wait()

        try:
            await asyncio.wait_for(settled(), timeout)
        except asyncio.TimeoutError:
            return False
        if self._rebuild_tasks:  # let background rebuilds finish re-admission
            await asyncio.gather(*self._rebuild_tasks, return_exceptions=True)
        return True

    async def stop(self) -> None:
        """Stop the flush loop and fail everything still queued."""
        if not self._running:
            return
        self._running = False
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        for task in list(self._rebuild_tasks):
            task.cancel()
        if self._rebuild_tasks:
            await asyncio.gather(*self._rebuild_tasks, return_exceptions=True)
            self._rebuild_tasks.clear()
        for shard in self._shards:
            for queue in shard.queues.values():
                while queue:
                    request = queue.popleft()
                    self._pending -= 1
                    if not request.future.done():
                        request.future.set_exception(
                            OperationalError("server is shutting down")
                        )
            shard.queues.clear()
            shard.ring.clear()
        self._connection_pending.clear()
        async with self._drained:
            self._drained.notify_all()

    @property
    def pending(self) -> int:
        """Requests currently queued (not yet drained into a wave)."""
        return self._pending

    @property
    def n_replicas(self) -> int:
        """Wave shards (1 for a single engine, N behind a Router)."""
        return len(self._shards)

    def replica_pending(self) -> list[int]:
        """Per-shard queue depth (instantaneous)."""
        return [len(shard) for shard in self._shards]

    def connection_pending(self, connection_id: Hashable) -> int:
        """Requests of one connection currently queued (across shards)."""
        return self._connection_pending.get(connection_id, 0)

    def forget_connection(self, connection_id: Hashable) -> None:
        """Drop a disconnected client's queues (its futures are cancelled)."""
        for shard in self._shards:
            queue = shard.queues.pop(connection_id, None)
            if queue:
                self._pending -= len(queue)
                for request in queue:
                    if not request.future.done():
                        request.future.cancel()
            try:
                shard.ring.remove(connection_id)
            except ValueError:
                pass
        self._connection_pending.pop(connection_id, None)

    def knobs(self) -> dict[str, Any]:
        """The admission knobs, as advertised in the HELLO response."""
        return {
            "batch_window_us": self.batch_window_us,
            "max_inflight": self.max_inflight,
            "max_wave": self.max_wave,
            "max_inflight_per_connection": self.max_inflight_per_connection,
            "overflow": self.overflow,
            "wave_deadline_s": self.wave_deadline_s,
            "max_retries": self.max_retries,
            "retry_backoff_s": self.retry_backoff_s,
            "auto_rebuild": self.auto_rebuild,
            "read_workers": self.read_workers,
            "replicas": len(self._shards),
        }

    # -- submission -----------------------------------------------------------

    async def submit(
        self, connection_id: Hashable, prepared: Any, values: tuple[float, ...]
    ) -> asyncio.Future:
        """Queue one bound statement; the future resolves with its result.

        Applies the per-connection fairness cap (always awaited: the
        submitting handler stops reading, which is exactly the backpressure a
        firehose should feel) and the global ``max_inflight`` bound (policy
        per the ``overflow`` knob).  Behind a Router the statement is routed
        to its replica here, before queueing.
        """
        self._check_running()
        while self.connection_pending(connection_id) >= self.max_inflight_per_connection:
            await self._wait_drained()
        if self._pending >= self.max_inflight:
            if self.overflow == "error":
                self.stats.rejected_overflow += 1
                raise OperationalError(
                    f"admission queue full: {self._pending} requests in flight "
                    f"(max_inflight={self.max_inflight})"
                )
            while self._pending >= self.max_inflight:
                await self._wait_drained()
        values = tuple(values)
        shard_index = (
            self._router.route(prepared, values) if self._router is not None else 0
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = _Request(connection_id, prepared, values, future)
        shard = self._shards[shard_index]
        queue = shard.queues.get(connection_id)
        if queue is None:
            queue = deque()
            shard.queues[connection_id] = queue
        if not queue:
            shard.ring.append(connection_id)
        queue.append(request)
        self._pending += 1
        self._connection_pending[connection_id] = (
            self._connection_pending.get(connection_id, 0) + 1
        )
        self.stats.admitted += 1
        self.stats.connections_seen.add(connection_id)
        self._wake.set()
        return future

    def _check_running(self) -> None:
        if self._draining:
            raise OperationalError("server is draining; not accepting new requests")
        if not self._running:
            raise OperationalError("admission controller is not running")

    async def _wait_drained(self) -> None:
        async with self._drained:
            await self._drained.wait()
        self._check_running()

    # -- the flush loop -------------------------------------------------------

    async def _run(self) -> None:
        while self._running:
            await self._wake.wait()
            if not self._running:
                break
            if self._pending < self.max_wave and self.batch_window_us > 0:
                # The admission window: give the rest of the fleet a moment
                # to pile onto this wave.  Skipped under backlog — a full
                # wave is already waiting, so waves run back-to-back.
                await asyncio.sleep(self.batch_window_us / 1e6)
                if not self._running:
                    break
            waves = [
                (index, wave)
                for index in range(len(self._shards))
                for wave in (self._drain_wave(index),)
                if wave
            ]
            if self._pending == 0:
                self._wake.clear()
            if waves:
                # One wave per replica per window, executed concurrently —
                # each on its replica's own single worker thread.
                await asyncio.gather(
                    *(self._execute_wave(index, wave) for index, wave in waves)
                )
                async with self._drained:
                    self._drained.notify_all()

    def _drain_wave(self, shard_index: int) -> list[_Request]:
        """Up to ``max_wave`` requests of one shard, round-robin across connections."""
        shard = self._shards[shard_index]
        wave: list[_Request] = []
        while shard.ring and len(wave) < self.max_wave:
            connection_id = shard.ring.popleft()
            queue = shard.queues.get(connection_id)
            if not queue:
                continue
            request = queue.popleft()
            self._pending -= 1
            remaining = self._connection_pending.get(connection_id, 1) - 1
            if remaining > 0:
                self._connection_pending[connection_id] = remaining
            else:
                self._connection_pending.pop(connection_id, None)
            if queue:
                shard.ring.append(connection_id)
            if request.future.done():  # cancelled by a vanished client
                continue
            wave.append(request)
        return wave

    async def _execute_wave(self, shard_index: int, wave: list[_Request]) -> None:
        """One engine pass for the whole wave, retried across replicas on failure.

        Member errors come back *in-slot* from ``execute_wave(isolate=True)``
        and resolve only their own futures.  A wave-level failure is split by
        taxonomy: :class:`TransientError` (replica crash, injected fault,
        blown deadline) is retried with exponential backoff on a routable
        failover replica — waves carry idempotent bound selects, so replays
        are safe — while anything terminal fails the wave's members at once.
        """
        self.stats.waves += 1
        self.stats.last_wave = len(wave)
        self.stats.wave_members += len(wave)
        self.stats.max_wave_seen = max(self.stats.max_wave_seen, len(wave))
        self.stats.replica_waves[shard_index] += 1
        self.stats.replica_members[shard_index] += len(wave)
        payload = [(request.prepared, request.values) for request in wave]
        self._inflight_waves += 1
        try:
            target = shard_index
            attempt = 0
            while True:
                try:
                    results = await self._run_wave_once(target, payload)
                except asyncio.TimeoutError:
                    # The worker blew the wave deadline: presume it wedged,
                    # abandon the attempt (the engine call keeps running on
                    # the orphaned thread; its late result is discarded) and
                    # quarantine via the router's failure detector.
                    self.stats.wave_timeouts += 1
                    if self._router is not None:
                        self._router.record_wave_timeout(target)
                        self._maybe_rebuild(target)
                    exc: BaseException = TransientError(
                        f"wave deadline of {self.wave_deadline_s}s expired "
                        f"on replica {target}"
                    )
                    retry = self._retry_target(target, attempt)
                    if retry is None:
                        self._fail_wave(wave, exc)
                        return
                except TransientError as exc:
                    # execute_wave_on already recorded the failure.
                    if self._router is not None:
                        self._maybe_rebuild(target)
                    retry = self._retry_target(target, attempt)
                    if retry is None:
                        self._fail_wave(wave, exc)
                        return
                except Exception as exc:  # noqa: BLE001 - terminal wave failure
                    self._fail_wave(wave, translate_exception(exc))
                    return
                else:
                    for request, result in zip(wave, results):
                        if request.future.done():
                            continue
                        if isinstance(result, BaseException):
                            request.future.set_exception(translate_exception(result))
                            self.stats.failed += 1
                            self.stats.member_failures += 1
                        else:
                            request.future.set_result(result)
                            self.stats.completed += 1
                    return
                attempt += 1
                self.stats.retries += 1
                if self.retry_backoff_s > 0:
                    await asyncio.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
                target = retry
        finally:
            self._inflight_waves -= 1
            async with self._drained:
                self._drained.notify_all()

    async def _run_wave_once(
        self, target: int, payload: list[tuple[Any, tuple[float, ...]]]
    ) -> list[Any]:
        """One wave attempt on one replica's worker, under the wave deadline."""
        loop = asyncio.get_running_loop()
        if self._router is not None:
            call = loop.run_in_executor(
                self._router.executor(target),
                self._router.execute_wave_on,
                target,
                payload,
            )
        else:
            # ``readers`` is forwarded only when explicitly configured here:
            # the default (None) defers to the engine's own ``read_workers``
            # attribute — the knob the self-tuner moves — and keeps duck-typed
            # engine stand-ins working without the new keyword.
            keywords: dict[str, Any] = {"isolate": True}
            if self.read_workers is not None:
                keywords["readers"] = self.read_workers
            call = loop.run_in_executor(
                self._executor,
                partial(self._database.execute_wave, payload, **keywords),
            )
        if self.wave_deadline_s is None:
            return await call
        return await asyncio.wait_for(call, self.wave_deadline_s)

    def _retry_target(self, failed: int, attempt: int) -> int | None:
        """The replica for the next attempt, or ``None`` when out of retries."""
        if self._router is None or attempt >= self.max_retries:
            return None
        routable = self._router.healthy_indices()
        if not routable:
            return None
        survivors = [index for index in routable if index != failed] or routable
        return survivors[attempt % len(survivors)]

    def _fail_wave(self, wave: list[_Request], exc: BaseException) -> None:
        for request in wave:
            if not request.future.done():
                request.future.set_exception(exc)
        self.stats.failed += len(wave)

    def _maybe_rebuild(self, index: int) -> None:
        """Kick off a background rebuild of a quarantined replica, once."""
        if not self.auto_rebuild or self._router is None:
            return
        replica = self._router.replicas[index]
        if getattr(replica.health, "value", None) != "quarantined":
            return
        loop = asyncio.get_running_loop()
        task = loop.create_task(
            self._rebuild_off_loop(index),
            name=f"repro-rebuild-replica-{index}",
        )
        self.stats.rebuilds_started += 1
        self._rebuild_tasks.add(task)
        task.add_done_callback(self._rebuild_tasks.discard)

    async def _rebuild_off_loop(self, index: int) -> dict[str, Any]:
        """Run ``Router.rebuild_replica`` on a default-pool thread.

        The clone blocks on the donor's worker queue, so it must never run
        on the event loop itself.
        """
        return await asyncio.get_running_loop().run_in_executor(
            None, self._router.rebuild_replica, index
        )
