"""The asyncio server front-end: batch admission over one engine.

See :mod:`repro.server.server` for the server, :mod:`repro.server.admission`
for the batching/backpressure/fairness layer, and
:mod:`repro.server.protocol` for the wire format.  The matching async client
lives in :mod:`repro.aio`.
"""

from repro.server.admission import AdmissionController, AdmissionStats
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.server.server import ReproServer, serve

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "serve",
    "write_frame",
]
