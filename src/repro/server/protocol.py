"""The length-prefixed JSON wire protocol of the repro server.

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object with a ``"type"`` field.  The client
speaks first (HELLO) and correlates responses by echoing request ids — the
server may answer out of order across requests of *different* kinds, but
every response carries the ``id`` of the request it answers.

Client -> server frame types:

========== ==================================================================
``hello``       protocol handshake (``protocol`` must match)
``prepare``     lower a placeholder statement once; returns a statement id
``execute``     one statement: ``sql`` (literal), or ``sql``/``statement``
                plus ``params`` (bound — goes through batch admission)
``executemany`` one prepared shape, many bindings (each admitted separately,
                so bindings batch with *other* connections' queries too)
``admin``       DDL / bulk load / adaptive-strategy controls / stats
``close``       orderly shutdown of this connection
========== ==================================================================

Server -> client: ``hello``, ``prepared``, ``result`` and ``error`` (the
PEP 249 class name plus message — see
:func:`repro.api.exceptions.error_from_name`).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any

#: Bumped on incompatible frame changes; HELLO frames carry it.
PROTOCOL_VERSION = 1

#: A frame larger than this is a protocol violation, not a big result —
#: results are bounded by the engine's table sizes, not by the wire.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed frame: bad length, bad JSON, or a non-object payload."""


def _coerce(value: Any) -> Any:
    """JSON fallback: numpy scalars (and anything ``.item()``-able) unwrap."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


def encode_frame(payload: dict[str, Any]) -> bytes:
    """One wire frame: 4-byte length prefix + compact JSON."""
    body = json.dumps(payload, separators=(",", ":"), default=_coerce).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_frame(body: bytes) -> dict[str, Any]:
    """The payload of one frame body (without the length prefix)."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "type" not in payload:
        raise ProtocolError("frame payload must be a JSON object with a 'type' field")
    return payload


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """The next frame from a stream, or ``None`` on a clean EOF.

    EOF in the middle of a frame (header or body) raises
    :class:`ProtocolError` — the peer vanished mid-sentence.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed inside a frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame body") from exc
    return decode_frame(body)


def write_frame(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
    """Queue one frame on a stream writer (callers ``await writer.drain()``)."""
    writer.write(encode_frame(payload))
