"""The asyncio server front-end: many connections, one engine, batched waves.

:class:`ReproServer` listens on a TCP socket speaking the length-prefixed
JSON protocol of :mod:`repro.server.protocol` and multiplexes every client
over **one** engine :class:`~repro.engine.database.Database`.  All engine
work — waves, prepares, literal executes, admin calls — runs on a single
worker thread, so the paper's piggy-backed adaptation never races itself;
concurrency lives entirely in the admission layer, where bound selects from
different connections are grouped into vectorized waves (see
:mod:`repro.server.admission`).

Typical embedding::

    async with ReproServer(database, port=0) as server:
        connection = await repro.aio.connect(*server.address)
        ...

or standalone: ``python -m repro.server --port 7733``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any

import numpy as np

from repro.api.exceptions import (
    Error,
    ProgrammingError,
    error_name,
    translate_exception,
    translating,
)
from repro.cluster import Router
from repro.engine.database import Database
from repro.engine.result import QueryResult
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    read_frame,
    write_frame,
)


def result_payload(result: QueryResult) -> dict[str, Any]:
    """One query result as a JSON-serialisable response body."""
    if result.scalars:
        return {
            "rowcount": 1,
            "cache_level": result.cache_level,
            "batched": result.batched,
            "scalars": {label: float(value) for label, value in result.scalars.items()},
            "columns": {},
            "dtypes": {},
        }
    return {
        "rowcount": result.row_count,
        "cache_level": result.cache_level,
        "batched": result.batched,
        "columns": {name: array.tolist() for name, array in result.columns.items()},
        "dtypes": {name: array.dtype.name for name, array in result.columns.items()},
    }


def _error_frame(request_id: Any, exc: BaseException) -> dict[str, Any]:
    mapped = exc if isinstance(exc, Error) else translate_exception(exc)
    return {
        "type": "error",
        "id": request_id,
        "error": error_name(mapped),
        "message": str(mapped),
    }


class ReproServer:
    """An asyncio front-end serving one engine to many client connections.

    The admission knobs (``batch_window_us``, ``max_inflight``, ``max_wave``,
    ``max_inflight_per_connection``, ``overflow``) are forwarded to the
    :class:`~repro.server.admission.AdmissionController` and advertised to
    every client in the HELLO response.  ``port=0`` binds an ephemeral port;
    the bound address is available as :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        database: Database | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_us: float = 250.0,
        max_inflight: int = 1024,
        max_wave: int = 256,
        max_inflight_per_connection: int | None = None,
        overflow: str = "error",
        replicas: int = 1,
        router_knobs: dict[str, Any] | None = None,
        wave_deadline_s: float | None = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        auto_rebuild: bool = True,
        drain_timeout_s: float = 5.0,
        injector: Any | None = None,
        self_tuning: bool = False,
        tuning: dict[str, Any] | None = None,
        read_workers: int = 1,
    ) -> None:
        self.database = database if database is not None else Database()
        self.read_workers = max(1, int(read_workers))
        # The engine worker stays the only adaptation owner; read_workers
        # only sizes the snapshot-reader fan-out inside execute_wave.
        self.database.read_workers = self.read_workers
        self.router: Router | None = None
        if replicas > 1:
            # Scale-out mode: the seed database becomes replica 0 of a
            # divergent fleet; waves are routed per replica by the admission
            # layer and DDL fans out (see repro.cluster).
            knobs = dict(router_knobs or {})
            if injector is not None:
                knobs.setdefault("injector", injector)
            knobs.setdefault("read_workers", self.read_workers)
            self.router = Router(self.database, replicas, **knobs)
        self.engine: Any = self.router if self.router is not None else self.database
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self.admission = AdmissionController(
            self.engine,
            executor=self._executor,
            batch_window_us=batch_window_us,
            max_inflight=max_inflight,
            max_wave=max_wave,
            max_inflight_per_connection=max_inflight_per_connection,
            overflow=overflow,
            wave_deadline_s=wave_deadline_s,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            auto_rebuild=auto_rebuild,
        )
        self.drain_timeout_s = float(drain_timeout_s)
        # Self-tuning (repro.tuning): a pulse task feeds the adaptive
        # accountants' per-query records to an online TuningController that
        # proposes/trials knob moves through the same registry the ADMIN
        # ``set_knobs`` op uses.  Off by default; ``tuning`` forwards
        # controller kwargs (window, objective, kappa, ...) plus ``pulse_s``.
        self.self_tuning = bool(self_tuning)
        self._tuning_options = dict(tuning or {})
        self._tuning_pulse_s = float(self._tuning_options.pop("pulse_s", 0.5))
        self.tuning_controller: Any | None = None
        self._tuning_task: asyncio.Task | None = None
        self._tuning_seen: dict[tuple[int, str], int] = {}
        self._tuning_errors = 0
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_ClientConnection] = set()
        self._connection_ids = itertools.count(1)
        self._stopped = False
        self.address: tuple[str, int] | None = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the socket and start the admission flush loop."""
        if self._server is not None:
            return self
        await self.admission.start()
        self._server = await asyncio.start_server(self._accept, self._host, self._port)
        name = self._server.sockets[0].getsockname()
        self.address = (name[0], name[1])
        if self.self_tuning and self._tuning_task is None:
            self._tuning_task = asyncio.get_running_loop().create_task(
                self._tuning_loop(), name="repro-tuning-pulse"
            )
        return self

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self.address is None:
            raise RuntimeError("server is not started")
        return self.address[1]

    async def serve_forever(self) -> None:
        """Serve until cancelled (for ``python -m repro.server``)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight work, then close everything.

        Ordering matters: first the listener closes (no new connections),
        then the admission layer **drains** — queued requests and in-flight
        waves run to completion while new submissions are refused — then each
        connection flushes its response pump so completed answers reach their
        clients before the sockets die.  Only after that are the reader
        tasks cancelled and the workers joined (hard-timeout: a wedged
        replica worker is abandoned, never waited on forever).
        """
        if self._stopped:
            return
        self._stopped = True
        if self._tuning_task is not None:
            self._tuning_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._tuning_task
            self._tuning_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.admission.drain(timeout=self.drain_timeout_s)
        for connection in list(self._connections):
            await connection.drain_responses(timeout=self.drain_timeout_s)
        for connection in list(self._connections):
            await connection.shutdown()
        await self.admission.stop()
        self._executor.shutdown(wait=True)
        if self.router is not None:
            self.router.close()

    async def __aenter__(self) -> "ReproServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # -- internals ------------------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _ClientConnection(
            self, reader, writer, next(self._connection_ids)
        )
        self._connections.add(connection)
        try:
            await connection.run()
        finally:
            self._connections.discard(connection)

    def engine_call(self, fn: Any, *args: Any) -> asyncio.Future:
        """Run an engine-touching callable on the single worker thread."""
        return asyncio.get_running_loop().run_in_executor(
            self._executor, partial(fn, *args)
        )

    # -- self-tuning ----------------------------------------------------------

    def knob_registry(self):
        """This server's full knob surface: engine + admission (+ router).

        Built fresh per call so columns made adaptive after server start are
        covered.  The same registry backs the ADMIN ``knobs`` / ``set_knobs``
        ops and the self-tuning controller.
        """
        from repro.tuning.knobs import server_knob_registry

        return server_knob_registry(self.engine, admission=self.admission)

    async def _tuning_loop(self) -> None:
        """Periodic pulse: ship accumulated query records to the controller."""
        while True:
            await asyncio.sleep(self._tuning_pulse_s)
            try:
                await self.engine_call(self._tuning_pulse)
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - tuning must never kill serving
                self._tuning_errors += 1

    def _tuning_pulse(self) -> None:
        """One tuning step; runs on the engine worker thread.

        Drains the per-query :class:`~repro.core.accounting.QueryStats`
        appended to every adaptive column's history since the last pulse,
        aggregates them into one observation window (bounds + mean IO bytes
        + mean latency) and feeds the controller — which may train, detect
        drift, and propose/trial/roll back a knob move via the registry.
        """
        registry = self.knob_registry()
        if len(registry) == 0:
            return
        fresh: list[Any] = []
        for database in self._tuning_databases():
            for handle in database.bpm.handles():
                records = handle.adaptive.history.records
                key = (id(database), handle.qualified_name)
                seen = self._tuning_seen.get(key, 0)
                if len(records) > seen:
                    fresh.extend(records[seen:])
                self._tuning_seen[key] = len(records)
        if not fresh:
            return
        controller = self._ensure_controller(registry, fresh)
        controller.registry = registry  # fresh build; same live engine objects
        n = sum(max(int(r.batch_size), 1) for r in fresh)
        bounds = [(r.low, r.high) for r in fresh]
        cost = sum(r.reads_bytes + r.writes_bytes for r in fresh) / n
        latency = sum(r.total_seconds for r in fresh) / n
        shares = None
        if self.router is not None:
            with self.router._lock:
                live = list(self.router._shares)
            shares = live or None
        controller.observe_window(bounds, cost, latency_s=latency, shares=shares)

    def _tuning_databases(self) -> list[Database]:
        if self.router is not None:
            return [replica.database for replica in self.router.replicas]
        return [self.database]

    def _ensure_controller(self, registry: Any, fresh: list[Any]) -> Any:
        """Lazily build the controller once there is something to observe.

        The feature/drift domain is anchored on the first pulse's adaptive
        domains (falling back to its observed bounds), so normalization
        matches the data actually stored rather than a unit-interval guess.
        """
        if self.tuning_controller is not None:
            return self.tuning_controller
        from repro.tuning.controller import TuningController
        from repro.tuning.whatif import WhatIfEstimator

        lows = [r.low for r in fresh]
        highs = [r.high for r in fresh]
        for database in self._tuning_databases():
            for handle in database.bpm.handles():
                domain = handle.adaptive.domain
                lows.append(float(domain.low))
                highs.append(float(domain.high))
        domain = (min(lows), max(highs))
        options = dict(self._tuning_options)
        estimator = options.pop(
            "estimator", None
        ) or WhatIfEstimator(sorted(registry.names()), seed=0)
        self.tuning_controller = TuningController(
            registry, estimator, domain=domain, **options
        )
        return self.tuning_controller


async def serve(
    database: Database | None = None,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **knobs: Any,
) -> ReproServer:
    """Start a :class:`ReproServer` and return it (callers ``await .stop()``)."""
    server = ReproServer(database, host=host, port=port, **knobs)
    return await server.start()


class _ClientConnection:
    """One client connection: a frame reader plus an ordered response pump.

    The reader handles frames sequentially but does not wait for admitted
    queries: their futures are pushed onto the response queue and a separate
    pump task writes each response as it resolves, so a connection can keep
    many queries in flight (pipelining) while `submit` backpressure — the
    per-connection cap — naturally pauses the reader of a firehose client.
    """

    def __init__(
        self,
        server: ReproServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        connection_id: int,
    ) -> None:
        self._server = server
        self._reader = reader
        self._writer = writer
        self._id = connection_id
        self._statements: dict[int, Any] = {}
        self._by_sql: dict[str, Any] = {}
        self._statement_ids = itertools.count(1)
        self._responses: asyncio.Queue = asyncio.Queue()
        self._pump_task: asyncio.Task | None = None
        self._task: asyncio.Task | None = None
        self._pump_done = False

    async def shutdown(self) -> None:
        if self._task is not None and not self._task.done():
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task

    async def drain_responses(self, timeout: float = 5.0) -> None:
        """Flush every queued response to the socket (graceful server stop).

        By the time this runs the admission layer has drained, so the pump's
        remaining futures are resolved — this just lets it write them out.
        The reader may still be alive; it is cancelled afterwards and skips
        re-cancelling a pump that already retired.
        """
        if self._pump_done or self._pump_task is None or self._pump_task.done():
            return
        self._responses.put_nowait(None)
        # CancelledError here is the *pump's* (a vanished client's reader
        # tore it down mid-flush), not ours — swallow it like a timeout.
        with contextlib.suppress(asyncio.TimeoutError, asyncio.CancelledError):
            await asyncio.wait_for(asyncio.shield(self._pump_task), timeout)
        self._pump_done = self._pump_task.done()

    # -- the reader loop ------------------------------------------------------

    async def run(self) -> None:
        self._task = asyncio.current_task()
        self._pump_task = asyncio.get_running_loop().create_task(
            self._pump(), name=f"repro-conn-{self._id}-pump"
        )
        try:
            if not await self._handshake():
                return
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                if frame.get("type") == "close":
                    self._push(("frame", {"type": "closed", "id": frame.get("id")}))
                    await self._flush_pump()
                    break
                await self._dispatch(frame)
        except ProtocolError as exc:
            with contextlib.suppress(Exception):
                write_frame(
                    self._writer,
                    {"type": "error", "id": None, "error": "ProtocolError",
                     "message": str(exc)},
                )
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            self._server.admission.forget_connection(self._id)
            if self._pump_task is not None and not self._pump_done:
                self._pump_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await self._pump_task
            self._swallow_orphans()
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()

    async def _handshake(self) -> bool:
        frame = await read_frame(self._reader)
        if frame is None:
            return False
        if frame.get("type") != "hello":
            self._push(
                ("frame", _error_frame(frame.get("id"),
                                       ProgrammingError("expected a hello frame first")))
            )
            await self._flush_pump()
            return False
        if frame.get("protocol") != PROTOCOL_VERSION:
            self._push(
                ("frame", _error_frame(
                    frame.get("id"),
                    ProgrammingError(
                        f"protocol {frame.get('protocol')!r} not supported "
                        f"(server speaks {PROTOCOL_VERSION})"
                    ),
                ))
            )
            await self._flush_pump()
            return False
        from repro import __version__

        self._push(
            ("frame", {
                "type": "hello",
                "id": frame.get("id"),
                "server": "repro",
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "knobs": self._server.admission.knobs(),
            })
        )
        return True

    async def _dispatch(self, frame: dict[str, Any]) -> None:
        request_id = frame.get("id")
        try:
            ftype = frame.get("type")
            if ftype == "prepare":
                await self._handle_prepare(request_id, frame)
            elif ftype == "execute":
                await self._handle_execute(request_id, frame)
            elif ftype == "executemany":
                await self._handle_executemany(request_id, frame)
            elif ftype == "admin":
                await self._handle_admin(request_id, frame)
            else:
                raise ProgrammingError(f"unknown frame type {ftype!r}")
        except asyncio.CancelledError:
            raise
        except ProtocolError:
            raise
        except BaseException as exc:  # noqa: BLE001 - becomes an ERROR frame
            self._push(("frame", _error_frame(request_id, exc)))

    # -- frame handlers -------------------------------------------------------

    async def _handle_prepare(self, request_id: Any, frame: dict[str, Any]) -> None:
        prepared = await self._prepared_for(frame)
        statement_id = next(self._statement_ids)
        self._statements[statement_id] = prepared
        self._push(
            ("frame", {
                "type": "prepared",
                "id": request_id,
                "statement": statement_id,
                "parameters": prepared.binding.count,
                "paramstyle": prepared.binding.style,
                "sql": prepared.sql,
            })
        )

    async def _handle_execute(self, request_id: Any, frame: dict[str, Any]) -> None:
        params = frame.get("params")
        if params is None and frame.get("statement") is None:
            # Literal SQL: the conventional compiled fast path, still on the
            # engine worker thread (serialized with the waves; a Router
            # forwards onto one replica's worker).
            sql = self._sql_of(frame)
            future = self._server.engine_call(self._server.engine.execute, sql)
            self._push(("one", request_id, future))
            return
        prepared = await self._prepared_for(frame)
        values = self._bind(prepared, params if params is not None else [])
        future = await self._server.admission.submit(self._id, prepared, values)
        self._push(("one", request_id, future))

    async def _handle_executemany(self, request_id: Any, frame: dict[str, Any]) -> None:
        prepared = await self._prepared_for(frame)
        seq = frame.get("params") or []
        try:
            bound = prepared.binding.bind_many(seq)
        except Exception as exc:
            raise translate_exception(exc) from None
        futures = []
        for values in bound:
            futures.append(
                await self._server.admission.submit(self._id, prepared, values)
            )
        self._push(("many", request_id, futures))

    async def _handle_admin(self, request_id: Any, frame: dict[str, Any]) -> None:
        op = frame.get("op")
        args = frame.get("args") or {}
        if op == "admission_stats":
            admission = self._server.admission
            value: Any = {
                **admission.stats.as_dict(
                    admission.pending, admission.replica_pending()
                ),
                "connections": len(admission.stats.connections_seen),
                "knobs": admission.knobs(),
            }
        else:
            value = await self._server.engine_call(self._admin_call, op, args)
        self._push(("frame", {"type": "result", "id": request_id, "value": value}))

    def _admin_call(self, op: str, args: dict[str, Any]) -> Any:
        """Admin dispatch; runs on the engine worker thread.

        ``engine`` is the database or, in scale-out mode, the Router — whose
        DDL/load ops fan out to every replica and whose ``cache_stats``
        merges per-replica counters (same shape plus a ``replicas`` list).
        """
        database = self._server.engine
        with translating():
            if op == "create_table":
                database.create_table(args["name"], args["columns"])
            elif op == "drop_table":
                database.drop_table(args["name"])
            elif op == "bulk_load":
                database.bulk_load(
                    args["table"],
                    {name: np.asarray(values) for name, values in args["data"].items()},
                )
            elif op == "insert":
                database.insert(
                    args["table"],
                    {name: np.asarray(values) for name, values in args["data"].items()},
                )
            elif op == "delete":
                database.delete(args["table"], np.asarray(args["oids"], dtype=np.int64))
            elif op == "enable_adaptive":
                database.enable_adaptive(
                    args["table"], args["column"], **args.get("options", {})
                )
            elif op == "disable_adaptive":
                database.disable_adaptive(args["table"], args["column"])
            elif op == "table_names":
                return database.table_names()
            elif op == "cache_stats":
                return database.cache_stats()
            elif op == "explain":
                return database.explain(args["sql"])
            elif op == "knobs":
                return self._server.knob_registry().table()
            elif op == "set_knobs":
                return self._server.knob_registry().set_knobs(args["values"])
            elif op == "tuning_stats":
                controller = self._server.tuning_controller
                if controller is None:
                    return {
                        "enabled": self._server.self_tuning,
                        "state": None,
                        "knob_table": self._server.knob_registry().table(),
                        "note": "controller not active"
                                + ("" if self._server.self_tuning
                                   else ": start with self_tuning=True / --self-tuning"),
                    }
                return {"enabled": True, **controller.tuning_stats()}
            elif op == "router_stats":
                router = self._server.router
                if router is None:
                    return {
                        "replicas": 1,
                        "routing": None,
                        "note": "single-engine server: start with --replicas N "
                                "to enable the router",
                    }
                stats = router.router_stats()
                for replica, depth in zip(
                    stats["replicas"], self._server.admission.replica_pending()
                ):
                    replica["queue_depth"] = depth
                return stats
            else:
                raise ProgrammingError(f"unknown admin op {op!r}")
        return None

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _sql_of(frame: dict[str, Any]) -> str:
        sql = frame.get("sql")
        if not isinstance(sql, str):
            raise ProgrammingError("frame requires an 'sql' string")
        return sql

    async def _prepared_for(self, frame: dict[str, Any]) -> Any:
        """The prepared plan a frame refers to (by statement id or by text)."""
        statement_id = frame.get("statement")
        if statement_id is not None:
            prepared = self._statements.get(statement_id)
            if prepared is None:
                raise ProgrammingError(f"unknown prepared statement id {statement_id}")
            return prepared
        sql = self._sql_of(frame)
        engine = self._server.engine
        prepared = self._by_sql.get(sql)
        if prepared is None or prepared.generation != engine.plan_cache.generation:
            prepared = await self._server.engine_call(engine.prepare_statement, sql)
            self._by_sql[sql] = prepared
        return prepared

    @staticmethod
    def _bind(prepared: Any, params: Any) -> tuple[float, ...]:
        # The hottest per-request call: a try/except instead of the
        # `translating()` context manager (which costs two generator switches
        # per frame even when nothing is raised).
        try:
            return prepared.binding.bind(params)
        except Exception as exc:
            raise translate_exception(exc) from None

    def _push(self, item: Any) -> None:
        self._responses.put_nowait(item)

    async def _flush_pump(self) -> None:
        """Let the pump write everything queued, then retire it."""
        self._responses.put_nowait(None)
        if self._pump_task is not None:
            await self._pump_task
        self._pump_done = True

    def _swallow_orphans(self) -> None:
        """Cancel/retrieve response futures the pump never consumed."""
        while not self._responses.empty():
            item = self._responses.get_nowait()
            if not item or item[0] == "frame":
                continue
            futures = item[2] if isinstance(item[2], list) else [item[2]]
            for future in futures:
                if not future.done():
                    future.cancel()
                elif not future.cancelled():
                    future.exception()  # mark retrieved

    # -- the response pump ----------------------------------------------------

    async def _pump(self) -> None:
        while True:
            item = await self._responses.get()
            if item is None:
                break
            kind = item[0]
            if kind == "frame":
                frame = item[1]
            elif kind == "one":
                request_id, future = item[1], item[2]
                try:
                    result = await future
                except asyncio.CancelledError:
                    if future.cancelled():
                        continue  # the client is gone; nothing to answer
                    raise
                except BaseException as exc:  # noqa: BLE001 - ERROR frame
                    frame = _error_frame(request_id, exc)
                else:
                    frame = {"type": "result", "id": request_id,
                             **result_payload(result)}
            else:  # "many"
                request_id, futures = item[1], item[2]
                outcomes = await asyncio.gather(*futures, return_exceptions=True)
                errors = [o for o in outcomes if isinstance(o, BaseException)]
                if errors:
                    frame = _error_frame(request_id, errors[0])
                else:
                    frame = {
                        "type": "result",
                        "id": request_id,
                        "results": [result_payload(result) for result in outcomes],
                    }
            try:
                write_frame(self._writer, frame)
                await self._writer.drain()
            except (ConnectionError, OSError):
                break
