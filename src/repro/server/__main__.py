"""Run a standalone repro server: ``python -m repro.server --port 7733``.

Serves a fresh in-memory engine; use ``--demo-rows`` to preload a demo table
(``demo(v float64, w float64)``, uniform values in [0, 1)) so clients have
something to query immediately.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib

import numpy as np

from repro.engine.database import Database
from repro.server.server import ReproServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve one self-organizing column-store engine over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7733)
    parser.add_argument(
        "--batch-window-us",
        type=float,
        default=250.0,
        help="admission window in microseconds (0 flushes immediately)",
    )
    parser.add_argument("--max-inflight", type=int, default=1024)
    parser.add_argument("--max-wave", type=int, default=256)
    parser.add_argument(
        "--read-workers",
        type=int,
        default=1,
        metavar="N",
        help="reader threads per engine for snapshot-isolated bound selects "
        "(1 = fully serialized waves)",
    )
    parser.add_argument(
        "--overflow",
        choices=("error", "wait"),
        default="error",
        help="backpressure policy when the admission queue is full",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="engine replicas behind the load-aware router (1 = single engine)",
    )
    parser.add_argument(
        "--hot-query-threshold",
        type=float,
        default=0.5,
        help="traffic share above which a query cluster spreads over all replicas",
    )
    parser.add_argument(
        "--demo-rows",
        type=int,
        default=0,
        metavar="N",
        help="preload a 'demo' table with N uniform rows (adaptive on 'v')",
    )
    parser.add_argument(
        "--wave-deadline-s",
        type=float,
        default=None,
        metavar="S",
        help="per-wave deadline; a blown deadline quarantines the replica",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failover retries per wave on transient replica failure",
    )
    parser.add_argument(
        "--quarantine-after",
        type=int,
        default=2,
        help="consecutive wave failures before a replica is quarantined",
    )
    parser.add_argument(
        "--self-tuning",
        action="store_true",
        help="enable the online knob controller (drift-gated what-if tuning; "
        "observe via the ADMIN tuning_stats op)",
    )
    parser.add_argument(
        "--tuning-pulse-s",
        type=float,
        default=0.5,
        metavar="S",
        help="self-tuning pulse interval in seconds",
    )
    parser.add_argument(
        "--fault-spec",
        default=None,
        metavar="JSON",
        help="arm the deterministic fault injector, e.g. "
        '\'{"seed": 7, "faults": [{"site": "wave.execute", "at": 5, '
        '"action": "crash", "match": {"replica": 1}}]}\' (chaos testing)',
    )
    return parser


async def _main(args: argparse.Namespace) -> None:
    database = Database()
    if args.demo_rows > 0:
        rng = np.random.default_rng(7)
        database.create_table("demo", {"v": "float64", "w": "float64"})
        database.bulk_load(
            "demo",
            {
                "v": rng.random(args.demo_rows),
                "w": rng.random(args.demo_rows),
            },
        )
        database.enable_adaptive("demo", "v")
    injector = None
    if args.fault_spec:
        from repro.fault import specs_from_json

        injector = specs_from_json(args.fault_spec)
    server = ReproServer(
        database,
        host=args.host,
        port=args.port,
        batch_window_us=args.batch_window_us,
        max_inflight=args.max_inflight,
        max_wave=args.max_wave,
        overflow=args.overflow,
        replicas=args.replicas,
        router_knobs={
            "hot_query_threshold": args.hot_query_threshold,
            "quarantine_after": args.quarantine_after,
        },
        wave_deadline_s=args.wave_deadline_s,
        max_retries=args.max_retries,
        injector=injector,
        self_tuning=args.self_tuning,
        tuning={"pulse_s": args.tuning_pulse_s},
        read_workers=args.read_workers,
    )
    async with server:
        assert server.address is not None
        print(
            f"repro server listening on {server.address[0]}:{server.address[1]}"
            + (f" ({args.replicas} routed replicas)" if args.replicas > 1 else "")
            + (" [self-tuning]" if args.self_tuning else "")
        )
        with contextlib.suppress(asyncio.CancelledError):
            await server.serve_forever()


def main() -> None:
    args = _build_parser().parse_args()
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(_main(args))


if __name__ == "__main__":
    main()
