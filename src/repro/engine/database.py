"""The database façade: schema, loading, SQL execution, adaptive indexing."""

from __future__ import annotations

import math
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.accounting import QueryStats
from repro.core.models import SegmentationModel, model_from_name
from repro.engine.execution import ExecutionContext
from repro.engine.plan_cache import (
    BoundPlan,
    CachedPlan,
    PlanCache,
    PreparedPlan,
    TextShapePlan,
    normalize_sql,
)
from repro.engine.profile import QueryProfile
from repro.engine.result import QueryResult
from repro.mal.compiled import compile_program
from repro.mal.interpreter import Interpreter
from repro.mal.modules import default_registry
from repro.mal.program import MALProgram
from repro.optimizer.bpm import AdaptiveColumnHandle, BatPartitionManager
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.rules import merge_duplicate_binds, remove_dead_code
from repro.optimizer.segment_optimizer import SegmentOptimizer
from repro.sql.ast import ComparisonPredicate, Placeholder, SelectStatement
from repro.sql.compiler import SQLCompiler
from repro.sql.parameters import (
    mask_literals,
    parameterize,
    prepared_binding,
    range_parameter_checks,
    statement_shape,
)
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.util.sorted_search import sorted_probe_many
from repro.util.units import KB


@dataclass(slots=True)
class _BatchSpec:
    """What the batch executor needs to know about one eligible statement.

    ``bounds`` is the predicate's ``(low, high, include_low, include_high)``
    as :meth:`SQLCompiler._bounds` reports it; on a prepared template the low
    and high may still be :class:`Placeholder` instances until
    :meth:`with_bound_values` resolves them against one binding.
    """

    table: str
    column: str
    projected: tuple[str, ...]
    bounds: tuple[float, float, bool, bool]

    def with_bound_values(self, values: Sequence[float]) -> "_BatchSpec":
        """A concrete spec with every placeholder bound replaced by its value."""
        low, high, include_low, include_high = self.bounds
        if isinstance(low, Placeholder):
            low = values[low.index]
        if isinstance(high, Placeholder):
            high = values[high.index]
        return _BatchSpec(
            table=self.table,
            column=self.column,
            projected=self.projected,
            bounds=(low, high, include_low, include_high),
        )


#: Wave-size histogram buckets: label -> inclusive (low, high) member count.
_WAVE_BUCKETS: tuple[tuple[str, int, float], ...] = (
    ("2-4", 2, 4),
    ("5-16", 5, 16),
    ("17-64", 17, 64),
    ("65-256", 65, 256),
    ("257+", 257, math.inf),
)


@dataclass(slots=True)
class _BatchStats:
    """Admission-efficiency counters of the vectorized batch executor.

    One *wave* is one :meth:`Database._execute_batch` call — a single
    vectorized pass answering every member of a same-column group.  A
    *fallback* is a statement that reached a batching entry point
    (``execute_many`` / ``execute_prepared_many`` / ``execute_wave``) but ran
    sequentially: not a range select, a group of one, deltas pending, or
    batching disabled.  Surfaced through :meth:`Database.cache_stats` so the
    server front-end's admission efficiency is observable without a profiler.
    """

    waves: int = 0
    batched_queries: int = 0
    fallback_queries: int = 0
    min_wave: int = 0
    max_wave: int = 0
    histogram: dict[str, int] = field(
        default_factory=lambda: {label: 0 for label, _, _ in _WAVE_BUCKETS}
    )

    def observe_wave(self, size: int) -> None:
        self.waves += 1
        self.batched_queries += size
        self.min_wave = size if self.min_wave == 0 else min(self.min_wave, size)
        self.max_wave = max(self.max_wave, size)
        for label, low, high in _WAVE_BUCKETS:
            if low <= size <= high:
                self.histogram[label] += 1
                break

    def observe_fallback(self) -> None:
        self.fallback_queries += 1

    def summary(self) -> dict[str, Any]:
        """The ``batch`` section of :meth:`Database.cache_stats`."""
        return {
            "waves": self.waves,
            "batched_queries": self.batched_queries,
            "fallback_queries": self.fallback_queries,
            "wave_size": {
                "min": self.min_wave,
                "max": self.max_wave,
                "mean": self.batched_queries / self.waves if self.waves else 0.0,
            },
            "wave_size_histogram": dict(self.histogram),
        }


class Database:
    """A self-organizing column-store database instance.

    Typical usage::

        db = Database()
        db.create_table("p", {"objid": "int64", "ra": "float64"})
        db.bulk_load("p", {"objid": objids, "ra": ra_values})
        db.enable_adaptive("p", "ra", strategy="segmentation", model="apm",
                           m_min=1 * MB, m_max=5 * MB)
        result = db.execute("SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12")

    Queries run through a compiled fast path: range literals are lifted into
    parameters so the LRU plan cache keys on query *shape* (plus an exact-text
    first level), and each shape is lowered once into a slot-based
    :class:`~repro.mal.compiled.CompiledPlan` — on a warm query only the parse
    and the plan execution itself remain.  Execution contexts are pooled, and
    every :class:`QueryResult` carries a per-stage :class:`QueryProfile`.
    ``execute_many`` / ``execute_prepared_many`` route same-column range
    selections — overlapping and disjoint alike — through the vectorized
    batch executor (the strategy layer's ``select_many`` kernels).
    """

    def __init__(self, *, plan_cache_size: int = 128) -> None:
        self.catalog = Catalog()
        self.bpm = BatPartitionManager(self.catalog)
        self.registry = default_registry()
        self.registry.register_module("bpm", self.bpm.mal_module())
        self.compiler = SQLCompiler(self.catalog)
        self.segment_optimizer = SegmentOptimizer(self.catalog, self.bpm)
        self.optimizer = OptimizerPipeline(
            [merge_duplicate_binds, self.segment_optimizer, remove_dead_code]
        )
        self.interpreter = Interpreter(self.registry)
        self.plan_cache = PlanCache(plan_cache_size)
        self.query_history: list[QueryResult] = []
        self._context_pool: list[ExecutionContext] = []
        self._batch_stats = _BatchStats()
        self._adaptive_configs: dict[tuple[str, str], dict[str, Any]] = {}
        #: How many reader threads :meth:`execute_wave` may fan read-only
        #: members across (1 = fully serialized, today's behaviour).  The
        #: self-tuner prices this through the ``read_workers`` knob.
        self.read_workers = 1
        self._reader_pool: ThreadPoolExecutor | None = None
        self._reader_pool_size = 0
        self._readonly_templates: dict[str, tuple[int, _BatchSpec | None]] = {}

    # -- schema and data -----------------------------------------------------

    def create_table(self, name: str, columns: dict[str, Any]) -> None:
        """Create a table from a ``{column: dtype}`` mapping."""
        self.catalog.create_table(name.lower(), {col.lower(): dtype for col, dtype in columns.items()})
        self.plan_cache.clear()

    def drop_table(self, name: str) -> None:
        """Drop a table and any adaptive state attached to its columns."""
        name = name.lower()
        for handle in list(self.bpm.handles()):
            if handle.table == name:
                self.bpm.disable(handle.table, handle.column)
        self._adaptive_configs = {
            key: value for key, value in self._adaptive_configs.items() if key[0] != name
        }
        self.catalog.drop_table(name)
        self.plan_cache.clear()

    def bulk_load(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Load aligned arrays into a freshly created table."""
        self.catalog.table(table.lower()).bulk_load(
            {col.lower(): np.asarray(values) for col, values in data.items()}
        )

    def insert(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Append rows through the insert-delta BATs."""
        self.catalog.table(table.lower()).insert(
            {col.lower(): np.asarray(values) for col, values in data.items()}
        )

    def delete(self, table: str, oids: np.ndarray) -> None:
        """Mark rows (by oid) as deleted."""
        self.catalog.table(table.lower()).delete(oids)

    def table_names(self) -> list[str]:
        """All tables in the catalog."""
        return self.catalog.table_names

    # -- adaptive indexing administration ------------------------------------------

    def enable_adaptive(
        self,
        table: str,
        column: str,
        *,
        strategy: str = "segmentation",
        model: str | SegmentationModel | None = "apm",
        m_min: float = 3 * KB,
        m_max: float = 12 * KB,
        seed: int | None = None,
        **options: Any,
    ) -> AdaptiveColumnHandle:
        """Hand a column to the BPM using any registered adaptive strategy.

        ``strategy`` is resolved through the registry in
        :mod:`repro.core.strategy` — built-ins are ``"segmentation"``,
        ``"replication"`` and ``"unsegmented"``; plugged-in strategies are
        available here with no engine changes.  Extra keyword options (e.g.
        ``storage_budget`` for replication) are forwarded to the strategy
        constructor when it accepts them.
        """
        table = table.lower()
        column = column.lower()
        stored = self.catalog.column(table, column)
        values = stored.merge_deltas()
        if values.size == 0:
            raise ValueError(
                f"cannot enable adaptive organisation on empty column {table}.{column}"
            )
        config: dict[str, Any] | None = None
        if isinstance(model, str) or model is None:
            config = {
                "strategy": strategy,
                "model": model,
                "m_min": m_min,
                "m_max": m_max,
                "seed": seed,
                **options,
            }
        if isinstance(model, str):
            model = model_from_name(model, m_min=m_min, m_max=m_max, seed=seed)
        handle = self.bpm.enable(table, column, strategy=strategy, model=model,
                                 values=values, **options)
        # Remember how the column was enabled so replica cloning
        # (repro.cluster) can rebuild an equivalent fresh strategy.  Model
        # *instances* are stateful and cannot be re-instantiated from here,
        # so only string-named models are recorded.
        if config is not None:
            self._adaptive_configs[(table, column)] = config
        else:
            self._adaptive_configs.pop((table, column), None)
        self.plan_cache.clear()
        return handle

    def enable_adaptive_segmentation(
        self,
        table: str,
        column: str,
        *,
        model: str | SegmentationModel = "apm",
        m_min: float = 3 * KB,
        m_max: float = 12 * KB,
        seed: int | None = None,
    ) -> AdaptiveColumnHandle:
        """Deprecated: use ``enable_adaptive(..., strategy="segmentation")``."""
        warnings.warn(
            "enable_adaptive_segmentation is deprecated; "
            "use enable_adaptive(table, column, strategy='segmentation')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.enable_adaptive(
            table, column, strategy="segmentation",
            model=model, m_min=m_min, m_max=m_max, seed=seed,
        )

    def enable_adaptive_replication(
        self,
        table: str,
        column: str,
        *,
        model: str | SegmentationModel = "apm",
        m_min: float = 3 * KB,
        m_max: float = 12 * KB,
        seed: int | None = None,
        storage_budget: float | None = None,
    ) -> AdaptiveColumnHandle:
        """Deprecated: use ``enable_adaptive(..., strategy="replication")``."""
        warnings.warn(
            "enable_adaptive_replication is deprecated; "
            "use enable_adaptive(table, column, strategy='replication')",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.enable_adaptive(
            table, column, strategy="replication",
            model=model, m_min=m_min, m_max=m_max, seed=seed,
            storage_budget=storage_budget,
        )

    def disable_adaptive(self, table: str, column: str) -> None:
        """Return a column to plain positional organisation."""
        self.bpm.disable(table.lower(), column.lower())
        self._adaptive_configs.pop((table.lower(), column.lower()), None)
        self.plan_cache.clear()

    def adaptive_configs(self) -> dict[tuple[str, str], dict[str, Any]]:
        """Enable-time configuration per managed ``(table, column)``.

        Only registrations made with a string-named model appear here;
        replica cloning needs these to rebuild an equivalent strategy on a
        fresh engine.
        """
        return {key: dict(value) for key, value in self._adaptive_configs.items()}

    def adaptive_handle(self, table: str, column: str) -> AdaptiveColumnHandle:
        """The BPM handle of an adaptive column (for inspection)."""
        return self.bpm.handle(table.lower(), column.lower())

    # -- self-tuning knobs -----------------------------------------------------

    def knob_registry(self):
        """The engine's live knob surface (see :mod:`repro.tuning.knobs`).

        Built fresh on every call so knobs appear and disappear with the
        adaptive registrations that carry them (an APM column brings the
        split-threshold pair, a budgeted replication column brings the
        storage budget).
        """
        from repro.tuning.knobs import database_knobs

        return database_knobs(self)

    def knobs(self) -> dict[str, float]:
        """Current value of every storage-model knob on this engine."""
        return self.knob_registry().knobs()

    def set_knobs(self, values: dict[str, Any]) -> dict[str, float]:
        """Validate and apply knob changes; returns the new knob vector.

        All-or-nothing (a rejected batch changes nothing) and answer-
        preserving: knobs steer *layout* decisions — split thresholds,
        replica eviction — never predicate semantics, so queries before and
        after a change return the same rows (property-tested in
        ``tests/tuning``).  Must run on the thread that owns the engine,
        like any other engine call.
        """
        return self.knob_registry().set_knobs(values)

    def cache_stats(self) -> dict[str, Any]:
        """Plan-cache observability: per-level and total counters.

        ``levels`` maps each cache level (``exact``/``masked``/``shape``/
        ``prepared``) to its hit/miss/eviction counters and resident entry
        count; ``total`` carries the cache-wide counters plus capacity,
        generation and the overall hit ratio; ``batch`` carries the
        vectorized batch executor's admission-efficiency counters (waves
        executed, a queries-per-wave histogram summary, and the
        fallback-to-sequential count).  Also surfaced on the client API via
        ``Connection.admin.cache_stats()``.
        """
        cache = self.plan_cache
        totals = cache.stats
        return {
            "batch": self._batch_stats.summary(),
            "levels": {
                name: {
                    "hits": level.hits,
                    "misses": level.misses,
                    "evictions": level.evictions,
                    "entries": level.entries,
                    "hit_ratio": level.hit_ratio,
                }
                for name, level in cache.level_stats().items()
            },
            "total": {
                "hits": totals.hits,
                "misses": totals.misses,
                "evictions": totals.evictions,
                "invalidations": totals.invalidations,
                "size": totals.size,
                "capacity": totals.capacity,
                "hit_ratio": totals.hit_ratio,
                "generation": cache.generation,
            },
        }

    # -- query execution ----------------------------------------------------------------

    def compile(self, sql: str) -> MALProgram:
        """Parse and compile a query without optimizing or running it."""
        return self.compiler.compile(parse(sql))

    def explain(self, sql: str) -> str:
        """The optimized MAL plan in concrete syntax (like ``EXPLAIN``)."""
        return self.optimizer.optimize(self.compile(sql)).render()

    def _lower(self, statement: SelectStatement, profile: QueryProfile) -> CachedPlan:
        """Compile, optimize and lower one statement into a :class:`CachedPlan`."""
        started = time.perf_counter()
        program = self.compiler.compile(statement)
        codegen_seconds = time.perf_counter() - started
        started = time.perf_counter()
        optimized = self.optimizer.optimize(program)
        profile.optimize_seconds = time.perf_counter() - started
        started = time.perf_counter()
        compiled = compile_program(optimized, self.registry)
        profile.compile_seconds = codegen_seconds + time.perf_counter() - started
        return CachedPlan(compiled=compiled, text=optimized.render())

    def _prepare(self, sql: str, profile: QueryProfile) -> tuple[BoundPlan, str]:
        """The executable plan and parameter values for ``sql``.

        Three cache levels share one LRU store, fastest first: the exact
        normalized text (skips everything), the literal-masked text (skips
        the parse — the common warm case for workloads that vary only their
        range constants), and the parsed query *shape* (skips
        compile/optimize/lowering).  Returns ``(bound_plan, cache_level)``
        with the level that answered (``"exact"``/``"masked"``/``"shape"``,
        or ``"cold"`` when the plan had to be compiled); ``profile`` receives
        the per-stage timings of whatever work actually ran.  Plans are safe
        to re-run: per-query state lives in the :class:`ExecutionContext`,
        and the cache is cleared whenever the schema or an adaptive
        registration changes.
        """
        normalized = normalize_sql(sql)
        text_key = ("sql", normalized)
        bound = self.plan_cache.get(text_key)
        if bound is not None:
            return bound, "exact"

        started = time.perf_counter()
        masked, literals = mask_literals(normalized)
        fast = self.plan_cache.get(("text-shape", masked))
        if (
            fast is not None
            and len(literals) == fast.parameter_count
            and all(literals[low] <= literals[high] for low, high in fast.range_checks)
        ):
            arguments = {f"__p{index}": value for index, value in enumerate(literals)}
            profile.parse_seconds = time.perf_counter() - started
            # No text-level install here: re-reaching this entry costs one
            # masked lookup, and not churning the LRU with every literal
            # variant keeps the durable shape entries resident.
            return BoundPlan(plan=fast.plan, arguments=arguments), "masked"

        shaped = parameterize(parse(sql))
        profile.parse_seconds = time.perf_counter() - started

        shape_key = ("shape", shaped.shape)
        plan = self.plan_cache.get(shape_key)
        level = "shape" if plan is not None else "cold"
        if plan is None:
            plan = self._lower(shaped.statement, profile)
            self.plan_cache.put(shape_key, plan)
        if shaped.statement.limit is None and len(literals) == len(shaped.arguments):
            # Every textual literal is a parameter: the masked text alone
            # identifies this shape, so future literal variants skip the parse.
            self.plan_cache.put(
                ("text-shape", masked),
                TextShapePlan(
                    plan=plan,
                    parameter_count=len(literals),
                    range_checks=range_parameter_checks(shaped.statement),
                ),
            )
        bound = BoundPlan(plan=plan, arguments=shaped.arguments)
        self.plan_cache.put(text_key, bound)
        return bound, level

    def execute(self, sql: str) -> QueryResult:
        """Run a query through the compiled fast path.

        Cold: parse → compile → optimize → lower to a :class:`CompiledPlan`,
        cache by shape and text.  Warm: fetch the compiled plan, bind this
        query's range parameters into its slot environment and execute — no
        recompilation, no name resolution, pooled execution context.
        """
        total_started = time.perf_counter()
        profile = QueryProfile()
        bound, level = self._prepare(sql, profile)
        optimizer_seconds = time.perf_counter() - total_started
        cache_hit = level != "cold"
        profile.cold = not cache_hit

        compiled = bound.plan.compiled
        context = self._acquire_context()
        adaptive_before = self._adaptive_counters()
        counters = compiled.new_counters()
        execute_started = time.perf_counter()
        compiled.execute(context, bound.arguments, counters)
        profile.execute_seconds = time.perf_counter() - execute_started
        selection_seconds, adaptation_seconds = self._adaptive_delta(adaptive_before)
        profile.attach_counters(compiled, counters)

        result = QueryResult(
            sql=sql,
            columns=context.exported_columns(),
            scalars=dict(context.scalars),
            plan_text=bound.plan.text,
            total_seconds=time.perf_counter() - total_started,
            selection_seconds=selection_seconds,
            adaptation_seconds=adaptation_seconds,
            optimizer_seconds=optimizer_seconds,
            plan_cache_hit=cache_hit,
            cache_level=level,
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            profile=profile,
        )
        self._release_context(context)
        self.query_history.append(result)
        return result

    # -- prepared statements (the client API's binding path) -----------------

    def prepare_statement(self, sql: str) -> PreparedPlan:
        """Lower ``sql`` (with ``?``/``:name`` placeholders) into a bound-ready plan.

        The placeholder-shape cache level: the normalized text keys the
        prepared entry, so repeated ``Cursor.execute(sql, params)`` calls cost
        one dictionary lookup — no parse, no literal masking.  A prepared
        statement whose placeholders cover every bound shares its compiled
        plan with the literal path's lifted shape, so preparing a statement
        the masked-text path already compiled lowers nothing.
        """
        normalized = normalize_sql(sql)
        key = ("prepared", normalized)
        prepared = self.plan_cache.get(key)
        if prepared is not None:
            return prepared

        profile = QueryProfile()  # prepare-time work is not attributed to a query
        statement = parse(sql, placeholders=True)
        binding = prepared_binding(statement)
        shape_key = ("shape", statement_shape(statement))
        plan = self.plan_cache.get(shape_key)
        if plan is None:
            plan = self._lower(statement, profile)
            self.plan_cache.put(shape_key, plan)
        slots = plan.compiled.parameter_slots(
            tuple(f"__p{index}" for index in range(binding.count))
        )
        prepared = PreparedPlan(
            sql=normalized,
            plan=plan,
            statement=statement,
            binding=binding,
            slots=slots,
            generation=self.plan_cache.generation,
        )
        self.plan_cache.put(key, prepared)
        return prepared

    def execute_prepared(self, prepared: PreparedPlan, parameters: Any = ()) -> QueryResult:
        """Bind ``parameters`` into a prepared plan and execute it.

        The hot path of the client API: binding validates arity, numeric type
        and ``high >= low`` against the prepared template and seeds the
        compiled plan's slot environment directly — the query never touches
        SQL text again.  A handle lowered under an older cache generation
        (schema or adaptive registration changed since) is re-prepared
        transparently instead of serving a stale plan.
        """
        if prepared.generation != self.plan_cache.generation:
            prepared = self.prepare_statement(prepared.sql)
        values = prepared.binding.bind(parameters)
        return self._run_prepared(prepared, values)

    def execute_prepared_many(
        self,
        prepared: PreparedPlan,
        seq_of_parameters: Sequence[Any],
        *,
        batch: bool = True,
    ) -> list[QueryResult]:
        """Run one prepared statement once per parameter binding.

        All bindings are validated up front against the one prepared shape;
        eligible range selections — overlapping *and* disjoint alike — are
        then answered through the same vectorized batch executor as
        :meth:`execute_many`, with the per-member bounds resolved straight
        from the bound values (no per-member statement substitution).
        """
        if prepared.generation != self.plan_cache.generation:
            prepared = self.prepare_statement(prepared.sql)
        bound = prepared.binding.bind_many(seq_of_parameters)
        template = (
            self._batch_spec(prepared.statement)
            if batch and self._batchable(prepared.statement)
            else None
        )
        items: list[tuple[str, _BatchSpec | None]] = [
            (
                prepared.sql,
                template.with_bound_values(values) if template is not None else None,
            )
            for values in bound
        ]
        results = self._run_with_batching(
            items, lambda index: self._run_prepared(prepared, bound[index])
        )
        for result, values in zip(results, bound):
            if result.batched:  # the shared scan records the placeholder text only
                result.parameters = values
        return results

    def execute_wave(
        self,
        requests: Sequence[tuple[PreparedPlan, tuple[float, ...]]],
        *,
        isolate: bool = False,
        readers: int | None = None,
    ) -> list[QueryResult | BaseException]:
        """One admission wave: bound statements from many clients, one batch pass.

        The server front-end's engine hook.  ``requests`` pairs each member's
        prepared plan with its already-validated bound values — the members
        may come from *different* prepared statements (and different client
        connections).  Eligible range selects are grouped by (table, column)
        and answered through the vectorized batch executor exactly as in
        :meth:`execute_prepared_many`; everything else falls back to
        :meth:`_run_prepared`.  Everything runs on the calling thread, so a
        server that funnels all waves through one worker thread preserves the
        engine's single-threaded adaptation invariant (piggy-backed
        reorganization stays once-per-batch).  Plans lowered under an older
        cache generation are re-prepared transparently, once per distinct
        statement.

        With ``isolate=True`` a poison member no longer fails the wave as one
        unit: if the batched pass raises, the wave re-runs member by member
        and each failing member's exception is returned **in its slot** while
        the rest complete normally.  Re-execution is safe — waves carry bound
        range selects, which are idempotent above adaptation (a double
        adaptation pass is at worst wasted reorganization work).  An
        exception escaping ``isolate=True`` is therefore infrastructure-level
        (the engine itself is broken), which is exactly the signal the
        router's failure detector wants.

        ``readers`` (default: :attr:`read_workers`) sizes the snapshot-read
        fan-out: with more than one reader, wave members that are bound range
        selects over snapshot-capable adaptive columns are answered
        concurrently against pinned index snapshots on a thread pool (numpy
        probe/gather kernels release the GIL) while everything else — DDL,
        non-batchable statements, adaptation — stays serialized on the
        calling worker thread; the drained read observations are absorbed
        into the adaptation path once per wave, after the readers finish.
        """
        requests = list(requests)
        workers = self.read_workers if readers is None else int(readers)
        if workers > 1 and len(requests) > 1:
            return self._execute_wave_readers(requests, workers, isolate=isolate)
        if isolate:
            try:
                return self.execute_wave(requests, readers=1)
            except Exception:  # noqa: BLE001 - replayed per member below
                out: list[QueryResult | BaseException] = []
                for request in requests:
                    try:
                        out.extend(self.execute_wave([request], readers=1))
                    except Exception as exc:  # noqa: BLE001 - isolated to its slot
                        out.append(exc)
                return out
        fresh: dict[int, PreparedPlan] = {}
        templates: dict[int, _BatchSpec | None] = {}
        resolved: list[tuple[PreparedPlan, tuple[float, ...]]] = []
        items: list[tuple[str, _BatchSpec | None]] = []
        for prepared, values in requests:
            key = id(prepared)
            current = fresh.get(key)
            if current is None:
                current = prepared
                if current.generation != self.plan_cache.generation:
                    current = self.prepare_statement(current.sql)
                fresh[key] = current
                templates[key] = (
                    self._batch_spec(current.statement)
                    if self._batchable(current.statement)
                    else None
                )
            template = templates[key]
            resolved.append((current, values))
            items.append(
                (
                    current.sql,
                    template.with_bound_values(values) if template is not None else None,
                )
            )
        results = self._run_with_batching(
            items, lambda index: self._run_prepared(*resolved[index])
        )
        for result, (_, values) in zip(results, resolved):
            if result.batched:  # the shared scan records the placeholder text only
                result.parameters = tuple(values)
        return results

    # -- snapshot reads -------------------------------------------------------

    def execute_readonly(
        self, query: PreparedPlan | str, parameters: Sequence[float] = ()
    ) -> QueryResult:
        """Run one bound range select against a pinned index snapshot.

        The single-query face of the snapshot-read path: pin the column's
        immutable snapshot, answer the predicate against it (no piggy-backed
        adaptation during the read), then absorb the read observation into
        the adaptation path — so a stream of ``execute_readonly`` calls
        adapts the layout just like :meth:`execute_prepared`, but the read
        itself can never race a reorganization.  Must be called on the
        thread that owns the engine (concurrent fan-out belongs to
        :meth:`execute_wave`); queries the snapshot path cannot answer
        (aggregates, unmanaged or snapshot-less columns, pending deltas)
        fall back to the conventional path transparently.
        """
        if isinstance(query, PreparedPlan):
            prepared = query
            if prepared.generation != self.plan_cache.generation:
                prepared = self.prepare_statement(prepared.sql)
        else:
            prepared = self.prepare_statement(str(query))
        values = prepared.binding.bind(parameters)
        template = self._readonly_template(prepared)
        spec = template.with_bound_values(values) if template is not None else None
        adaptive = self._snapshot_adaptive(spec)
        if spec is None or adaptive is None:
            return self._run_prepared(prepared, values)
        arrays = {
            (spec.table, name): self.catalog.column(spec.table, name).bind(0).tail
            for name in spec.projected
        }
        result = self._snapshot_read(
            prepared.sql, values, spec, adaptive, adaptive.pin_snapshot(), arrays
        )
        adaptive.absorb_reads()
        self.query_history.append(result)
        return result

    def _readonly_template(self, prepared: PreparedPlan) -> _BatchSpec | None:
        """The statement's batch-spec template when snapshot-read eligible.

        Cached per normalized SQL text and invalidated by plan-cache
        generation, so schema/adaptive changes re-derive it.
        """
        cached = self._readonly_templates.get(prepared.sql)
        generation = self.plan_cache.generation
        if cached is not None and cached[0] == generation:
            return cached[1]
        template = (
            self._batch_spec(prepared.statement)
            if self._batchable(prepared.statement)
            else None
        )
        # A verdict taken while deltas are pending is transient (``_batchable``
        # folds the delta state in) but this cache is only invalidated by
        # plan-cache generation, which data changes deliberately never bump —
        # so don't let a delta-time ``None`` (or a pre-delta template) stick.
        try:
            pending = self.catalog.table(prepared.statement.table).has_deltas
        except KeyError:
            pending = False
        if not pending:
            self._readonly_templates[prepared.sql] = (generation, template)
        return template

    def _snapshot_adaptive(self, spec: _BatchSpec | None) -> Any | None:
        """The snapshot-capable strategy behind ``spec``'s column, or ``None``."""
        if spec is None or not self.bpm.is_managed(spec.table, spec.column):
            return None
        if self.catalog.table(spec.table).has_deltas:
            # Pending delta BATs take the full Figure-1 cascade; the pinned
            # snapshot only knows the flushed payload.
            return None
        adaptive = self.bpm.handle(spec.table, spec.column).adaptive
        if not getattr(adaptive, "supports_snapshot_reads", False):
            return None
        return adaptive

    def _snapshot_read(
        self,
        sql: str,
        values: tuple[float, ...],
        spec: _BatchSpec,
        adaptive: Any,
        snapshot: Any | None,
        arrays: dict[tuple[str, str], np.ndarray],
    ) -> QueryResult:
        """Answer one member against a pinned snapshot (reader-thread safe).

        Touches only immutable state: the pinned snapshot, the pre-resolved
        projection ``arrays`` and the strategy's thread-safe observation
        accumulator.  No plan-cache, catalog, accountant or history access.
        """
        total_started = time.perf_counter()
        low, high, include_low, include_high = spec.bounds
        lo, hi = BatPartitionManager._half_open_bounds(
            adaptive, low, high, include_low, include_high
        )
        selection = adaptive.select_readonly(lo, hi, snapshot)
        selection_seconds = time.perf_counter() - total_started
        oids = selection.oids
        columns = {
            name: arrays[(spec.table, name)][oids] for name in spec.projected
        }
        return QueryResult(
            sql=sql,
            parameters=tuple(values),
            columns=columns,
            plan_text=f"# snapshot read on {spec.table}.{spec.column}",
            total_seconds=time.perf_counter() - total_started,
            selection_seconds=selection_seconds,
            plan_cache_hit=True,
            cache_level="snapshot",
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            profile=QueryProfile(cold=False),
        )

    def _reader_executor(self, workers: int) -> ThreadPoolExecutor:
        """The lazily built (and grown on demand) snapshot-reader pool."""
        if self._reader_pool is None or self._reader_pool_size < workers:
            if self._reader_pool is not None:
                self._reader_pool.shutdown(wait=False)
            self._reader_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-reader"
            )
            self._reader_pool_size = workers
        return self._reader_pool

    def _execute_wave_readers(
        self,
        requests: list[tuple[PreparedPlan, tuple[float, ...]]],
        workers: int,
        *,
        isolate: bool,
    ) -> list[QueryResult | BaseException]:
        """Fan a wave's read-only members across the snapshot-reader pool.

        Classification happens on the calling worker: a member is *read-only*
        when it is a batchable bound range select over a snapshot-capable
        adaptive column.  Read-only members run concurrently against one
        pinned snapshot per column; everything else takes the standard
        serialized wave path first (preserving its batching among itself).
        After the readers join, each touched column absorbs its drained read
        observations — adaptation stays on this thread, once per wave.
        """
        fresh: dict[int, PreparedPlan] = {}
        readonly: list[tuple[int, PreparedPlan, tuple[float, ...], _BatchSpec, Any]] = []
        serial: list[tuple[int, PreparedPlan, tuple[float, ...]]] = []
        for index, (prepared, values) in enumerate(requests):
            key = id(prepared)
            current = fresh.get(key)
            if current is None:
                current = prepared
                if current.generation != self.plan_cache.generation:
                    current = self.prepare_statement(current.sql)
                fresh[key] = current
            template = self._readonly_template(current)
            spec = template.with_bound_values(values) if template is not None else None
            adaptive = self._snapshot_adaptive(spec)
            if spec is not None and adaptive is not None:
                readonly.append((index, current, values, spec, adaptive))
            else:
                serial.append((index, current, values))

        slots: list[QueryResult | BaseException | None] = [None] * len(requests)

        if serial:
            serial_results = self.execute_wave(
                [(prepared, values) for _, prepared, values in serial],
                isolate=isolate,
                readers=1,
            )
            for (index, _, _), result in zip(serial, serial_results):
                slots[index] = result

        if readonly:
            # Pin one snapshot per column and pre-resolve every projection
            # array on this thread — readers touch no shared mutable state.
            snapshots: dict[tuple[str, str], Any] = {}
            arrays: dict[tuple[str, str], np.ndarray] = {}
            for _, _, _, spec, adaptive in readonly:
                column_key = (spec.table, spec.column)
                if column_key not in snapshots:
                    snapshots[column_key] = adaptive.pin_snapshot()
                for name in spec.projected:
                    array_key = (spec.table, name)
                    if array_key not in arrays:
                        arrays[array_key] = (
                            self.catalog.column(spec.table, name).bind(0).tail
                        )

            def run_chunk(
                chunk: list[tuple[int, PreparedPlan, tuple[float, ...], _BatchSpec, Any]]
            ) -> list[tuple[int, QueryResult | BaseException]]:
                out: list[tuple[int, QueryResult | BaseException]] = []
                for index, prepared, values, spec, adaptive in chunk:
                    try:
                        out.append(
                            (
                                index,
                                self._snapshot_read(
                                    prepared.sql,
                                    values,
                                    spec,
                                    adaptive,
                                    snapshots[(spec.table, spec.column)],
                                    arrays,
                                ),
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - isolated to its slot
                        out.append((index, exc))
                return out

            chunk_count = min(workers, len(readonly))
            chunks = [readonly[offset::chunk_count] for offset in range(chunk_count)]
            pool = self._reader_executor(workers)
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            for future in futures:
                for index, outcome in future.result():
                    slots[index] = outcome
            for (table, column) in snapshots:
                self.bpm.handle(table, column).adaptive.absorb_reads()
            for index, _, _, _, _ in readonly:
                outcome = slots[index]
                if isinstance(outcome, QueryResult):
                    self.query_history.append(outcome)

        if not isolate:
            for outcome in slots:
                if isinstance(outcome, BaseException):
                    raise outcome
        return slots  # type: ignore[return-value]

    def _run_prepared(self, prepared: PreparedPlan, values: tuple[float, ...]) -> QueryResult:
        """Execute a prepared plan with already-validated bound values."""
        total_started = time.perf_counter()
        profile = QueryProfile(cold=False)
        compiled = prepared.plan.compiled
        context = self._acquire_context()
        adaptive_before = self._adaptive_counters()
        counters = compiled.new_counters()
        execute_started = time.perf_counter()
        compiled.execute_bound(context, prepared.slots, values, counters)
        profile.execute_seconds = time.perf_counter() - execute_started
        selection_seconds, adaptation_seconds = self._adaptive_delta(adaptive_before)
        profile.attach_counters(compiled, counters)

        result = QueryResult(
            sql=prepared.sql,
            parameters=values,
            columns=context.exported_columns(),
            scalars=dict(context.scalars),
            plan_text=prepared.plan.text,
            total_seconds=time.perf_counter() - total_started,
            selection_seconds=selection_seconds,
            adaptation_seconds=adaptation_seconds,
            optimizer_seconds=execute_started - total_started,
            plan_cache_hit=True,
            cache_level="prepared",
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            profile=profile,
        )
        self._release_context(context)
        self.query_history.append(result)
        return result

    # -- execution-context pooling ---------------------------------------------

    def _acquire_context(self) -> ExecutionContext:
        """A reset execution context from the pool (or a fresh one)."""
        if self._context_pool:
            return self._context_pool.pop()
        return ExecutionContext(catalog=self.catalog)

    def _release_context(self, context: ExecutionContext) -> None:
        """Return a context to the pool once its outputs have been copied out."""
        if len(self._context_pool) < 4:
            context.reset()
            self._context_pool.append(context)

    # -- batched execution ---------------------------------------------------------------

    def execute_many(self, statements: Sequence[str], *, batch: bool = True) -> list[QueryResult]:
        """Run several statements, batching same-column range selects.

        Statements that are simple range selections over the same
        ``table.column`` (single predicate, plain projection, no pending
        deltas on the table) are grouped by shape and answered by the
        **vectorized batch executor**: an adaptive column answers the whole
        group through the strategy layer's ``select_many`` (array-probe
        kernels, one piggy-backed adaptation pass per batch); a plain column
        is either envelope-scanned once (when every range genuinely
        overlaps) or value-sorted once and probed per member — disjoint
        ranges batch too, and no member ever pays an envelope over-scan.
        Everything else falls back to :meth:`execute`.

        Results are returned (and recorded in ``query_history``) in input
        order; batched results carry ``batched=True`` and a real
        :class:`QueryProfile` with the batch cost apportioned across members.
        """
        statements = list(statements)
        items = [
            (sql, self._batch_spec_from_sql(sql) if batch else None) for sql in statements
        ]
        return self._run_with_batching(items, lambda index: self.execute(statements[index]))

    def _run_with_batching(
        self,
        items: list[tuple[str, _BatchSpec | None]],
        fallback: Any,
    ) -> list[QueryResult]:
        """Group batchable statements by (table, column); run the rest via ``fallback``.

        ``items`` pairs each statement's SQL text with its batch spec
        (``None`` routes it through ``fallback(index)``, which must record
        its own query history — both :meth:`execute` and
        :meth:`_run_prepared` do).  Every same-column group of two or more
        members goes to :meth:`_execute_batch` regardless of whether its
        ranges overlap — the vectorized executor answers disjoint members
        exactly.  This is the one grouping implementation behind
        :meth:`execute_many` and :meth:`execute_prepared_many` (and through
        the latter, ``Cursor.executemany``).
        """
        groups: dict[tuple[str, str], list[int]] = {}
        for index, (_, spec) in enumerate(items):
            if spec is not None:
                groups.setdefault((spec.table, spec.column), []).append(index)
        if len(groups) == 1 and len(items) >= 2:
            # The common executemany shape: every member batches into one
            # group, in input order — no pending bookkeeping needed.
            (table, column), indices = next(iter(groups.items()))
            if len(indices) == len(items):
                results = self._execute_batch(table, column, items)
                self.query_history.extend(results)
                return results
        group_of: dict[int, tuple[str, str]] = {}
        for key, indices in groups.items():
            if len(indices) >= 2:
                for index in indices:
                    group_of[index] = key

        results: list[QueryResult] = []
        pending: dict[int, QueryResult] = {}
        for index, (sql, _) in enumerate(items):
            if index in pending:
                result = pending.pop(index)
            elif index in group_of:
                table, column = group_of[index]
                members = groups[(table, column)]
                batch_results = self._execute_batch(
                    table, column, [(items[j][0], items[j][1]) for j in members]
                )
                for j, batched_result in zip(members, batch_results):
                    if j == index:
                        result = batched_result
                    else:
                        pending[j] = batched_result
            else:
                self._batch_stats.observe_fallback()
                results.append(fallback(index))  # records its own history
                continue
            self.query_history.append(result)
            results.append(result)
        return results

    @staticmethod
    def _overlap_clusters(ranges: list[tuple[float, float]]) -> list[list[int]]:
        """Split half-open ``[low, high)`` ranges into strictly-overlapping clusters.

        Used by the plain-column batch path to decide between one envelope
        scan (a single cluster: the envelope equals the union, so the scan
        reads nothing no member asked for) and the sort-and-probe kernel.
        Only ranges that genuinely *share values* are merged: ranges that
        merely touch — ``low == envelope_high``, including bounds one
        ``math.nextafter`` apart, as an inclusive bound and the adjacent
        exclusive bound produce — stay in separate clusters, since their
        shared envelope would not be cheaper than exact per-member probes.
        Returns clusters of positions into ``ranges``.
        """
        order = sorted(range(len(ranges)), key=lambda i: ranges[i])
        clusters: list[list[int]] = []
        envelope_high = -np.inf
        for index in order:
            low, high = ranges[index]
            if clusters and low < envelope_high:
                clusters[-1].append(index)
                envelope_high = max(envelope_high, high)
            else:
                clusters.append([index])
                envelope_high = high
        return clusters

    def _batch_spec_from_sql(self, sql: str) -> _BatchSpec | None:
        """The statement's batch spec when eligible for the batched path.

        ``None`` routes the statement through the conventional path — also
        for unparsable or invalid statements, so they raise the same errors
        they would raise under :meth:`execute`.
        """
        try:
            statement = parse(sql)
        except ValueError:
            return None
        if not self._batchable(statement):
            return None
        return self._batch_spec(statement)

    def _batch_spec(self, statement: SelectStatement) -> _BatchSpec:
        """The batch executor's view of a statement :meth:`_batchable` accepted."""
        schema = self.catalog.schema(statement.table)
        projected = (
            schema.column_names if statement.columns == ("*",) else statement.columns
        )
        return _BatchSpec(
            table=statement.table,
            column=statement.predicates[0].column,
            projected=tuple(projected),
            bounds=SQLCompiler._bounds(statement.predicates[0]),
        )

    def _batchable(self, statement: SelectStatement) -> bool:
        """Whether a statement's shape and table qualify for the shared scan.

        Shape-level only — the bounds themselves do not matter (overlap
        clustering decides later), so the check applies equally to a
        placeholder statement before its bindings are substituted.
        """
        if statement.is_aggregate or statement.limit is not None:
            return False
        if len(statement.predicates) != 1:
            return False
        predicate = statement.predicates[0]
        if isinstance(predicate, ComparisonPredicate) and predicate.operator == "<>":
            return False
        try:
            store = self.catalog.table(statement.table)
            schema = self.catalog.schema(statement.table)
            projected = (
                schema.column_names if statement.columns == ("*",) else statement.columns
            )
            for name in (*projected, predicate.column):
                schema.dtype_of(name)
        except KeyError:
            return False
        if store.has_deltas:
            # Delta BATs take the full Figure-1 cascade; keep them on it.
            return False
        return True

    @staticmethod
    def _half_open_bounds_many(
        adaptive: Any, bounds: list[tuple[float, float, bool, bool]]
    ) -> np.ndarray:
        """Vectorized :meth:`BatPartitionManager._half_open_bounds` for a batch.

        Returns an ``(n, 2)`` float64 array of half-open ``[low, high)``
        pairs, bit-identical per member to the scalar translation
        (``np.nextafter`` and ``math.nextafter`` agree on float64).
        """
        domain = adaptive.domain
        lows = np.asarray([low for low, _, _, _ in bounds], dtype=np.float64)
        highs = np.asarray([high for _, high, _, _ in bounds], dtype=np.float64)
        include_low = np.asarray([incl for _, _, incl, _ in bounds], dtype=bool)
        include_high = np.asarray([inch for _, _, _, inch in bounds], dtype=bool)
        low_finite = np.isfinite(lows)
        high_finite = np.isfinite(highs)
        effective_low = np.where(low_finite, np.maximum(lows, domain.low), domain.low)
        effective_high = np.where(high_finite, np.minimum(highs, domain.high), domain.high)
        bump_low = ~include_low & low_finite
        if bump_low.any():
            effective_low = np.where(
                bump_low, np.nextafter(effective_low, np.inf), effective_low
            )
        bump_high = include_high & high_finite
        if bump_high.any():
            effective_high = np.where(
                bump_high, np.nextafter(effective_high, np.inf), effective_high
            )
        effective_high = np.minimum(effective_high, domain.high)
        effective_low = np.maximum(np.minimum(effective_low, effective_high), domain.low)
        return np.column_stack([effective_low, effective_high])

    @staticmethod
    def _half_open_floats(
        low: float, high: float, include_low: bool, include_high: bool
    ) -> tuple[float, float]:
        """SQL bound semantics as a half-open ``[low, high)`` float pair.

        The domain-free counterpart of
        :meth:`BatPartitionManager._half_open_bounds`, used by the
        plain-column sort-and-probe kernel (``±inf`` bounds are legal there:
        the probes saturate at the array ends).
        """
        low = float(low)
        high = float(high)
        if not include_low and math.isfinite(low):
            low = math.nextafter(low, math.inf)
        if include_high and math.isfinite(high):
            high = math.nextafter(high, math.inf)
        return low, high

    def _execute_batch(
        self, table: str, column: str, members: list[tuple[str, _BatchSpec]]
    ) -> list[QueryResult]:
        """One vectorized pass over ``table.column`` answering every member query.

        An adaptive (BPM-managed) column answers the batch through the
        strategy layer's ``select_many`` — vectorized segment routing and
        probe kernels for the strategies that support batching, the
        sequential fallback otherwise — with adaptation piggy-backed on the
        batch.  A plain column is answered either by one envelope scan (all
        ranges strictly overlapping: the envelope is the union) or by
        value-sorting the column once and probing every member's slice —
        disjoint members cost two binary searches each, not a scan.
        """
        total_started = time.perf_counter()
        self._batch_stats.observe_wave(len(members))
        bounds = [spec.bounds for _, spec in members]

        if self.bpm.is_managed(table, column):
            adaptive = self.bpm.handle(table, column).adaptive
            half_open = self._half_open_bounds_many(adaptive, bounds)
            adaptive_before = self._adaptive_counters()
            selections = adaptive.select_many(half_open)
            selection_seconds, adaptation_seconds = self._adaptive_delta(adaptive_before)
            extracted = [selection.oids for selection in selections]
            plan_text = (
                f"# batched select_many on {table}.{column} ({len(members)} queries)"
            )
        else:
            started = time.perf_counter()
            persistent = self.catalog.column(table, column).bind(0)
            values, heads = persistent.tail, persistent.head
            half_open = [
                self._half_open_floats(low, high, incl, inch)
                for low, high, incl, inch in bounds
            ]
            clusters = self._overlap_clusters(half_open)
            if len(clusters) == 1:
                # Every range shares values with the next: one mask scan over
                # the envelope (== the union) answers the whole batch.
                envelope_low = min(low for low, _, _, _ in bounds)
                envelope_high = max(high for _, high, _, _ in bounds)
                envelope = (values >= envelope_low) & (values <= envelope_high)
                scan_values = values[envelope]
                scan_oids = heads[envelope]
                extracted = []
                for low, high, include_low, include_high in bounds:
                    mask = (scan_values >= low) if include_low else (scan_values > low)
                    mask &= (scan_values <= high) if include_high else (scan_values < high)
                    extracted.append(scan_oids[mask])
                plan_text = (
                    f"# batched shared scan of {table}.{column} "
                    f"[{envelope_low:g}, {envelope_high:g}]"
                )
            else:
                # Disjoint ranges present: sort the column once, then each
                # member is two binary-search probes — no envelope over-scan.
                order = np.argsort(values, kind="stable")
                sorted_values = values[order]
                lows = np.asarray([low for low, _ in half_open], dtype=np.float64)
                highs = np.asarray([high for _, high in half_open], dtype=np.float64)
                los = sorted_probe_many(sorted_values, lows, side="left")
                his = sorted_probe_many(sorted_values, highs, side="left")
                extracted = [
                    heads[order[lo:hi]] for lo, hi in zip(los.tolist(), his.tolist())
                ]
                plan_text = (
                    f"# batched sort-and-probe on {table}.{column} "
                    f"({len(members)} queries)"
                )
            selection_seconds = time.perf_counter() - started
            adaptation_seconds = 0.0

        share = 1.0 / len(members)
        column_arrays: dict[str, np.ndarray] = {}
        results: list[QueryResult] = []
        for (sql, spec), oids in zip(members, extracted):
            columns: dict[str, np.ndarray] = {}
            for name in spec.projected:
                if name not in column_arrays:
                    column_arrays[name] = self.catalog.column(table, name).bind(0).tail
                columns[name] = column_arrays[name][oids]
            results.append(
                QueryResult(
                    sql=sql,
                    columns=columns,
                    plan_text=plan_text,
                    selection_seconds=selection_seconds * share,
                    adaptation_seconds=adaptation_seconds * share,
                    cache_level="batched",
                    plan_cache_hits=self.plan_cache.hits,
                    plan_cache_misses=self.plan_cache.misses,
                    batched=True,
                    profile=QueryProfile(cold=False),
                )
            )
        total_share = (time.perf_counter() - total_started) * share
        for result in results:
            result.total_seconds = total_share
            result.profile.execute_seconds = total_share
        return results

    # -- adaptation accounting ------------------------------------------------------------

    def _adaptive_counters(self) -> dict[tuple[str, str], int]:
        """Number of recorded queries per adaptive column (to detect activity)."""
        counters = {}
        for handle in self.bpm.iter_handles():
            history = handle.adaptive.history
            counters[(handle.table, handle.column)] = len(history) if history else 0
        return counters

    def _adaptive_delta(self, before: dict[tuple[str, str], int]) -> tuple[float, float]:
        """Selection/adaptation seconds spent by adaptive columns in this query."""
        selection = 0.0
        adaptation = 0.0
        for handle in self.bpm.iter_handles():
            history = handle.adaptive.history
            if history is None:
                continue
            start = before.get((handle.table, handle.column), 0)
            for stats in history[start:]:
                selection += stats.selection_seconds
                adaptation += stats.adaptation_seconds
        return selection, adaptation

    def last_adaptive_stats(self, table: str, column: str) -> QueryStats | None:
        """Per-query stats of the most recent adaptive selection on a column."""
        return self.adaptive_handle(table, column).last_query_stats
