"""The database façade: schema, loading, SQL execution, adaptive indexing."""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.accounting import QueryStats
from repro.core.models import SegmentationModel, model_from_name
from repro.engine.execution import ExecutionContext
from repro.engine.result import QueryResult
from repro.mal.interpreter import Interpreter
from repro.mal.modules import default_registry
from repro.mal.program import MALProgram
from repro.optimizer.bpm import AdaptiveColumnHandle, BatPartitionManager
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.rules import merge_duplicate_binds, remove_dead_code
from repro.optimizer.segment_optimizer import SegmentOptimizer
from repro.sql.compiler import SQLCompiler
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.util.units import KB


class Database:
    """A self-organizing column-store database instance.

    Typical usage::

        db = Database()
        db.create_table("p", {"objid": "int64", "ra": "float64"})
        db.bulk_load("p", {"objid": objids, "ra": ra_values})
        db.enable_adaptive_segmentation("p", "ra", model="apm",
                                        m_min=1 * MB, m_max=5 * MB)
        result = db.execute("SELECT objid FROM p WHERE ra BETWEEN 205.1 AND 205.12")
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.bpm = BatPartitionManager(self.catalog)
        self.registry = default_registry()
        self.registry.register_module("bpm", self.bpm.mal_module())
        self.compiler = SQLCompiler(self.catalog)
        self.segment_optimizer = SegmentOptimizer(self.catalog, self.bpm)
        self.optimizer = OptimizerPipeline(
            [merge_duplicate_binds, self.segment_optimizer, remove_dead_code]
        )
        self.interpreter = Interpreter(self.registry)
        self.query_history: list[QueryResult] = []

    # -- schema and data -----------------------------------------------------

    def create_table(self, name: str, columns: dict[str, Any]) -> None:
        """Create a table from a ``{column: dtype}`` mapping."""
        self.catalog.create_table(name.lower(), {col.lower(): dtype for col, dtype in columns.items()})

    def drop_table(self, name: str) -> None:
        """Drop a table and any adaptive state attached to its columns."""
        name = name.lower()
        for handle in list(self.bpm.handles()):
            if handle.table == name:
                self.bpm.disable(handle.table, handle.column)
        self.catalog.drop_table(name)

    def bulk_load(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Load aligned arrays into a freshly created table."""
        self.catalog.table(table.lower()).bulk_load(
            {col.lower(): np.asarray(values) for col, values in data.items()}
        )

    def insert(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Append rows through the insert-delta BATs."""
        self.catalog.table(table.lower()).insert(
            {col.lower(): np.asarray(values) for col, values in data.items()}
        )

    def delete(self, table: str, oids: np.ndarray) -> None:
        """Mark rows (by oid) as deleted."""
        self.catalog.table(table.lower()).delete(oids)

    def table_names(self) -> list[str]:
        """All tables in the catalog."""
        return self.catalog.table_names

    # -- adaptive indexing administration ------------------------------------------

    def enable_adaptive_segmentation(
        self,
        table: str,
        column: str,
        *,
        model: str | SegmentationModel = "apm",
        m_min: float = 3 * KB,
        m_max: float = 12 * KB,
        seed: int | None = None,
    ) -> AdaptiveColumnHandle:
        """Hand a column to the BPM for in-place adaptive segmentation."""
        return self._enable(table, column, "segmentation", model, m_min, m_max, seed, None)

    def enable_adaptive_replication(
        self,
        table: str,
        column: str,
        *,
        model: str | SegmentationModel = "apm",
        m_min: float = 3 * KB,
        m_max: float = 12 * KB,
        seed: int | None = None,
        storage_budget: float | None = None,
    ) -> AdaptiveColumnHandle:
        """Hand a column to the BPM for adaptive replication."""
        return self._enable(
            table, column, "replication", model, m_min, m_max, seed, storage_budget
        )

    def disable_adaptive(self, table: str, column: str) -> None:
        """Return a column to plain positional organisation."""
        self.bpm.disable(table.lower(), column.lower())

    def adaptive_handle(self, table: str, column: str) -> AdaptiveColumnHandle:
        """The BPM handle of an adaptive column (for inspection)."""
        return self.bpm.handle(table.lower(), column.lower())

    def _enable(
        self,
        table: str,
        column: str,
        strategy: str,
        model: str | SegmentationModel,
        m_min: float,
        m_max: float,
        seed: int | None,
        storage_budget: float | None,
    ) -> AdaptiveColumnHandle:
        table = table.lower()
        column = column.lower()
        stored = self.catalog.column(table, column)
        values = stored.merge_deltas()
        if values.size == 0:
            raise ValueError(
                f"cannot enable adaptive organisation on empty column {table}.{column}"
            )
        if isinstance(model, str):
            model = model_from_name(model, m_min=m_min, m_max=m_max, seed=seed)
        return self.bpm.enable(table, column, strategy=strategy, model=model, values=values,
                               storage_budget=storage_budget)

    # -- query execution ----------------------------------------------------------------

    def compile(self, sql: str) -> MALProgram:
        """Parse and compile a query without optimizing or running it."""
        return self.compiler.compile(parse(sql))

    def explain(self, sql: str) -> str:
        """The optimized MAL plan in concrete syntax (like ``EXPLAIN``)."""
        return self.optimizer.optimize(self.compile(sql)).render()

    def execute(self, sql: str) -> QueryResult:
        """Parse, compile, optimize and run a query."""
        total_started = time.perf_counter()
        program = self.compile(sql)
        optimizer_started = time.perf_counter()
        optimized = self.optimizer.optimize(program)
        optimizer_seconds = time.perf_counter() - optimizer_started

        context = ExecutionContext(catalog=self.catalog)
        adaptive_before = self._adaptive_counters()
        self.interpreter.run(optimized, context)
        selection_seconds, adaptation_seconds = self._adaptive_delta(adaptive_before)

        result = QueryResult(
            sql=sql,
            columns=context.exported_columns(),
            scalars=dict(context.scalars),
            plan_text=optimized.render(),
            total_seconds=time.perf_counter() - total_started,
            selection_seconds=selection_seconds,
            adaptation_seconds=adaptation_seconds,
            optimizer_seconds=optimizer_seconds,
        )
        self.query_history.append(result)
        return result

    # -- adaptation accounting ------------------------------------------------------------

    def _adaptive_counters(self) -> dict[tuple[str, str], int]:
        """Number of recorded queries per adaptive column (to detect activity)."""
        counters = {}
        for handle in self.bpm.handles():
            history = handle.adaptive.history
            counters[(handle.table, handle.column)] = len(history) if history else 0
        return counters

    def _adaptive_delta(self, before: dict[tuple[str, str], int]) -> tuple[float, float]:
        """Selection/adaptation seconds spent by adaptive columns in this query."""
        selection = 0.0
        adaptation = 0.0
        for handle in self.bpm.handles():
            history = handle.adaptive.history
            if history is None:
                continue
            start = before.get((handle.table, handle.column), 0)
            for stats in list(history)[start:]:
                selection += stats.selection_seconds
                adaptation += stats.adaptation_seconds
        return selection, adaptation

    def last_adaptive_stats(self, table: str, column: str) -> QueryStats | None:
        """Per-query stats of the most recent adaptive selection on a column."""
        return self.adaptive_handle(table, column).last_query_stats
