"""The execution context shared by MAL module functions during one query."""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Any

import numpy as np

from repro.storage.bat import BAT
from repro.storage.catalog import Catalog

#: How many spent result-set containers a context keeps for reuse.
_SCRATCH_LIMIT = 8


@dataclass
class _ResultSet:
    """Columns accumulated by ``sql.resultSet`` / ``sql.rsColumn``."""

    columns: dict[str, BAT] = field(default_factory=dict)
    exported: bool = False


@dataclass
class ExecutionContext:
    """Mutable per-query state visible to MAL module implementations.

    The interpreter stores the variable environment here; the ``sql`` module
    functions accumulate result sets and exported scalars; the BPM is reached
    through its own registered module and needs no direct slot.

    Contexts are reusable: the database keeps a small pool and calls
    :meth:`reset` between queries, so the warm execution path allocates no
    fresh per-query containers (spent result sets are kept as scratch and
    recycled by :meth:`new_result_set`).
    """

    catalog: Catalog
    variables: dict[str, Any] = field(default_factory=dict)
    result_sets: dict[int, _ResultSet] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    _next_result_set: int = 1
    _scratch: list[_ResultSet] = field(default_factory=list, repr=False)

    # -- result-set protocol used by the sql module ---------------------------

    def new_result_set(self) -> int:
        """Allocate a fresh result-set id (recycling a scratch container)."""
        result_set_id = self._next_result_set
        self._next_result_set += 1
        if self._scratch:
            result_set = self._scratch.pop()
            result_set.columns.clear()
            result_set.exported = False
        else:
            result_set = _ResultSet()
        self.result_sets[result_set_id] = result_set
        return result_set_id

    def add_result_column(self, result_set_id: int, name: str, bat: BAT) -> None:
        """Attach one output column to a result set."""
        if result_set_id not in self.result_sets:
            raise KeyError(f"unknown result set {result_set_id}")
        self.result_sets[result_set_id].columns[name] = bat

    def export_result(self, result_set_id: int) -> None:
        """Mark a result set as the query output."""
        if result_set_id not in self.result_sets:
            raise KeyError(f"unknown result set {result_set_id}")
        self.result_sets[result_set_id].exported = True

    def export_scalar(self, name: str, value: Any) -> None:
        """Record an aggregate output value, coerced to ``float``.

        Anything non-numeric is a bug in the producing MAL operator, so it
        raises immediately instead of leaking an unconverted object into the
        result (booleans and numpy scalar types are numeric and coerce).
        """
        if isinstance(value, (Real, np.floating, np.integer, np.bool_)):
            self.scalars[name] = float(value)
            return
        raise TypeError(
            f"aggregate {name!r} produced non-numeric value {value!r} "
            f"({type(value).__name__})"
        )

    # -- accessors used by the engine -----------------------------------------------

    def exported_columns(self) -> dict[str, np.ndarray]:
        """The columns of the exported result set as numpy arrays."""
        for result_set in self.result_sets.values():
            if result_set.exported:
                return {name: bat.tail.copy() for name, bat in result_set.columns.items()}
        return {}

    # -- pooling --------------------------------------------------------------------

    def reset(self) -> None:
        """Make the context reusable for the next query.

        Spent result-set containers move to the scratch list (bounded) so the
        next query's ``sql.resultSet`` reuses them instead of allocating.
        """
        if self.result_sets:
            free = _SCRATCH_LIMIT - len(self._scratch)
            if free > 0:
                self._scratch.extend(list(self.result_sets.values())[:free])
            self.result_sets.clear()
        self.scalars.clear()
        self.variables = {}
        self._next_result_set = 1
