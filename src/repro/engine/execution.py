"""The execution context shared by MAL module functions during one query."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.storage.bat import BAT
from repro.storage.catalog import Catalog


@dataclass
class _ResultSet:
    """Columns accumulated by ``sql.resultSet`` / ``sql.rsColumn``."""

    columns: dict[str, BAT] = field(default_factory=dict)
    exported: bool = False


@dataclass
class ExecutionContext:
    """Mutable per-query state visible to MAL module implementations.

    The interpreter stores the variable environment here; the ``sql`` module
    functions accumulate result sets and exported scalars; the BPM is reached
    through its own registered module and needs no direct slot.
    """

    catalog: Catalog
    variables: dict[str, Any] = field(default_factory=dict)
    result_sets: dict[int, _ResultSet] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    _next_result_set: int = 1

    # -- result-set protocol used by the sql module ---------------------------

    def new_result_set(self) -> int:
        """Allocate a fresh result-set id."""
        result_set_id = self._next_result_set
        self._next_result_set += 1
        self.result_sets[result_set_id] = _ResultSet()
        return result_set_id

    def add_result_column(self, result_set_id: int, name: str, bat: BAT) -> None:
        """Attach one output column to a result set."""
        if result_set_id not in self.result_sets:
            raise KeyError(f"unknown result set {result_set_id}")
        self.result_sets[result_set_id].columns[name] = bat

    def export_result(self, result_set_id: int) -> None:
        """Mark a result set as the query output."""
        if result_set_id not in self.result_sets:
            raise KeyError(f"unknown result set {result_set_id}")
        self.result_sets[result_set_id].exported = True

    def export_scalar(self, name: str, value: float) -> None:
        """Record an aggregate output value."""
        self.scalars[name] = float(value) if isinstance(value, (int, float, np.floating)) else value

    # -- accessors used by the engine -----------------------------------------------

    def exported_columns(self) -> dict[str, np.ndarray]:
        """The columns of the exported result set as numpy arrays."""
        for result_set in self.result_sets.values():
            if result_set.exported:
                return {name: bat.tail.copy() for name, bat in result_set.columns.items()}
        return {}
