"""Query results returned by the engine."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.profile import QueryProfile


@dataclass(slots=True)
class QueryResult:
    """The outcome of one SQL query.

    ``columns`` holds the projected columns as numpy arrays (empty for pure
    aggregate queries); ``scalars`` holds aggregate values keyed by their
    label (e.g. ``"count(*)"``).  On the prepared path ``sql`` is the
    placeholder text and ``parameters`` carries the bound values (in
    placeholder-position order), so ``query_history`` keeps enough to
    reconstruct what each execution actually asked.  The timing fields separate the work spent in
    plain query processing from the work spent adapting the storage layout,
    which is the split Figure 10 of the paper reports.

    ``plan_cache_hit`` records whether the plan was served from the database's
    plan cache, and ``cache_level`` names the level that answered it —
    ``"exact"`` (normalized text), ``"masked"`` (literal-masked text),
    ``"shape"`` (parsed shape), ``"prepared"`` (placeholder-shape binding,
    the client API's prepared path), ``"batched"`` (the shared-scan path),
    ``"snapshot"`` (a bound range select answered against a pinned index
    snapshot by ``execute_readonly`` / the ``execute_wave`` reader pool) or
    ``"cold"`` (nothing hit; the plan was compiled for this query).
    ``plan_cache_hits``/``plan_cache_misses`` are the cache's cumulative
    counters at the time this query finished; ``batched`` marks results
    answered by the vectorized batch executor of ``execute_many`` /
    ``executemany``.  ``profile`` carries the per-stage wall-clock split and
    per-opcode execution counters; on the batched path it is a warm profile
    whose ``execute`` stage holds this member's share of the batch cost (the
    batch bypasses plan execution, so the other stages and the opcode
    counters are zero).
    """

    sql: str
    parameters: tuple[float, ...] = ()
    columns: dict[str, np.ndarray] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    plan_text: str = ""
    total_seconds: float = 0.0
    selection_seconds: float = 0.0
    adaptation_seconds: float = 0.0
    optimizer_seconds: float = 0.0
    plan_cache_hit: bool = False
    cache_level: str = "cold"
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    batched: bool = False
    profile: QueryProfile | None = None

    @property
    def row_count(self) -> int:
        """Number of result rows (0 for aggregate-only results)."""
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).size)

    @property
    def column_names(self) -> list[str]:
        """The projected column names in output order."""
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        """One projected column by name.

        A missing name raises the client API's ``ProgrammingError``, matching
        :meth:`scalar` — the two accessors share one exception contract.
        """
        try:
            return self.columns[name]
        except KeyError as exc:
            from repro.api.exceptions import ProgrammingError

            raise ProgrammingError(
                f"result has no column {name!r}; available: {self.column_names}"
            ) from exc

    def scalar(self, label: str) -> float:
        """One aggregate value by label, e.g. ``result.scalar("count(*)")``.

        A missing label raises the client API's ``ProgrammingError`` (matching
        the strictness of ``ExecutionContext.export_scalar`` on the producing
        side) rather than a bare ``KeyError``.
        """
        try:
            return self.scalars[label]
        except KeyError as exc:
            # Imported lazily: repro.api imports the engine at module level.
            from repro.api.exceptions import ProgrammingError

            raise ProgrammingError(
                f"result has no aggregate {label!r}; available: {sorted(self.scalars)}"
            ) from exc

    def to_rows(self, limit: int | None = None) -> list[tuple]:
        """The result as a list of tuples (for display and tests)."""
        if not self.columns:
            return []
        arrays = list(self.columns.values())
        count = arrays[0].size if limit is None else min(limit, arrays[0].size)
        return [tuple(array[i] for array in arrays) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.scalars:
            return f"QueryResult(scalars={self.scalars})"
        return f"QueryResult(rows={self.row_count}, columns={self.column_names})"
