"""An LRU cache of compiled plans, keyed by query shape and by SQL text.

Parsing, compiling, optimizing and lowering a statement is pure per-statement
work that the hot query path would otherwise repeat on every execution.  The
database short-circuits it with two key levels sharing one LRU store:

* ``("shape", shape)`` → :class:`CachedPlan` — the specialized
  :class:`~repro.mal.compiled.CompiledPlan` for one query *shape* (the
  statement with its range literals lifted into parameters by
  :func:`repro.sql.parameters.parameterize`).  All queries that differ only in
  their constants — the common case for the paper's Fig 5–7 workloads — share
  this entry; only a parse is needed to reach it.
* ``("sql", normalized_text)`` → :class:`BoundPlan` — the shape's plan plus
  the pre-extracted parameter values for one exact statement text, so
  repeating the identical query skips even the parse.
* ``("prepared", normalized_text)`` → :class:`PreparedPlan` — the
  placeholder-shape level of the client API: the normalized text *with its
  ``?``/``:name`` placeholders* keys the lowered plan plus the pre-resolved
  binding template (environment slots, arity, range checks).  Executing
  through it skips the parse **and** the literal masking — binding validates
  ``high >= low``, arity and numeric type against the template and seeds the
  slot environment directly.

Plans depend on the catalog schema and on which columns the BPM manages (the
segment optimizer rewrites selections on managed columns), so the database
clears the cache whenever either changes.  Externally-held prepared handles
survive a clear via the monotonically increasing :attr:`PlanCache.generation`:
a handle lowered under an older generation is re-prepared instead of served
stale.  Data changes (inserts, deletes) do *not* invalidate: ``sql.bind``
resolves BATs at execution time, and compiled plans hold pre-resolved module
callables, not data.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.mal.compiled import CompiledPlan
from repro.sql.ast import SelectStatement
from repro.sql.parameters import BindingSpec


def normalize_sql(sql: str) -> str:
    """The text-level cache key for a statement: whitespace-collapsed, case-folded.

    The supported SQL subset has no string literals, so case-folding the whole
    statement is safe and makes ``SELECT X FROM T`` and ``select x from t``
    share one plan.
    """
    return " ".join(sql.split()).lower()


@dataclass(frozen=True)
class CachedPlan:
    """One query shape's executable plan plus its pre-rendered text."""

    compiled: CompiledPlan
    text: str


@dataclass(frozen=True)
class BoundPlan:
    """A cached plan bound to one statement's parameter values."""

    plan: CachedPlan
    arguments: dict[str, float]


@dataclass(frozen=True)
class TextShapePlan:
    """A plan reachable by masked SQL text alone (the parse-free fast path).

    ``parameter_count`` guards against masked-text collisions (it always
    equals the number of ``?`` in the key for installed entries, so texts
    containing literal ``?`` can never match); ``range_checks`` re-applies the
    ``high >= low`` validation the skipped parser would have performed.
    """

    plan: CachedPlan
    parameter_count: int
    range_checks: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class PreparedPlan:
    """A lowered plan plus its binding template (the prepared-statement level).

    ``sql`` is the normalized statement text *including placeholders* (the
    cache key, and what a stale handle re-prepares from); ``statement`` keeps
    the placeholder-parsed AST for the batched ``executemany`` clustering;
    ``binding`` validates client parameters; ``slots`` maps placeholder
    position → environment slot of the compiled plan (resolved once, at
    prepare time); ``generation`` is the cache generation the plan was lowered
    under — when it trails the cache's current generation the schema or an
    adaptive registration changed and the plan must be re-lowered.
    """

    sql: str
    plan: CachedPlan
    statement: SelectStatement
    binding: BindingSpec
    slots: tuple[int, ...]
    generation: int


@dataclass(frozen=True)
class PlanCacheStats:
    """A snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class PlanCacheLevelStats:
    """Hit/miss/eviction counters of one cache level (plus resident entries)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups at this level (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


#: Internal key prefixes mapped onto the public cache-level names surfaced on
#: ``QueryResult.cache_level`` (``"cold"``/``"batched"`` are outcomes, not
#: store levels, so they never appear here).
_LEVEL_NAMES = {
    "sql": "exact",
    "text-shape": "masked",
    "shape": "shape",
    "prepared": "prepared",
}


def _level_of(key: Hashable) -> str:
    """The raw level tag of a cache key (its tuple prefix).

    Kept deliberately cheap — this runs on every cache lookup of the warm
    query path.  Translation to the public level names happens once, in
    :meth:`PlanCache.level_stats`.
    """
    if type(key) is tuple and key:
        return key[0]
    return "other"


class PlanCache:
    """A bounded LRU mapping from hashable keys to cached plan entries.

    All levels share the one LRU store; per-level hit/miss/eviction counters
    (keyed by the public level names — ``exact``/``masked``/``shape``/
    ``prepared``) are kept alongside the totals for
    :meth:`~repro.engine.database.Database.cache_stats`.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"plan cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.generation = 0
        # level name -> [hits, misses, evictions]
        self._level_counters: dict[str, list[int]] = {}
        # One lock covers store and counters: reader threads resolving plans
        # concurrently with an owner-thread clear() must never observe a
        # half-updated LRU (OrderedDict.move_to_end is not atomic under
        # free-threaded builds, and counter increments race regardless).
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._plans)

    def _counters(self, level: str) -> list[int]:
        counters = self._level_counters.get(level)
        if counters is None:
            counters = self._level_counters[level] = [0, 0, 0]
        return counters

    def get(self, key: Hashable) -> Any | None:
        """The cached entry for ``key``, refreshing its recency; counts hit/miss."""
        with self._lock:
            plan = self._plans.get(key)
            # Inlined level tagging: this runs on every warm-path lookup.
            level = key[0] if type(key) is tuple and key else "other"
            counters = self._level_counters.get(level)
            if counters is None:
                counters = self._level_counters[level] = [0, 0, 0]
            if plan is None:
                self.misses += 1
                counters[1] += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            counters[0] += 1
            return plan

    def put(self, key: Hashable, plan: Any) -> None:
        """Store an entry, evicting the least recently used one when full."""
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                evicted_key, _ = self._plans.popitem(last=False)
                self.evictions += 1
                self._counters(_level_of(evicted_key))[2] += 1

    def level_stats(self) -> dict[str, PlanCacheLevelStats]:
        """Per-level counters, including levels that saw lookups but hold nothing.

        Keys are the public level names (``exact``/``masked``/``shape``/
        ``prepared``).  Entry counts are computed by a scan over the resident
        keys — this is an administrative surface, not a hot path.
        """
        with self._lock:
            entries: dict[str, int] = {}
            for key in self._plans:
                level = _level_of(key)
                entries[level] = entries.get(level, 0) + 1
            levels = sorted(self._level_counters.keys() | entries.keys())
            return {
                _LEVEL_NAMES.get(level, level): PlanCacheLevelStats(
                    hits=self._level_counters.get(level, [0, 0, 0])[0],
                    misses=self._level_counters.get(level, [0, 0, 0])[1],
                    evictions=self._level_counters.get(level, [0, 0, 0])[2],
                    entries=entries.get(level, 0),
                )
                for level in levels
            }

    def clear(self) -> None:
        """Drop every cached plan (schema or adaptive registration changed).

        Always advances :attr:`generation`: prepared handles held outside the
        cache (by :class:`~repro.api.PreparedStatement`) compare it to decide
        whether their lowered plan is stale — even when the store happened to
        be empty at clear time, the handles themselves may not be.
        """
        with self._lock:
            if self._plans:
                self.invalidations += 1
            self.generation += 1
            self._plans.clear()

    @property
    def stats(self) -> PlanCacheStats:
        """Current counters as an immutable snapshot."""
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
            size=len(self._plans),
            capacity=self.capacity,
        )
