"""An LRU cache of optimized MAL plans keyed by normalized SQL text.

Parsing, compiling and optimizing a statement is pure per-statement work that
the hot query path repeats on every execution.  The cache short-circuits it:
on a hit the stored optimized :class:`~repro.mal.program.MALProgram` is
re-interpreted directly (plans are immutable once optimized; per-query state
lives in the :class:`~repro.engine.execution.ExecutionContext`).

Plans depend on the catalog schema and on which columns the BPM manages (the
segment optimizer rewrites selections on managed columns), so the database
clears the cache whenever either changes.  Data changes (inserts, deletes)
do *not* invalidate: ``sql.bind`` resolves BATs at execution time.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.mal.program import MALProgram


def normalize_sql(sql: str) -> str:
    """The cache key for a statement: whitespace-collapsed, case-folded.

    The supported SQL subset has no string literals, so case-folding the whole
    statement is safe and makes ``SELECT X FROM T`` and ``select x from t``
    share one plan.
    """
    return " ".join(sql.split()).lower()


@dataclass(frozen=True)
class PlanCacheStats:
    """A snapshot of the cache counters."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class PlanCache:
    """A bounded LRU mapping from normalized SQL to optimized MAL plans."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"plan cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._plans: OrderedDict[str, MALProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: str) -> MALProgram | None:
        """The cached plan for ``key``, refreshing its recency; counts hit/miss."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._plans.move_to_end(key)
        self.hits += 1
        return plan

    def put(self, key: str, plan: MALProgram) -> None:
        """Store a plan, evicting the least recently used entry when full."""
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (schema or adaptive registration changed)."""
        if self._plans:
            self.invalidations += 1
        self._plans.clear()

    @property
    def stats(self) -> PlanCacheStats:
        """Current counters as an immutable snapshot."""
        return PlanCacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
            size=len(self._plans),
            capacity=self.capacity,
        )
