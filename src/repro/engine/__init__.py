"""The database engine façade.

Ties the substrates together into something a downstream user can drive:
create tables, bulk load numpy arrays, run SQL, and switch individual columns
to adaptive segmentation or replication with one call — after which every
subsequent query is transparently rewritten by the segment optimizer, exactly
as the paper integrates self-organization "completely transparently for the
SQL front-end".
"""

from repro.engine.database import Database
from repro.engine.execution import ExecutionContext
from repro.engine.plan_cache import (
    BoundPlan,
    CachedPlan,
    PlanCache,
    PlanCacheStats,
    PreparedPlan,
    normalize_sql,
)
from repro.engine.profile import QueryProfile
from repro.engine.result import QueryResult
from repro.engine.session import Session

__all__ = [
    "BoundPlan",
    "CachedPlan",
    "Database",
    "ExecutionContext",
    "PlanCache",
    "PlanCacheStats",
    "PreparedPlan",
    "QueryProfile",
    "QueryResult",
    "Session",
    "normalize_sql",
]
