"""Per-stage query profiling.

Every :class:`~repro.engine.result.QueryResult` carries a :class:`QueryProfile`
splitting the query's wall-clock time into the pipeline stages —

* ``parse``    — SQL text → AST, plus parameter extraction;
* ``optimize`` — the tactical MAL→MAL optimizer pipeline;
* ``compile``  — SQL→MAL code generation *and* the one-time lowering of the
  optimized program into a slot-based :class:`~repro.mal.compiled.CompiledPlan`;
* ``execute``  — running the (compiled) plan, including any piggy-backed
  adaptation work;

— plus per-opcode execution counters from the compiled plan.  On a warm query
(``cold`` is False) the optimize and compile stages are zero because the
cached plan was reused; parse is also zero when the exact SQL text hit the
first-level cache.  The profiler exists so every perf change can be attributed
to a stage instead of argued about (cf. KnobCF/IWEK: you cannot tune what you
cannot attribute).
"""

from __future__ import annotations

#: Stage names in pipeline order (the keys of :meth:`QueryProfile.stage_seconds`).
STAGES = ("parse", "optimize", "compile", "execute")


class QueryProfile:
    """Wall-clock seconds per pipeline stage plus per-opcode counters.

    The per-opcode aggregation is lazy: the executor attaches its raw
    per-instruction counter array via :meth:`attach_counters` and the
    ``module.function → count`` mapping is materialized on first access of
    :attr:`opcode_counts` — profiling costs the hot path one list increment
    per executed instruction, nothing more.
    """

    __slots__ = (
        "parse_seconds",
        "optimize_seconds",
        "compile_seconds",
        "execute_seconds",
        "cold",
        "_plan",
        "_counts",
        "_opcode_counts",
    )

    def __init__(
        self,
        parse_seconds: float = 0.0,
        optimize_seconds: float = 0.0,
        compile_seconds: float = 0.0,
        execute_seconds: float = 0.0,
        cold: bool = True,
        opcode_counts: dict[str, int] | None = None,
    ) -> None:
        self.parse_seconds = parse_seconds
        self.optimize_seconds = optimize_seconds
        self.compile_seconds = compile_seconds
        self.execute_seconds = execute_seconds
        self.cold = cold
        self._plan = None
        self._counts: list[int] | None = None
        self._opcode_counts = opcode_counts

    def attach_counters(self, plan, counts: list[int]) -> None:
        """Attach a compiled plan's raw per-instruction execution counters."""
        self._plan = plan
        self._counts = counts
        self._opcode_counts = None

    @property
    def opcode_counts(self) -> dict[str, int]:
        """Executed-instruction counts aggregated by callee (lazy)."""
        if self._opcode_counts is None:
            if self._plan is not None and self._counts is not None:
                self._opcode_counts = self._plan.opcode_counts(self._counts)
            else:
                self._opcode_counts = {}
        return self._opcode_counts

    @property
    def plan_seconds(self) -> float:
        """Everything before execution: parse + optimize + compile."""
        return self.parse_seconds + self.optimize_seconds + self.compile_seconds

    @property
    def total_seconds(self) -> float:
        """Sum over all profiled stages."""
        return self.plan_seconds + self.execute_seconds

    def stage_seconds(self) -> dict[str, float]:
        """The per-stage split as a mapping, in pipeline order."""
        return {
            "parse": self.parse_seconds,
            "optimize": self.optimize_seconds,
            "compile": self.compile_seconds,
            "execute": self.execute_seconds,
        }

    def format(self) -> str:
        """A terminal-friendly rendering (see README: reading profiler output)."""
        temperature = "cold" if self.cold else "warm"
        lines = [f"-- query profile ({temperature}) --"]
        for stage, seconds in self.stage_seconds().items():
            lines.append(f"  {stage:<8s} {seconds * 1e6:10.1f} µs")
        lines.append(f"  {'total':<8s} {self.total_seconds * 1e6:10.1f} µs")
        if self.opcode_counts:
            ordered = sorted(self.opcode_counts.items(), key=lambda item: (-item[1], item[0]))
            rendered = ", ".join(f"{callee}×{count}" for callee, count in ordered)
            lines.append(f"  opcodes  {rendered}")
        return "\n".join(lines)
