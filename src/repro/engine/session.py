"""A lightweight session wrapper around :class:`~repro.engine.database.Database`.

Sessions add per-client conveniences the examples use: query timing history,
a tabular pretty-printer and cumulative adaptation/selection summaries —
essentially the measurements harvested for Figures 10-16 when driving the
prototype with a workload.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.engine.database import Database
from repro.engine.result import QueryResult


@dataclass
class SessionTimings:
    """Aggregated per-session timing counters."""

    queries: int = 0
    total_seconds: float = 0.0
    selection_seconds: float = 0.0
    adaptation_seconds: float = 0.0

    def record(self, result: QueryResult) -> None:
        self.queries += 1
        self.total_seconds += result.total_seconds
        self.selection_seconds += result.selection_seconds
        self.adaptation_seconds += result.adaptation_seconds

    @property
    def average_milliseconds(self) -> float:
        """Mean per-query wall-clock time in milliseconds."""
        if not self.queries:
            return 0.0
        return 1000.0 * self.total_seconds / self.queries


class Session:
    """One client connection to a database instance."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database if database is not None else Database()
        self.timings = SessionTimings()
        self.results: list[QueryResult] = []

    def execute(self, sql: str) -> QueryResult:
        """Run a query, keeping per-session history and timing totals."""
        result = self.database.execute(sql)
        self.results.append(result)
        self.timings.record(result)
        return result

    def execute_many(self, statements: list[str], *, batch: bool = True) -> list[QueryResult]:
        """Run a list of queries in order through the vectorized batch executor.

        Same-column range selections — overlapping and disjoint alike — are
        grouped and answered by one vectorized kernel pass (see
        :meth:`Database.execute_many`); per-session history and timing totals
        are updated for every result.
        """
        results = self.database.execute_many(statements, batch=batch)
        for result in results:
            self.results.append(result)
            self.timings.record(result)
        return results

    def executemany(self, statements: list[str]) -> list[QueryResult]:
        """Deprecated alias of ``execute_many(statements, batch=False)``.

        Kept on the original per-query contract (real per-query timings and
        plans).  New code should use the DB-API surface —
        ``repro.connect().cursor().executemany(sql, seq_of_params)`` — or
        :meth:`execute_many` for the shared-scan batching.
        """
        warnings.warn(
            "Session.executemany is deprecated; use execute_many(batch=False) "
            "or the repro.connect() cursor API",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute_many(statements, batch=False)

    @property
    def plan_cache_stats(self):
        """The database's plan-cache counters (hits, misses, hit ratio)."""
        return self.database.plan_cache.stats

    def format_result(self, result: QueryResult, *, limit: int = 10) -> str:
        """Render a result as a small fixed-width table (for the examples)."""
        if result.scalars:
            lines = [f"{label}: {value:g}" for label, value in result.scalars.items()]
            return "\n".join(lines)
        names = result.column_names
        if not names:
            return "(empty result)"
        header = " | ".join(f"{name:>12s}" for name in names)
        separator = "-+-".join("-" * 12 for _ in names)
        rows = result.to_rows(limit)
        body = "\n".join(" | ".join(f"{value!s:>12s}" for value in row) for row in rows)
        footer = "" if result.row_count <= limit else f"... ({result.row_count} rows total)"
        return "\n".join(part for part in (header, separator, body, footer) if part)

    def reset_timings(self) -> None:
        """Clear per-session counters (results are kept)."""
        self.timings = SessionTimings()
