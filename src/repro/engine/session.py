"""A lightweight session wrapper around :class:`~repro.engine.database.Database`.

Sessions add per-client conveniences the examples use: query timing history,
a tabular pretty-printer and cumulative adaptation/selection summaries —
essentially the measurements harvested for Figures 10-16 when driving the
prototype with a workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.engine.result import QueryResult


@dataclass
class SessionTimings:
    """Aggregated per-session timing counters."""

    queries: int = 0
    total_seconds: float = 0.0
    selection_seconds: float = 0.0
    adaptation_seconds: float = 0.0

    def record(self, result: QueryResult) -> None:
        self.queries += 1
        self.total_seconds += result.total_seconds
        self.selection_seconds += result.selection_seconds
        self.adaptation_seconds += result.adaptation_seconds

    @property
    def average_milliseconds(self) -> float:
        """Mean per-query wall-clock time in milliseconds."""
        if not self.queries:
            return 0.0
        return 1000.0 * self.total_seconds / self.queries


class Session:
    """One client connection to a database instance."""

    def __init__(self, database: Database | None = None) -> None:
        self.database = database if database is not None else Database()
        self.timings = SessionTimings()
        self.results: list[QueryResult] = []

    def execute(self, sql: str) -> QueryResult:
        """Run a query, keeping per-session history and timing totals."""
        result = self.database.execute(sql)
        self.results.append(result)
        self.timings.record(result)
        return result

    def executemany(self, statements: list[str]) -> list[QueryResult]:
        """Run a list of queries in order."""
        return [self.execute(sql) for sql in statements]

    def format_result(self, result: QueryResult, *, limit: int = 10) -> str:
        """Render a result as a small fixed-width table (for the examples)."""
        if result.scalars:
            lines = [f"{label}: {value:g}" for label, value in result.scalars.items()]
            return "\n".join(lines)
        names = result.column_names
        if not names:
            return "(empty result)"
        header = " | ".join(f"{name:>12s}" for name in names)
        separator = "-+-".join("-" * 12 for _ in names)
        rows = result.to_rows(limit)
        body = "\n".join(" | ".join(f"{value!s:>12s}" for value in row) for row in rows)
        footer = "" if result.row_count <= limit else f"... ({result.row_count} rows total)"
        return "\n".join(part for part in (header, separator, body, footer) if part)

    def reset_timings(self) -> None:
        """Clear per-session counters (results are kept)."""
        self.timings = SessionTimings()
