"""A synthetic stand-in for the SkyServer (SDSS) experiment data (paper §6.2).

The paper grounds its simulation with runs against a 100 GB sample of the
SDSS-4 database, selecting on the *right ascension* (``ra``) column of the
photo-object table ``P`` with 200-query workloads filtered from a one-month
SkyServer query log.  Neither the data nor the log is publicly redistributable
at that scale, and a 100 GB disk-bound working set is out of scope for a
pure-Python reproduction, so this module builds the closest synthetic
equivalent that exercises the same code path:

* a large ``float64`` ``ra`` column covering 0–360 degrees whose density
  follows the SDSS footprint shape (most objects concentrated in wide survey
  stripes, sparse elsewhere);
* three 200-query workloads with the structure described in the paper —
  *random* (uniform coverage of the footprint), *skewed* (two very limited
  areas) and *changing* (four phases of 50 queries each with a shifting point
  of access);
* APM bounds expressed as the same fraction of the column size that the paper
  used (1 MB/5 MB/25 MB against a ~1 GB column).

The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.units import GB, MB
from repro.util.validation import ensure_positive
from repro.workloads.generators import changing_workload, hotspot_workload, uniform_workload
from repro.workloads.query import Workload

#: Right ascension spans the full circle, in degrees.
RA_DOMAIN: tuple[float, float] = (0.0, 360.0)

#: The paper's ~1 GB ra column and its APM bounds; we keep the same ratios.
PAPER_COLUMN_BYTES = 1 * GB
PAPER_M_MIN = 1 * MB
PAPER_M_MAX_SMALL = 5 * MB
PAPER_M_MAX_LARGE = 25 * MB

#: Approximate centres (degrees) of dense SDSS survey stripes used to shape
#: the synthetic footprint.  The exact positions are irrelevant for the
#: reproduction; what matters is that density varies over the domain.
_STRIPE_CENTRES = (130.0, 150.0, 170.0, 185.0, 200.0, 215.0, 230.0, 250.0, 10.0, 350.0)
_STRIPE_WIDTH_DEGREES = 12.0


@dataclass
class SkyServerDataset:
    """A synthetic SkyServer-style column plus its scaled APM bounds."""

    ra: np.ndarray
    domain: tuple[float, float]
    m_min: float
    m_max_small: float
    m_max_large: float

    @property
    def column_bytes(self) -> int:
        """Size of the ra column payload in bytes."""
        return int(self.ra.size * self.ra.dtype.itemsize)

    def scaled_bound(self, paper_bytes: float) -> float:
        """Scale one of the paper's byte bounds to this column's size."""
        return paper_bytes * self.column_bytes / PAPER_COLUMN_BYTES


def skyserver_column(
    n_values: int = 2_000_000,
    *,
    seed: int | None = None,
    footprint_fraction: float = 0.8,
) -> np.ndarray:
    """Generate a synthetic right-ascension column.

    ``footprint_fraction`` of the objects fall inside the dense survey
    stripes (normal blobs around the stripe centres); the remainder is spread
    uniformly, mimicking sparse regions of the sky.
    """
    ensure_positive("n_values", n_values)
    rng = make_rng(seed)
    n_footprint = int(n_values * footprint_fraction)
    n_uniform = n_values - n_footprint
    centres = rng.choice(np.asarray(_STRIPE_CENTRES), size=n_footprint)
    footprint = rng.normal(loc=centres, scale=_STRIPE_WIDTH_DEGREES / 2.0)
    uniform = rng.uniform(RA_DOMAIN[0], RA_DOMAIN[1], size=n_uniform)
    ra = np.concatenate([footprint, uniform])
    ra = np.mod(ra, RA_DOMAIN[1])
    rng.shuffle(ra)
    return ra.astype(np.float64)


def skyserver_dataset(
    n_values: int = 2_000_000,
    *,
    seed: int | None = None,
) -> SkyServerDataset:
    """The synthetic column together with proportionally scaled APM bounds."""
    ra = skyserver_column(n_values, seed=seed)
    column_bytes = ra.size * ra.dtype.itemsize
    scale = column_bytes / PAPER_COLUMN_BYTES
    return SkyServerDataset(
        ra=ra,
        domain=RA_DOMAIN,
        m_min=PAPER_M_MIN * scale,
        m_max_small=PAPER_M_MAX_SMALL * scale,
        m_max_large=PAPER_M_MAX_LARGE * scale,
    )


#: Default query selectivity per workload kind.  SkyServer spatial searches
#: select narrow right-ascension stripes; the random sample uses somewhat
#: wider searches so that 200 queries cover the footprint (as in the paper,
#: where the random workload "covers the attribute domain uniformly").
_DEFAULT_SELECTIVITY = {"random": 0.01, "skewed": 0.002, "skew": 0.002, "changing": 0.005}


def skyserver_workload(
    kind: str,
    n_queries: int = 200,
    *,
    selectivity: float | None = None,
    seed: int | None = None,
) -> Workload:
    """One of the three SkyServer workloads of §6.2.

    ``kind`` is ``"random"``, ``"skewed"`` or ``"changing"``:

    * *random* — picks query positions uniformly over the whole domain, like
      the paper's one-out-of-every-300-log-queries sample;
    * *skewed* — 200 subsequent queries accessing two very limited areas;
    * *changing* — four phases of 50 queries with a changing point of access.

    ``selectivity`` defaults to a per-kind value mirroring the narrow spatial
    searches of the SkyServer log (fractions of a degree of right ascension
    for the skewed log slice, a few degrees for the random sample).
    """
    ensure_positive("n_queries", n_queries)
    key = kind.strip().lower()
    if selectivity is None:
        selectivity = _DEFAULT_SELECTIVITY.get(key, 0.005)
    if key == "random":
        return uniform_workload(
            n_queries, RA_DOMAIN, selectivity, seed=seed, name="skyserver-random"
        )
    if key in {"skew", "skewed"}:
        return hotspot_workload(
            n_queries,
            RA_DOMAIN,
            selectivity,
            n_hotspots=2,
            hotspot_fraction=0.01,
            seed=seed,
            name="skyserver-skewed",
        )
    if key == "changing":
        return changing_workload(
            n_queries,
            RA_DOMAIN,
            selectivity,
            n_phases=4,
            phase_fraction=0.03,
            seed=seed,
            name="skyserver-changing",
        )
    raise ValueError(f"unknown SkyServer workload kind {kind!r}")
