"""Workload generation: range-query streams and synthetic columns.

The simulation experiments (§6.1) use uniform and Zipf-distributed range
queries with fixed selectivity over an integer column; the prototype
experiments (§6.2) replay SkyServer-style *random*, *skewed* and *changing*
workloads against a large real-valued right-ascension column.  Both are
generated here.
"""

from repro.workloads.query import RangeQuery, Workload
from repro.workloads.generators import (
    WorkloadSpec,
    changing_workload,
    drifting_mix_workload,
    hotspot_workload,
    mixed_workload,
    multimodal_workload,
    make_column,
    uniform_workload,
    update_heavy_workload,
    zipf_workload,
)
from repro.workloads.replay import load_workload, save_workload
from repro.workloads.skyserver import (
    SkyServerDataset,
    skyserver_column,
    skyserver_dataset,
    skyserver_workload,
)

__all__ = [
    "RangeQuery",
    "Workload",
    "WorkloadSpec",
    "changing_workload",
    "drifting_mix_workload",
    "hotspot_workload",
    "make_column",
    "mixed_workload",
    "multimodal_workload",
    "uniform_workload",
    "update_heavy_workload",
    "zipf_workload",
    "load_workload",
    "save_workload",
    "SkyServerDataset",
    "skyserver_column",
    "skyserver_dataset",
    "skyserver_workload",
]
