"""Saving and replaying query logs.

The paper's §6.2 workloads are filtered from a real one-month SkyServer query
log.  To let users of this library do the same with their own traces, this
module round-trips workloads through a small CSV format (one query per line:
``low,high``) so a trace captured from a production system can be replayed
against any of the adaptive strategies or the SQL engine.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.workloads.query import RangeQuery, Workload


def save_workload(workload: Workload, path: str | Path) -> Path:
    """Write a workload as CSV (header + one ``low,high`` row per query)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["low", "high"])
        for query in workload:
            writer.writerow([repr(float(query.low)), repr(float(query.high))])
    return path


def load_workload(
    path: str | Path,
    *,
    name: str | None = None,
    domain: tuple[float, float] | None = None,
) -> Workload:
    """Read a workload saved by :func:`save_workload` (or any ``low,high`` CSV).

    ``domain`` defaults to the smallest range containing every query, which is
    what the adaptive strategies need when the original attribute domain is
    unknown.
    """
    path = Path(path)
    queries: list[RangeQuery] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"workload file {path} is empty")
        if [column.strip().lower() for column in header[:2]] != ["low", "high"]:
            # Tolerate headerless files by treating the first row as data.
            queries.append(RangeQuery(float(header[0]), float(header[1])))
        for row in reader:
            if not row or not row[0].strip():
                continue
            queries.append(RangeQuery(float(row[0]), float(row[1])))
    if not queries:
        raise ValueError(f"workload file {path} contains no queries")
    if domain is None:
        domain = (min(q.low for q in queries), max(q.high for q in queries))
    return Workload(
        name=name or path.stem,
        queries=queries,
        domain=domain,
        description=f"replayed from {path.name} ({len(queries)} queries)",
    )
