"""Synthetic columns and range-query workload generators (paper §6.1).

The simulation experiments use a column of 100 K values drawn from a domain of
1 M distinct integers, probed by 10 K range queries with selectivity 0.1 or
0.01, whose positions are either uniformly distributed over the domain or
skewed (Zipf).  The *changing* and *hotspot* generators additionally model the
access patterns of the prototype experiments (§6.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng
from repro.util.stats import zipf_probabilities
from repro.util.validation import ensure_in_range, ensure_positive
from repro.workloads.query import RangeQuery, Workload

#: Parameters of the paper's simulation setup (§6.1).
PAPER_COLUMN_SIZE = 100_000
PAPER_DOMAIN_SIZE = 1_000_000
PAPER_QUERY_COUNT = 10_000


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a workload, used by the benchmark harness."""

    name: str
    distribution: str  # "uniform" | "zipf" | "changing" | "hotspot" | "multimodal"
    #   | "update_heavy" | "mixed" | "drifting_mix"
    selectivity: float
    n_queries: int
    zipf_exponent: float = 1.0
    seed: int | None = None

    def generate(self, domain: tuple[float, float]) -> Workload:
        """Materialise the workload over ``domain``."""
        if self.distribution == "uniform":
            return uniform_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "zipf":
            return zipf_workload(
                self.n_queries,
                domain,
                self.selectivity,
                exponent=self.zipf_exponent,
                seed=self.seed,
                name=self.name,
            )
        if self.distribution == "changing":
            return changing_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "hotspot":
            return hotspot_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "multimodal":
            return multimodal_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "update_heavy":
            return update_heavy_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "mixed":
            return mixed_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        if self.distribution == "drifting_mix":
            return drifting_mix_workload(
                self.n_queries, domain, self.selectivity, seed=self.seed, name=self.name
            )
        raise ValueError(f"unknown workload distribution {self.distribution!r}")


# ---------------------------------------------------------------------------
# Columns
# ---------------------------------------------------------------------------


def make_column(
    n_values: int = PAPER_COLUMN_SIZE,
    domain_size: int = PAPER_DOMAIN_SIZE,
    *,
    dtype: np.dtype | str = np.int32,
    seed: int | None = None,
) -> np.ndarray:
    """The paper's simulation column: ``n_values`` values from an integer domain.

    Values are drawn uniformly from ``[0, domain_size)`` and stored unsorted
    (positional order), exactly like a freshly bulk-loaded MonetDB BAT tail.
    """
    ensure_positive("n_values", n_values)
    ensure_positive("domain_size", domain_size)
    rng = make_rng(seed)
    values = rng.integers(0, domain_size, size=n_values)
    return values.astype(dtype)


# ---------------------------------------------------------------------------
# Query streams
# ---------------------------------------------------------------------------


def _query_width(domain: tuple[float, float], selectivity: float) -> float:
    low, high = domain
    width = (high - low) * selectivity
    if width <= 0:
        raise ValueError(
            f"selectivity {selectivity} over domain {domain} yields an empty query range"
        )
    return width


def _clip_query(center_low: float, width: float, domain: tuple[float, float]) -> RangeQuery:
    low_bound, high_bound = domain
    start = min(max(center_low, low_bound), high_bound - width)
    start = max(start, low_bound)
    return RangeQuery(start, min(start + width, high_bound))


def uniform_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    seed: int | None = None,
    name: str = "uniform",
) -> Workload:
    """Range queries whose positions are uniform over the attribute domain.

    Every query selects a contiguous range of width ``selectivity * |domain|``;
    with data values uniformly spread over the domain this yields the fraction
    of tuples the paper calls the *selectivity factor*.
    """
    ensure_positive("n_queries", n_queries)
    ensure_in_range("selectivity", selectivity, 0.0, 1.0)
    rng = make_rng(seed)
    low, high = domain
    width = _query_width(domain, selectivity)
    starts = rng.uniform(low, high - width, size=n_queries)
    queries = [_clip_query(start, width, domain) for start in starts]
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=f"{n_queries} uniform range queries, selectivity {selectivity}",
    )


def zipf_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    exponent: float = 1.0,
    n_buckets: int = 1_000,
    seed: int | None = None,
    name: str = "zipf",
) -> Workload:
    """Skewed range queries: positions follow a Zipf law over domain buckets.

    The domain is discretised into ``n_buckets`` buckets; bucket popularity is
    Zipf-distributed with the given exponent and bucket ranks are scattered
    over the domain by a seeded permutation, so the hot spots are not all at
    the domain boundary.  Within a bucket the query position is uniform.
    """
    ensure_positive("n_queries", n_queries)
    ensure_in_range("selectivity", selectivity, 0.0, 1.0)
    ensure_positive("n_buckets", n_buckets)
    rng = make_rng(seed)
    low, high = domain
    width = _query_width(domain, selectivity)
    probabilities = zipf_probabilities(n_buckets, exponent)
    bucket_positions = rng.permutation(n_buckets)
    chosen_ranks = rng.choice(n_buckets, size=n_queries, p=probabilities)
    bucket_width = (high - low) / n_buckets
    queries: list[RangeQuery] = []
    for rank in chosen_ranks:
        bucket = bucket_positions[rank]
        bucket_low = low + bucket * bucket_width
        start = bucket_low + rng.uniform(0.0, bucket_width)
        queries.append(_clip_query(start, width, domain))
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} Zipf(exponent={exponent}) range queries, selectivity {selectivity}"
        ),
        metadata={"exponent": exponent, "n_buckets": n_buckets},
    )


def hotspot_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    n_hotspots: int = 2,
    hotspot_fraction: float = 0.02,
    seed: int | None = None,
    name: str = "skewed",
) -> Workload:
    """Queries confined to a few very small areas of the domain.

    Models the paper's *skewed* SkyServer workload: "200 subsequent queries
    from the log that access two very limited areas of the domain".
    """
    ensure_positive("n_queries", n_queries)
    ensure_in_range("selectivity", selectivity, 0.0, 1.0)
    ensure_positive("n_hotspots", n_hotspots)
    ensure_in_range("hotspot_fraction", hotspot_fraction, 0.0, 1.0)
    rng = make_rng(seed)
    low, high = domain
    width = _query_width(domain, selectivity)
    hotspot_width = max((high - low) * hotspot_fraction, width)
    hotspot_lows = rng.uniform(low, high - hotspot_width, size=n_hotspots)
    queries: list[RangeQuery] = []
    for _ in range(n_queries):
        hotspot_low = float(rng.choice(hotspot_lows))
        start = hotspot_low + rng.uniform(0.0, max(hotspot_width - width, 1e-12))
        queries.append(_clip_query(start, width, domain))
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} range queries confined to {n_hotspots} hot spots of "
            f"{hotspot_fraction:.1%} of the domain each"
        ),
        metadata={"n_hotspots": n_hotspots, "hotspot_fraction": hotspot_fraction},
    )


def multimodal_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    n_modes: int = 4,
    mode_fraction: float = 0.04,
    interleave: bool = True,
    seed: int | None = None,
    name: str = "multimodal",
) -> Workload:
    """Interleaved queries over ``n_modes`` disjoint areas of the domain.

    The scale-out stress pattern: the domain is divided into ``n_modes``
    equal bands with one small query area per band (width ``mode_fraction``
    of the domain), and consecutive queries cycle mode→mode
    (``interleave=True``), so *no* locality survives between neighbouring
    queries.  One adaptive engine must keep every mode's fine-grained layout
    resident at once; N workload-clustered replicas each see only their own
    mode.  ``interleave=False`` emits the same queries grouped by mode
    (then it degenerates to :func:`changing_workload` with disjoint phases).

    ``seed`` is explicit and flows through :class:`WorkloadSpec`, so cluster
    partition assignments are deterministic in CI.
    """
    ensure_positive("n_queries", n_queries)
    ensure_positive("n_modes", n_modes)
    ensure_in_range("selectivity", selectivity, 0.0, 1.0)
    ensure_in_range("mode_fraction", mode_fraction, 0.0, 1.0)
    rng = make_rng(seed)
    low, high = domain
    width = _query_width(domain, selectivity)
    band_width = (high - low) / n_modes
    area_width = min(max((high - low) * mode_fraction, width), band_width)
    # One query area per band, placed away from the band edges so modes
    # stay disjoint.
    mode_lows = np.array(
        [
            low + band * band_width
            + rng.uniform(0.0, max(band_width - area_width, 1e-12))
            for band in range(n_modes)
        ]
    )
    order = (
        np.arange(n_queries) % n_modes
        if interleave
        else np.repeat(np.arange(n_modes), int(np.ceil(n_queries / n_modes)))[:n_queries]
    )
    queries: list[RangeQuery] = []
    for mode in order:
        start = mode_lows[mode] + rng.uniform(0.0, max(area_width - width, 1e-12))
        queries.append(_clip_query(start, width, domain))
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} range queries cycling over {n_modes} disjoint modes of "
            f"{mode_fraction:.1%} of the domain each"
        ),
        metadata={
            "n_modes": n_modes,
            "mode_fraction": mode_fraction,
            "interleave": interleave,
            "mode_lows": [float(value) for value in mode_lows],
        },
    )


def changing_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    n_phases: int = 4,
    phase_fraction: float = 0.05,
    seed: int | None = None,
    name: str = "changing",
) -> Workload:
    """A workload whose point of interest shifts between phases.

    Models the paper's *changing* SkyServer workload: "four pieces of 50
    subsequent queries with changing point of access".  Each phase confines
    its queries to a fresh, small area of the domain.
    """
    ensure_positive("n_queries", n_queries)
    ensure_positive("n_phases", n_phases)
    ensure_in_range("selectivity", selectivity, 0.0, 1.0)
    ensure_in_range("phase_fraction", phase_fraction, 0.0, 1.0)
    rng = make_rng(seed)
    low, high = domain
    width = _query_width(domain, selectivity)
    area_width = max((high - low) * phase_fraction, width)
    phase_lows = rng.uniform(low, high - area_width, size=n_phases)
    per_phase = int(np.ceil(n_queries / n_phases))
    queries: list[RangeQuery] = []
    for phase_low in phase_lows:
        for _ in range(per_phase):
            if len(queries) >= n_queries:
                break
            start = phase_low + rng.uniform(0.0, max(area_width - width, 1e-12))
            queries.append(_clip_query(start, width, domain))
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} range queries in {n_phases} phases, each confined to "
            f"{phase_fraction:.1%} of the domain"
        ),
        metadata={"n_phases": n_phases, "phase_fraction": phase_fraction},
    )


def update_heavy_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    update_fraction: float = 0.7,
    n_hotspots: int = 2,
    hotspot_fraction: float = 0.02,
    seed: int | None = None,
    name: str = "update-heavy",
) -> Workload:
    """A mostly-write stream: hot-area range touches, most marked ``update``.

    The query *positions* follow the hotspot pattern (updates concentrate
    where the data is hot), but each query carries an operation label in
    ``metadata["ops"]`` — ``"update"`` with probability ``update_fraction``,
    else ``"read"``.  An update of ``[low, high)`` models a delete+reinsert
    over that range, which is what stresses segment rematerialization and
    the replication storage budget; executors that only understand reads
    can replay the stream as-is (every query is still a valid range probe).
    """
    ensure_positive("n_queries", n_queries)
    ensure_in_range("update_fraction", update_fraction, 0.0, 1.0)
    base = hotspot_workload(
        n_queries,
        domain,
        selectivity,
        n_hotspots=n_hotspots,
        hotspot_fraction=hotspot_fraction,
        seed=seed,
        name=name,
    )
    rng = make_rng(None if seed is None else seed + 104_729)
    ops = [
        "update" if rng.random() < update_fraction else "read"
        for _ in range(n_queries)
    ]
    return Workload(
        name=name,
        queries=base.queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} hot-area range touches, {update_fraction:.0%} marked "
            f"update (delete+reinsert over the range)"
        ),
        metadata={
            **base.metadata,
            "ops": ops,
            "op_mix": {op: ops.count(op) for op in ("read", "update")},
            "update_fraction": update_fraction,
        },
    )


def mixed_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    write_fraction: float = 0.3,
    seed: int | None = None,
    name: str = "mixed",
) -> Workload:
    """A mixed read/write stream: uniform range reads with interleaved writes.

    Query positions are uniform over the domain; each query is labelled in
    ``metadata["ops"]`` — ``"read"`` with probability ``1 - write_fraction``,
    else an even split of ``"insert"`` / ``"delete"`` over the query's range.
    The tuner's training loop uses this to learn how write pressure shifts
    the IO-optimal knob settings away from the read-only optimum.
    """
    ensure_positive("n_queries", n_queries)
    ensure_in_range("write_fraction", write_fraction, 0.0, 1.0)
    base = uniform_workload(n_queries, domain, selectivity, seed=seed, name=name)
    rng = make_rng(None if seed is None else seed + 15_485_863)
    ops: list[str] = []
    for _ in range(n_queries):
        if rng.random() < write_fraction:
            ops.append("insert" if rng.random() < 0.5 else "delete")
        else:
            ops.append("read")
    return Workload(
        name=name,
        queries=base.queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} uniform range queries, {write_fraction:.0%} writes "
            f"(even insert/delete split)"
        ),
        metadata={
            "ops": ops,
            "op_mix": {op: ops.count(op) for op in ("read", "insert", "delete")},
            "write_fraction": write_fraction,
        },
    )


def drifting_mix_workload(
    n_queries: int,
    domain: tuple[float, float],
    selectivity: float,
    *,
    phases: tuple[str, ...] = ("hotspot", "uniform", "multimodal"),
    seed: int | None = None,
    name: str = "drifting-mix",
) -> Workload:
    """The tuner's evaluation stream: the *distribution family* drifts.

    Unlike :func:`changing_workload` (same family, moving point of access),
    each phase here comes from a different generator — by default hotspot →
    uniform → multimodal — so both the access locality *and* the shape of
    the workload-feature vector shift at every boundary.  A drift detector
    should fire at each phase edge; a fixed-knob engine tuned for one phase
    is mis-tuned for the next.  ``metadata["phase_boundaries"]`` carries the
    query index where each phase starts; per-phase sub-seeds derive from
    ``seed`` so the stream is reproducible through :class:`WorkloadSpec`.
    """
    ensure_positive("n_queries", n_queries)
    if not phases:
        raise ValueError("phases must name at least one distribution")
    per_phase = int(np.ceil(n_queries / len(phases)))
    queries: list[RangeQuery] = []
    boundaries: list[int] = []
    for position, distribution in enumerate(phases):
        boundaries.append(len(queries))
        remaining = n_queries - len(queries)
        if remaining <= 0:
            break
        spec = WorkloadSpec(
            name=f"{name}:{distribution}",
            distribution=distribution,
            selectivity=selectivity,
            n_queries=min(per_phase, remaining),
            seed=None if seed is None else seed + 31 * (position + 1),
        )
        queries.extend(spec.generate(domain).queries)
    return Workload(
        name=name,
        queries=queries,
        domain=domain,
        selectivity=selectivity,
        description=(
            f"{n_queries} range queries drifting across distribution families "
            f"{' → '.join(phases)}"
        ),
        metadata={"phases": list(phases), "phase_boundaries": boundaries},
    )
