"""Range queries and query streams (workloads)."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.ranges import ValueRange


@dataclass(frozen=True)
class RangeQuery:
    """A range-selection predicate ``low <= value < high``.

    This is the only query shape the paper's evaluation uses ("select ...
    where ra between a and b"); the engine layer additionally supports
    projections and aggregates over the qualifying tuples.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"query high must be >= low, got [{self.low}, {self.high})")

    @property
    def vrange(self) -> ValueRange:
        """The query as a :class:`ValueRange`."""
        return ValueRange(self.low, self.high)

    @property
    def width(self) -> float:
        """Extent of the query range in domain units."""
        return self.high - self.low


@dataclass
class Workload:
    """An ordered stream of range queries plus descriptive metadata."""

    name: str
    queries: list[RangeQuery]
    domain: tuple[float, float]
    selectivity: float | None = None
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def __getitem__(self, item):
        return self.queries[item]

    def head(self, n: int) -> "Workload":
        """A shortened copy containing only the first ``n`` queries."""
        return Workload(
            name=self.name,
            queries=list(self.queries[:n]),
            domain=self.domain,
            selectivity=self.selectivity,
            description=self.description,
            metadata=dict(self.metadata),
        )

    def coverage_fraction(self) -> float:
        """Fraction of the domain touched by at least one query.

        Useful to characterise skew: the paper's skewed SkyServer workload
        accesses "two very limited areas of the domain".
        """
        domain_low, domain_high = self.domain
        width = domain_high - domain_low
        if width <= 0 or not self.queries:
            return 0.0
        from repro.core.ranges import coalesce_ranges

        merged = coalesce_ranges([q.vrange for q in self.queries])
        covered = sum(r.width for r in merged)
        return min(1.0, covered / width)


def queries_from_pairs(pairs: Sequence[tuple[float, float]]) -> list[RangeQuery]:
    """Build a query list from ``(low, high)`` pairs (convenience for tests)."""
    return [RangeQuery(float(low), float(high)) for low, high in pairs]
