"""Binary Association Tables (BATs), MonetDB's storage primitive.

A BAT is a two-column structure of ``(head, tail)`` pairs.  In MonetDB the
head is almost always a dense sequence of object identifiers (a *void* head),
in which case only the tail is physically stored; the elements live in one
contiguous array with "no holes, deleted elements, or auxiliary data", which
is what makes a BAT "conveniently split at any point" (§2).  This module
provides the numpy-backed equivalent used by the MAL operators and, through
the BPM, by the adaptive strategies.

BATs whose tail is known to be value-sorted (the pieces the BPM hands to
rewritten plans come from sorted segments) carry a ``tail_sorted`` flag; the
selection operators then answer range predicates with two binary searches
and a slice *view* (:meth:`BAT.value_slice`) instead of comparing every
tail value.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.sorted_search import sorted_probe


class BAT:
    """A binary association table with an optional void (dense) head.

    Parameters
    ----------
    tail:
        The tail values (any one-dimensional numpy array).
    head:
        Explicit head values (oids).  ``None`` means a void head starting at
        ``hseqbase`` — the common, memory-free representation.
    hseqbase:
        First oid of a void head.
    name:
        Optional diagnostic name (e.g. ``"sys_P_ra"``).
    tail_sorted:
        The caller guarantees the tail is non-decreasing.  Selection
        operators then use binary-search slicing (zero-copy) instead of
        boolean masks.  The flag is a promise, not verified here.
    """

    __slots__ = ("_head", "tail", "hseqbase", "name", "tail_sorted")

    def __init__(
        self,
        tail: np.ndarray,
        head: np.ndarray | None = None,
        *,
        hseqbase: int = 0,
        name: str = "",
        tail_sorted: bool = False,
    ) -> None:
        tail = np.asarray(tail)
        if tail.ndim != 1:
            raise ValueError("a BAT tail must be a one-dimensional array")
        if head is not None:
            head = np.asarray(head, dtype=np.int64)
            if head.ndim != 1:
                raise ValueError("a BAT head must be a one-dimensional array")
            if head.size != tail.size:
                raise ValueError(
                    f"head and tail must have equal length, got {head.size} and {tail.size}"
                )
        self._head = head
        self.tail = tail
        self.hseqbase = int(hseqbase)
        self.name = name
        self.tail_sorted = bool(tail_sorted)

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls, dtype: Any = np.int64, *, name: str = "") -> "BAT":
        """An empty BAT with a void head (used for empty delta BATs)."""
        return cls(np.empty(0, dtype=dtype), name=name, tail_sorted=True)

    @classmethod
    def from_pairs(
        cls, head: np.ndarray, tail: np.ndarray, *, name: str = "", tail_sorted: bool = False
    ) -> "BAT":
        """A BAT with explicit head oids."""
        return cls(
            np.asarray(tail), np.asarray(head, dtype=np.int64), name=name, tail_sorted=tail_sorted
        )

    # -- properties --------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of (head, tail) pairs."""
        return int(self.tail.size)

    def __len__(self) -> int:
        return self.count

    @property
    def is_void_head(self) -> bool:
        """True when the head is a dense oid sequence (not materialized)."""
        return self._head is None

    @property
    def head(self) -> np.ndarray:
        """The head oids (materialized on demand for void heads)."""
        if self._head is None:
            return np.arange(self.hseqbase, self.hseqbase + self.count, dtype=np.int64)
        return self._head

    @property
    def tail_bytes(self) -> int:
        """Bytes of contiguous tail storage."""
        return int(self.tail.size * self.tail.dtype.itemsize)

    @property
    def size_bytes(self) -> int:
        """Total storage of the BAT (tail plus a materialized head, if any)."""
        head_bytes = 0 if self._head is None else int(self._head.size * self._head.dtype.itemsize)
        return self.tail_bytes + head_bytes

    # -- basic operations -----------------------------------------------------

    def reverse(self) -> "BAT":
        """Swap head and tail (MAL ``bat.reverse``).

        The tail of the reversed BAT holds the former head oids; the former
        tail becomes the (explicit) head.  The operation is used by the Fig-1
        plan to turn a deletion BAT into an oid lookup structure.
        """
        tail_sorted = self._head is None  # a void head reversed is a dense ascending tail
        return BAT(
            self.head, np.asarray(self.tail, dtype=np.int64), name=self.name,
            tail_sorted=tail_sorted,
        )

    def slice(self, start: int, stop: int) -> "BAT":
        """Positional slice ``[start, stop)`` preserving head oids (a view).

        A slice covering the whole BAT returns ``self`` — BATs are never
        mutated by operators, and the full-cover case is the steady state of
        the segment-aware plans (the piece handed out by the BPM iterator is
        exactly the query range).
        """
        start = max(0, int(start))
        stop = min(self.count, int(stop))
        if start == 0 and stop == self.count:
            return self
        if self._head is None:
            return BAT(
                self.tail[start:stop], hseqbase=self.hseqbase + start, name=self.name,
                tail_sorted=self.tail_sorted,
            )
        return BAT(
            self.tail[start:stop], self._head[start:stop], name=self.name,
            tail_sorted=self.tail_sorted,
        )

    def value_slice(
        self, low: float, high: float, *, include_low: bool = True, include_high: bool = False
    ) -> "BAT":
        """The pairs whose tail value falls into the given range, as a view.

        Only valid on a sorted tail (``tail_sorted``): two ``searchsorted``
        probes find the qualifying run and :meth:`slice` returns it without
        touching (or copying) the payload.
        """
        if not self.tail_sorted:
            raise ValueError("value_slice requires a sorted tail (tail_sorted=True)")
        lo = sorted_probe(self.tail, low, side="left" if include_low else "right")
        hi = sorted_probe(self.tail, high, side="right" if include_high else "left")
        return self.slice(lo, max(lo, hi))

    def take_oids(self, oids: np.ndarray) -> "BAT":
        """Select the pairs whose head oid appears in ``oids`` (order of ``oids``)."""
        oids = np.asarray(oids, dtype=np.int64)
        if self._head is None:
            positions = oids - self.hseqbase
            valid = (positions >= 0) & (positions < self.count)
            positions = positions[valid]
            return BAT(self.tail[positions], oids[valid], name=self.name)
        order = np.argsort(self._head, kind="stable")
        sorted_head = self._head[order]
        positions = np.searchsorted(sorted_head, oids)
        positions = np.clip(positions, 0, sorted_head.size - 1)
        valid = sorted_head[positions] == oids
        chosen = order[positions[valid]]
        return BAT(self.tail[chosen], oids[valid], name=self.name)

    def append(self, other: "BAT") -> "BAT":
        """Concatenate two BATs (explicit heads in the result)."""
        if other.count == 0:
            return BAT(self.tail.copy(), None if self._head is None else self._head.copy(),
                       hseqbase=self.hseqbase, name=self.name, tail_sorted=self.tail_sorted)
        return BAT.from_pairs(
            np.concatenate([self.head, other.head]),
            np.concatenate([self.tail, other.tail]),
            name=self.name,
        )

    def copy(self) -> "BAT":
        """A deep copy of the BAT."""
        return BAT(
            self.tail.copy(),
            None if self._head is None else self._head.copy(),
            hseqbase=self.hseqbase,
            name=self.name,
            tail_sorted=self.tail_sorted,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        head_kind = "void" if self.is_void_head else "oid"
        return f"BAT(name={self.name!r}, count={self.count}, head={head_kind}, dtype={self.tail.dtype})"
