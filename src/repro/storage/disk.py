"""A simple cost model for the secondary store.

The paper's evaluation machine is disk bound on most SkyServer queries.  The
simulator expresses I/O in bytes; this module converts byte counters into
estimated milliseconds with a sequential-bandwidth plus per-access-latency
model, which the harness uses when presenting simulated runs in the paper's
"time" units.  The defaults approximate the 2007-era desktop disk of the
paper's evaluation platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MB
from repro.util.validation import ensure_positive


@dataclass(frozen=True)
class DiskModel:
    """Sequential-bandwidth + seek-latency cost model."""

    bandwidth_bytes_per_s: float = 60 * MB
    seek_latency_s: float = 0.008
    memory_bandwidth_bytes_per_s: float = 2_000 * MB

    def __post_init__(self) -> None:
        ensure_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        ensure_positive("memory_bandwidth_bytes_per_s", self.memory_bandwidth_bytes_per_s)
        ensure_positive("seek_latency_s", self.seek_latency_s, allow_zero=True)

    def disk_seconds(self, n_bytes: float, n_accesses: int = 1) -> float:
        """Seconds to transfer ``n_bytes`` in ``n_accesses`` sequential runs."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {n_bytes}")
        if n_accesses < 0:
            raise ValueError(f"access count must be non-negative, got {n_accesses}")
        return n_accesses * self.seek_latency_s + n_bytes / self.bandwidth_bytes_per_s

    def memory_seconds(self, n_bytes: float) -> float:
        """Seconds to stream ``n_bytes`` through memory."""
        if n_bytes < 0:
            raise ValueError(f"byte count must be non-negative, got {n_bytes}")
        return n_bytes / self.memory_bandwidth_bytes_per_s

    def query_seconds(
        self,
        memory_reads_bytes: float,
        memory_writes_bytes: float,
        disk_reads_bytes: float,
        disk_writes_bytes: float,
        *,
        disk_accesses: int = 1,
    ) -> float:
        """Estimated wall-clock seconds for one query's worth of I/O."""
        return (
            self.memory_seconds(memory_reads_bytes + memory_writes_bytes)
            + self.disk_seconds(disk_reads_bytes + disk_writes_bytes, disk_accesses)
        )
