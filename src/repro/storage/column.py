"""Stored columns: persistent BATs plus delta BATs.

MonetDB's SQL layer represents every column of a relational table as a small
family of BATs: the persistent payload (bind level 0), the pending inserts
(level 1) and the pending updates (level 2); deletions are tracked per table
in a separate deletion BAT (``bind_dbat``).  The Fig-1 query plan unions and
differences these pieces before evaluating predicates — the reproduction
follows the same structure so that the generated plans look like the paper's.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.storage.bat import BAT

#: Bind levels used by ``sql.bind`` in MAL plans.
BIND_PERSISTENT = 0
BIND_INSERTS = 1
BIND_UPDATES = 2


class StoredColumn:
    """One relational column stored as persistent + delta BATs."""

    def __init__(self, table: str, name: str, dtype: Any) -> None:
        self.table = table
        self.name = name
        self.dtype = np.dtype(dtype)
        self._persistent = BAT.empty(self.dtype, name=self.qualified_name(BIND_PERSISTENT))
        self._inserts = BAT.empty(self.dtype, name=self.qualified_name(BIND_INSERTS))
        self._updates = BAT.from_pairs(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=self.dtype),
            name=self.qualified_name(BIND_UPDATES),
        )

    def qualified_name(self, level: int) -> str:
        """The diagnostic BAT name, e.g. ``"sys_P_ra_0"``."""
        return f"sys_{self.table}_{self.name}_{level}"

    # -- data access --------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of persistent values (excluding pending inserts)."""
        return self._persistent.count

    @property
    def value_width(self) -> int:
        """Bytes per value."""
        return int(self.dtype.itemsize)

    @property
    def size_bytes(self) -> int:
        """Total bytes across persistent and delta BATs."""
        return self._persistent.size_bytes + self._inserts.size_bytes + self._updates.size_bytes

    @property
    def has_deltas(self) -> bool:
        """True when pending inserts or updates exist for this column."""
        return bool(self._inserts.count or self._updates.count)

    def bind(self, level: int) -> BAT:
        """The BAT for a ``sql.bind`` at the given level (0, 1 or 2)."""
        if level == BIND_PERSISTENT:
            return self._persistent
        if level == BIND_INSERTS:
            return self._inserts
        if level == BIND_UPDATES:
            return self._updates
        raise ValueError(f"unknown bind level {level}; expected 0, 1 or 2")

    # -- modification -----------------------------------------------------------

    def bulk_load(self, values: np.ndarray, *, start_oid: int = 0) -> None:
        """Replace the persistent BAT with freshly loaded values."""
        values = np.asarray(values, dtype=self.dtype)
        self._persistent = BAT(values, hseqbase=start_oid, name=self.qualified_name(0))

    def append(self, values: np.ndarray, *, start_oid: int) -> None:
        """Record newly inserted values in the insert-delta BAT."""
        values = np.asarray(values, dtype=self.dtype)
        fresh = BAT(values, hseqbase=start_oid, name=self.qualified_name(1))
        self._inserts = self._inserts.append(fresh)

    def update(self, oids: np.ndarray, values: np.ndarray) -> None:
        """Record updated values in the update-delta BAT."""
        oids = np.asarray(oids, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype)
        if oids.size != values.size:
            raise ValueError("update oids and values must have equal length")
        fresh = BAT.from_pairs(oids, values, name=self.qualified_name(2))
        self._updates = self._updates.append(fresh)

    def merge_deltas(self) -> np.ndarray:
        """The logical column contents with deltas applied (no deletions).

        Equivalent to the kunion/kdifference cascade the SQL compiler emits,
        evaluated eagerly; used for loading adaptive columns and by tests.
        """
        base = self._persistent.tail
        if self._inserts.count:
            base = np.concatenate([base, self._inserts.tail])
        if not self._updates.count:
            return base.copy()
        merged = base.copy()
        merged[self._updates.head] = self._updates.tail
        return merged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoredColumn({self.table}.{self.name}, dtype={self.dtype}, "
            f"count={self.count}, inserts={self._inserts.count})"
        )


class ColumnStore:
    """All columns of one table plus the table-level deletion BAT."""

    def __init__(self, table: str) -> None:
        self.table = table
        self.columns: dict[str, StoredColumn] = {}
        self._deleted_oids = BAT.from_pairs(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), name=f"sys_{table}_dbat"
        )
        self._next_oid = 0

    # -- schema -------------------------------------------------------------

    def add_column(self, name: str, dtype: Any) -> StoredColumn:
        """Create a column; fails if it already exists."""
        if name in self.columns:
            raise ValueError(f"column {name!r} already exists in table {self.table!r}")
        column = StoredColumn(self.table, name, dtype)
        self.columns[name] = column
        return column

    def column(self, name: str) -> StoredColumn:
        """Look up a column by name."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise KeyError(f"table {self.table!r} has no column {name!r}") from exc

    # -- data ------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of logical rows (loaded plus inserted, minus deletions)."""
        return self._next_oid - self._deleted_oids.count

    @property
    def has_deltas(self) -> bool:
        """True when any column has pending deltas or rows were deleted."""
        if self._deleted_oids.count:
            return True
        return any(column.has_deltas for column in self.columns.values())

    @property
    def deletion_bat(self) -> BAT:
        """The table's deletion BAT (``sql.bind_dbat``)."""
        return self._deleted_oids

    def bulk_load(self, data: dict[str, np.ndarray]) -> None:
        """Load aligned arrays into all columns at once (a fresh table)."""
        lengths = {name: np.asarray(values).size for name, values in data.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"bulk load arrays differ in length: {lengths}")
        missing = set(self.columns) - set(data)
        if missing:
            raise ValueError(f"bulk load is missing columns: {sorted(missing)}")
        unknown = set(data) - set(self.columns)
        if unknown:
            raise ValueError(f"bulk load has unknown columns: {sorted(unknown)}")
        for name, values in data.items():
            self.columns[name].bulk_load(values, start_oid=0)
        self._next_oid = next(iter(lengths.values()), 0)

    def insert(self, data: dict[str, np.ndarray]) -> None:
        """Append rows to the insert deltas of all columns."""
        lengths = {name: np.asarray(values).size for name, values in data.items()}
        if set(data) != set(self.columns):
            raise ValueError("insert must provide every column of the table")
        if len(set(lengths.values())) > 1:
            raise ValueError(f"insert arrays differ in length: {lengths}")
        count = next(iter(lengths.values()), 0)
        for name, values in data.items():
            self.columns[name].append(values, start_oid=self._next_oid)
        self._next_oid += count

    def delete(self, oids: np.ndarray) -> None:
        """Mark the given oids as deleted."""
        oids = np.asarray(oids, dtype=np.int64)
        fresh = BAT.from_pairs(oids, oids, name=self._deleted_oids.name)
        self._deleted_oids = self._deleted_oids.append(fresh)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnStore(table={self.table!r}, columns={sorted(self.columns)}, rows={self.row_count})"
