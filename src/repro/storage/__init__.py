"""Storage substrate: BATs, the catalog, the buffer pool and the disk model.

This package reproduces the storage layer the paper's techniques sit on: the
MonetDB binary association tables (BATs) with contiguous, hole-free storage
that "can be conveniently split at any point" (§2), a relational catalog
mapping SQL tables to BATs, and the constrained memory buffer / secondary
store model used by the §6.1 simulator.
"""

from repro.storage.bat import BAT
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.catalog import Catalog, TableSchema
from repro.storage.column import ColumnStore, StoredColumn
from repro.storage.disk import DiskModel

__all__ = [
    "BAT",
    "BufferPool",
    "BufferStats",
    "Catalog",
    "TableSchema",
    "ColumnStore",
    "StoredColumn",
    "DiskModel",
]
