"""A constrained memory buffer with LRU replacement.

MonetDB relies on the operating system's virtual memory to page BATs in and
out; the paper's simulator models "its management in a constrained memory
buffer setting, and its read/write behavior as data is flushed to secondary
store" (§6.1).  :class:`BufferPool` reproduces that model: pages (segments)
are faulted in on first access, evicted in LRU order when the capacity is
exceeded, and dirty pages write back to the secondary store on eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.util.units import format_bytes
from repro.util.validation import ensure_positive


@dataclass
class BufferStats:
    """Counters describing buffer-pool behaviour over a run."""

    page_hits: int = 0
    page_faults: int = 0
    evictions: int = 0
    disk_reads_bytes: float = 0.0
    disk_writes_bytes: float = 0.0

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served from memory."""
        accesses = self.page_hits + self.page_faults
        return self.page_hits / accesses if accesses else 0.0


class BufferPool:
    """LRU buffer over variably sized pages identified by hashable keys.

    Pages correspond to segments: adaptive segmentation keeps segments small
    enough that the hot ones stay resident, while the non-segmented baseline
    keeps faulting the whole column once it exceeds the capacity.
    """

    def __init__(self, capacity_bytes: float) -> None:
        ensure_positive("capacity_bytes", capacity_bytes)
        self.capacity_bytes = float(capacity_bytes)
        self.stats = BufferStats()
        self._pages: OrderedDict[object, tuple[float, bool]] = OrderedDict()
        self._used_bytes = 0.0

    # -- properties --------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        """Bytes currently resident in the buffer."""
        return self._used_bytes

    @property
    def resident_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._pages)

    def contains(self, key: object) -> bool:
        """True when the page is resident (does not update recency)."""
        return key in self._pages

    # -- the core operation ---------------------------------------------------

    def access(self, key: object, size_bytes: float, *, dirty: bool = False) -> float:
        """Touch a page; returns the number of bytes faulted in from disk.

        A resident page is refreshed (recency and, if its size changed, the
        space accounting).  A missing page is faulted in, which may evict
        least-recently-used pages; evicting a dirty page writes it back to the
        secondary store.
        """
        if size_bytes < 0:
            raise ValueError(f"page size must be non-negative, got {size_bytes}")
        if size_bytes > self.capacity_bytes:
            # A page larger than the whole buffer can never stay resident: it
            # streams through memory on every access (this is exactly the
            # situation of a non-segmented column exceeding main memory).
            if key in self._pages:
                old_size, _ = self._pages.pop(key)
                self._used_bytes -= old_size
            self.stats.page_faults += 1
            if dirty:
                self.stats.disk_writes_bytes += size_bytes
                return 0.0
            self.stats.disk_reads_bytes += size_bytes
            return size_bytes
        faulted = 0.0
        if key in self._pages:
            old_size, old_dirty = self._pages.pop(key)
            self._used_bytes -= old_size
            self._pages[key] = (size_bytes, old_dirty or dirty)
            self._used_bytes += size_bytes
            self.stats.page_hits += 1
        else:
            self.stats.page_faults += 1
            self.stats.disk_reads_bytes += 0.0 if dirty else size_bytes
            faulted = 0.0 if dirty else size_bytes
            self._pages[key] = (size_bytes, dirty)
            self._used_bytes += size_bytes
        self._evict_to_capacity()
        return faulted

    def invalidate(self, key: object) -> None:
        """Drop a page without writing it back (its segment was freed)."""
        if key in self._pages:
            size, _ = self._pages.pop(key)
            self._used_bytes -= size

    def flush(self) -> float:
        """Write back every dirty page; returns the bytes written."""
        written = 0.0
        for key, (size, dirty) in list(self._pages.items()):
            if dirty:
                written += size
                self._pages[key] = (size, False)
        self.stats.disk_writes_bytes += written
        return written

    # -- internals ---------------------------------------------------------------

    def _evict_to_capacity(self) -> None:
        while self._used_bytes > self.capacity_bytes and len(self._pages) > 1:
            _, (size, dirty) = self._pages.popitem(last=False)
            self._used_bytes -= size
            self.stats.evictions += 1
            if dirty:
                self.stats.disk_writes_bytes += size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(capacity={format_bytes(self.capacity_bytes)}, "
            f"used={format_bytes(self._used_bytes)}, pages={len(self._pages)})"
        )
