"""The relational catalog: table schemas and their BAT families.

The SQL compiler maps relational tables onto collections of BATs (§2); the
catalog is the authority for that mapping.  It also records which columns have
been handed over to the Bat Partition Manager for adaptive segmentation or
replication, so the segment optimizer can detect them in query plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.storage.column import ColumnStore, StoredColumn


@dataclass(frozen=True)
class TableSchema:
    """A table name plus an ordered mapping of column names to dtypes."""

    name: str
    columns: tuple[tuple[str, str], ...]

    @classmethod
    def of(cls, name: str, columns: dict[str, Any]) -> "TableSchema":
        """Build a schema from a plain ``{column: dtype}`` mapping."""
        normalised = tuple((col, np.dtype(dtype).name) for col, dtype in columns.items())
        return cls(name=name, columns=normalised)

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.columns)

    def dtype_of(self, column: str) -> np.dtype:
        for name, dtype in self.columns:
            if name == column:
                return np.dtype(dtype)
        raise KeyError(f"table {self.name!r} has no column {column!r}")


@dataclass
class Catalog:
    """All tables of the database plus adaptive-column registrations."""

    schemas: dict[str, TableSchema] = field(default_factory=dict)
    stores: dict[str, ColumnStore] = field(default_factory=dict)
    adaptive_columns: dict[tuple[str, str], str] = field(default_factory=dict)

    # -- tables ---------------------------------------------------------------

    def create_table(self, name: str, columns: dict[str, Any]) -> TableSchema:
        """Create a table and its (empty) BAT family."""
        if name in self.schemas:
            raise ValueError(f"table {name!r} already exists")
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        schema = TableSchema.of(name, columns)
        store = ColumnStore(name)
        for column, dtype in schema.columns:
            store.add_column(column, dtype)
        self.schemas[name] = schema
        self.stores[name] = store
        return schema

    def drop_table(self, name: str) -> None:
        """Remove a table, its BATs and any adaptive registrations."""
        self.schemas.pop(name, None)
        self.stores.pop(name, None)
        for key in [key for key in self.adaptive_columns if key[0] == name]:
            del self.adaptive_columns[key]

    def table(self, name: str) -> ColumnStore:
        """The BAT family of a table."""
        try:
            return self.stores[name]
        except KeyError as exc:
            raise KeyError(f"unknown table {name!r}") from exc

    def schema(self, name: str) -> TableSchema:
        """The schema of a table."""
        try:
            return self.schemas[name]
        except KeyError as exc:
            raise KeyError(f"unknown table {name!r}") from exc

    def column(self, table: str, column: str) -> StoredColumn:
        """A column's BAT family."""
        return self.table(table).column(column)

    @property
    def table_names(self) -> list[str]:
        """All known tables, sorted."""
        return sorted(self.schemas)

    # -- adaptive registrations ---------------------------------------------------

    def register_adaptive(self, table: str, column: str, strategy: str) -> None:
        """Mark a column as managed by the BPM with the given strategy."""
        self.schema(table).dtype_of(column)  # validates table and column
        # The strategy registry (not a hard-coded set) is the authority on
        # which strategies exist; imported lazily to keep storage below core.
        from repro.core.strategy import available_strategies

        if strategy not in available_strategies():
            raise ValueError(
                f"unknown adaptive strategy {strategy!r}; "
                f"expected one of {sorted(available_strategies())}"
            )
        self.adaptive_columns[(table, column)] = strategy

    def unregister_adaptive(self, table: str, column: str) -> None:
        """Remove an adaptive registration (back to positional organisation)."""
        self.adaptive_columns.pop((table, column), None)

    def adaptive_strategy(self, table: str, column: str) -> str | None:
        """The registered strategy for a column, or ``None``."""
        return self.adaptive_columns.get((table, column))

    def is_adaptive(self, table: str, column: str) -> bool:
        """True when the column is managed by the BPM."""
        return (table, column) in self.adaptive_columns
