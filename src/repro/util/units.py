"""Byte-unit helpers.

The paper expresses all segmentation-model bounds (``Mmin``/``Mmax``) and all
storage curves in bytes (KB/MB).  These helpers keep the conversions explicit
and readable at call sites, e.g. ``AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)``.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

_SUFFIXES = (
    (GB, "GB"),
    (MB, "MB"),
    (KB, "KB"),
)


def format_bytes(n_bytes: float) -> str:
    """Render a byte count with a human-friendly suffix.

    >>> format_bytes(3 * 1024)
    '3.0KB'
    >>> format_bytes(512)
    '512B'
    """
    if n_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {n_bytes}")
    for factor, suffix in _SUFFIXES:
        if n_bytes >= factor:
            return f"{n_bytes / factor:.1f}{suffix}"
    return f"{int(n_bytes)}B"


def parse_bytes(text: str) -> int:
    """Parse strings such as ``"3KB"``, ``"25MB"`` or ``"1024"`` into bytes.

    Parsing is case-insensitive and tolerates surrounding whitespace.
    """
    cleaned = text.strip().upper()
    if not cleaned:
        raise ValueError("empty byte-size string")
    for factor, suffix in _SUFFIXES:
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)].strip()
            return int(float(number) * factor)
    if cleaned.endswith("B"):
        cleaned = cleaned[:-1].strip()
    return int(float(cleaned))
