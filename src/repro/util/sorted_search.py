"""Binary-search probes over sorted payloads, without dtype promotion.

``np.searchsorted(int_array, float_probe)`` silently promotes the *whole*
array to ``float64`` before searching — an O(n) cast that turns a two-probe
range selection back into a scan.  The paper's simulation columns are int32,
so the sorted zero-copy kernels route every probe through
:func:`sorted_probe`, which translates a float probe into an equivalent
integer probe for integer payloads (an O(log n) search on the original
array) and falls back to plain ``searchsorted`` otherwise.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sorted_probe", "sorted_probe_many"]


def sorted_probe(values: np.ndarray, value: float, side: str = "left") -> int:
    """``np.searchsorted`` for one scalar probe, avoiding integer→float casts.

    ``side="left"`` returns the first index with ``values[i] >= value``;
    ``side="right"`` the first index with ``values[i] > value`` — identical
    to ``np.searchsorted`` semantics.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    # dtype.kind instead of np.issubdtype: same signed/unsigned-integer test,
    # but a plain attribute check — this runs per probe on the query hot path.
    if values.dtype.kind in "iu" and math.isfinite(value):
        # Translate the float probe to the equivalent integer probe: the
        # first integer i with i >= value (left) or i > value (right).
        if side == "left":
            target = math.ceil(value)
        else:
            target = math.floor(value) + 1
        info = np.iinfo(values.dtype)
        if target <= info.min:
            return 0
        if target > info.max:
            return int(values.size)
        return int(np.searchsorted(values, values.dtype.type(target), side="left"))
    return int(np.searchsorted(values, value, side=side))


def sorted_probe_many(values: np.ndarray, probes: np.ndarray, side: str = "left") -> np.ndarray:
    """``np.searchsorted`` for an *array* of probes, avoiding integer→float casts.

    The batch counterpart of :func:`sorted_probe`: one numpy call answers every
    probe, so N range selections against one sorted payload cost O(few) numpy
    dispatches instead of N.  Per-probe semantics are identical to
    :func:`sorted_probe` (and therefore to ``np.searchsorted``), including the
    integer translation of float probes and the saturation of probes outside
    the payload dtype's representable range (``±inf`` probes land on ``0`` /
    ``values.size``).
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    probes = np.asarray(probes, dtype=np.float64)
    if values.dtype.kind in "iu":
        # Same translation as the scalar path: the first integer i with
        # i >= probe (left) or i > probe (right), saturated at the dtype
        # bounds so the cast below cannot wrap around.
        if side == "left":
            targets = np.ceil(probes)
        else:
            targets = np.floor(probes) + 1.0
        info = np.iinfo(values.dtype)
        # ``float(info.max)`` rounds *up* to 2**63 for int64, so a target equal
        # to it would overflow the cast below; treat it as past-the-end then.
        limit = float(info.max)
        overflow = targets >= limit if int(limit) > info.max else targets > limit
        safe = np.clip(targets, float(info.min), None)
        safe = np.where(overflow, float(info.min), safe)
        positions = np.searchsorted(values, safe.astype(values.dtype), side="left")
        positions[overflow] = values.size
        return positions
    return np.searchsorted(values, probes, side=side)
