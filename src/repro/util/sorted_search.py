"""Binary-search probes over sorted payloads, without dtype promotion.

``np.searchsorted(int_array, float_probe)`` silently promotes the *whole*
array to ``float64`` before searching — an O(n) cast that turns a two-probe
range selection back into a scan.  The paper's simulation columns are int32,
so the sorted zero-copy kernels route every probe through
:func:`sorted_probe`, which translates a float probe into an equivalent
integer probe for integer payloads (an O(log n) search on the original
array) and falls back to plain ``searchsorted`` otherwise.
"""

from __future__ import annotations

import math

import numpy as np


def sorted_probe(values: np.ndarray, value: float, side: str = "left") -> int:
    """``np.searchsorted`` for one scalar probe, avoiding integer→float casts.

    ``side="left"`` returns the first index with ``values[i] >= value``;
    ``side="right"`` the first index with ``values[i] > value`` — identical
    to ``np.searchsorted`` semantics.
    """
    if side not in ("left", "right"):
        raise ValueError(f"side must be 'left' or 'right', got {side!r}")
    # dtype.kind instead of np.issubdtype: same signed/unsigned-integer test,
    # but a plain attribute check — this runs per probe on the query hot path.
    if values.dtype.kind in "iu" and math.isfinite(value):
        # Translate the float probe to the equivalent integer probe: the
        # first integer i with i >= value (left) or i > value (right).
        if side == "left":
            target = math.ceil(value)
        else:
            target = math.floor(value) + 1
        info = np.iinfo(values.dtype)
        if target <= info.min:
            return 0
        if target > info.max:
            return int(values.size)
        return int(np.searchsorted(values, values.dtype.type(target), side="left"))
    return int(np.searchsorted(values, value, side=side))
