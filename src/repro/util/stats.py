"""Statistical helpers used by the benchmark harness and workload generators."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average with a shrinking head window.

    The paper's Figures 12, 14 and 16 report a *moving average* of per-query
    times; the first ``window - 1`` points average over the queries seen so
    far, which matches the visual behaviour of those plots.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError("moving_average expects a one-dimensional sequence")
    if arr.size == 0:
        return arr.copy()
    cumsum = np.cumsum(arr)
    result = np.empty_like(arr)
    for i in range(arr.size):
        start = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[start - 1] if start > 0 else 0.0)
        result[i] = total / (i - start + 1)
    return result


def cumulative_sum(values: Sequence[float]) -> np.ndarray:
    """Cumulative sum as a float array (Figures 5, 6, 11, 13, 15)."""
    return np.cumsum(np.asarray(values, dtype=float))


def zipf_probabilities(n_ranks: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipf probabilities ``p(k) ∝ 1 / k**exponent`` for ranks 1..n.

    Used by the skewed workload generator: query positions are drawn from a
    Zipf distribution over discretised buckets of the attribute domain.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    ranks = np.arange(1, n_ranks + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def descriptive_stats(values: Sequence[float]) -> dict[str, float]:
    """Count / mean / standard deviation summary (Table 2 of the paper)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
