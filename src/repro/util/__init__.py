"""Small shared utilities: units, random-number helpers, statistics, validation."""

from repro.util.units import KB, MB, GB, format_bytes, parse_bytes
from repro.util.rng import make_rng, spawn_rngs
from repro.util.stats import moving_average, cumulative_sum, zipf_probabilities
from repro.util.validation import ensure_positive, ensure_in_range, ensure_type

__all__ = [
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "parse_bytes",
    "make_rng",
    "spawn_rngs",
    "moving_average",
    "cumulative_sum",
    "zipf_probabilities",
    "ensure_positive",
    "ensure_in_range",
    "ensure_type",
]
