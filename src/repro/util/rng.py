"""Random-number-generation helpers.

Everything stochastic in the library (the Gaussian Dice model, the workload
generators, synthetic data) is driven by :class:`numpy.random.Generator`
instances created here, so experiments are reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20080325  # EDBT 2008 started on March 25th, 2008.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from ``seed``.

    ``None`` falls back to :data:`DEFAULT_SEED` so that the library is
    deterministic by default; pass an explicit seed to vary runs.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(n: int, seed: int | None = None) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Useful when an experiment needs separate, non-interfering random streams
    for the workload and for the Gaussian Dice model.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    seed_seq = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(n)]
