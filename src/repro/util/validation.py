"""Tiny argument-validation helpers shared across the public API.

They raise early with a message naming the offending argument, which keeps
constructors in the core package short and their error behaviour uniform.
"""

from __future__ import annotations

from typing import Any


def ensure_positive(name: str, value: float, *, allow_zero: bool = False) -> float:
    """Raise :class:`ValueError` unless ``value`` is positive (or >= 0)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_in_range(name: str, value: float, low: float, high: float) -> float:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def ensure_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " or ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")
    return value
