"""A small fluent builder for MAL programs.

The SQL compiler and the segment optimizer both need to emit instruction
sequences; the builder keeps variable naming (``X_1``, ``X_2``, ...) and
instruction construction in one place so the emitted plans look uniform and
resemble the paper's Figure 1.
"""

from __future__ import annotations

from typing import Any

from repro.mal.program import (
    OPCODE_ASSIGN,
    OPCODE_BARRIER,
    OPCODE_EXIT,
    OPCODE_REDO,
    Const,
    Instruction,
    MALProgram,
    Var,
)


class ProgramBuilder:
    """Accumulates instructions and hands out fresh variable names."""

    def __init__(self, name: str, parameters: tuple[str, ...] = ()) -> None:
        self.program = MALProgram(name=name, parameters=parameters)
        self._counter = 0

    # -- variables ---------------------------------------------------------

    def fresh(self, prefix: str = "X") -> str:
        """A fresh variable name with the given prefix."""
        self._counter += 1
        return f"{prefix}_{self._counter}"

    @staticmethod
    def var(name: str) -> Var:
        """Reference an existing variable."""
        return Var(name)

    @staticmethod
    def const(value: Any) -> Const:
        """Embed a literal constant."""
        return Const(value)

    # -- instruction emission -------------------------------------------------

    def call(
        self,
        module: str,
        function: str,
        *args: Any,
        target: str | None = None,
        targets: tuple[str, ...] | None = None,
        comment: str = "",
    ) -> str:
        """Emit ``target := module.function(args...)`` and return the target.

        Plain Python values among ``args`` are wrapped as constants;
        :class:`Var`/:class:`Const` instances pass through unchanged.  When no
        target is supplied a fresh variable is allocated (except when
        ``targets=()`` explicitly requests an effect-only call).
        """
        if targets is None:
            targets = (target if target is not None else self.fresh(),)
        instruction = Instruction(
            opcode=OPCODE_ASSIGN,
            targets=tuple(targets),
            module=module,
            function=function,
            args=tuple(self._wrap(arg) for arg in args),
            comment=comment,
        )
        self.program.append(instruction)
        return targets[0] if targets else ""

    def effect(self, module: str, function: str, *args: Any, comment: str = "") -> None:
        """Emit an effect-only call with no result variable."""
        self.call(module, function, *args, targets=(), comment=comment)

    def barrier(self, module: str, function: str, *args: Any, target: str | None = None) -> str:
        """Emit a ``barrier`` instruction opening a guarded block."""
        name = target if target is not None else self.fresh("rseg")
        self.program.append(
            Instruction(
                opcode=OPCODE_BARRIER,
                targets=(name,),
                module=module,
                function=function,
                args=tuple(self._wrap(arg) for arg in args),
            )
        )
        return name

    def redo(self, barrier_var: str, module: str, function: str, *args: Any) -> None:
        """Emit a ``redo`` instruction re-testing the barrier condition."""
        self.program.append(
            Instruction(
                opcode=OPCODE_REDO,
                targets=(barrier_var,),
                module=module,
                function=function,
                args=tuple(self._wrap(arg) for arg in args),
            )
        )

    def exit(self, barrier_var: str) -> None:
        """Emit the ``exit`` closing a barrier block."""
        self.program.append(Instruction(opcode=OPCODE_EXIT, targets=(barrier_var,)))

    # -- helpers -------------------------------------------------------------------

    @staticmethod
    def _wrap(arg: Any) -> Any:
        if isinstance(arg, (Var, Const)):
            return arg
        if isinstance(arg, str):
            # Bare strings name variables only when produced by this builder;
            # SQL identifiers and options must be passed as Const explicitly.
            return Var(arg)
        return Const(arg)

    def build(self) -> MALProgram:
        """The accumulated program."""
        return self.program
