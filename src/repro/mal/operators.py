"""Relational operators over BATs (the ``algebra``, ``bat`` and ``aggr`` modules).

MonetDB's execution paradigm materializes every intermediate result; the
operators here follow the same style — each call produces a fresh BAT.  Only
the operators appearing in the paper's plans (Figure 1 and the §3.1 iterator
snippet) plus a few aggregates needed by the examples are implemented.

Conventions:

* ``select``/``uselect`` evaluate a range predicate on the tail and return the
  qualifying pairs (``uselect`` returns a *candidate list* whose tail repeats
  the head oids, mirroring MonetDB's ``[oid, nil]`` result).
* ``kunion``/``kdifference`` operate on the head-oid sets, keeping the pair of
  the left operand.
* ``markT`` renumbers results densely in the tail; combined with ``reverse``
  and ``join`` it reconstructs final result columns exactly like Figure 1.
"""

from __future__ import annotations

import numpy as np

from repro.storage.bat import BAT
from repro.util.sorted_search import sorted_probe


# ---------------------------------------------------------------------------
# Selections
# ---------------------------------------------------------------------------


def select(bat: BAT, low: float, high: float, *, include_low: bool = True, include_high: bool = False) -> BAT:
    """Pairs whose tail value falls into the given range.

    The default bounds semantics ``[low, high)`` matches the rest of the
    library; the SQL ``BETWEEN`` compiler passes ``include_high=True``.
    Void heads are never materialized in full: only the qualifying oids are
    computed from the dense sequence.

    Sorted tails (``tail_sorted`` — e.g. the pieces the BPM hands to
    rewritten plans) are answered by binary-search slicing, returning views
    without comparing a single tail value.  An empty operand (the usual state
    of the delta BATs) is passed through unchanged — nothing qualifies and
    operators never mutate their inputs.
    """
    if bat.tail.size == 0:
        return bat
    if bat.tail_sorted:
        return bat.value_slice(low, high, include_low=include_low, include_high=include_high)
    tail = bat.tail
    mask = (tail >= low) if include_low else (tail > low)
    mask &= (tail <= high) if include_high else (tail < high)
    positions = np.flatnonzero(mask)
    if bat.is_void_head:
        heads = positions.astype(np.int64) + bat.hseqbase
    else:
        heads = bat.head[positions]
    return BAT.from_pairs(heads, tail[positions], name=bat.name)


def uselect(
    bat: BAT, low: float, high: float, *, include_low: bool = True, include_high: bool = False
) -> BAT:
    """A candidate list: the head oids whose tail value qualifies."""
    qualifying = select(bat, low, high, include_low=include_low, include_high=include_high)
    if qualifying.tail.size == 0:
        return _EMPTY_CANDIDATES
    return BAT.from_pairs(qualifying.head, qualifying.head, name=bat.name)


#: The empty candidate list every empty-range ``uselect`` shares (operators
#: materialize fresh BATs but never mutate existing ones, so one immutable
#: empty instance is safe to hand out repeatedly).
_EMPTY_CANDIDATES = BAT.from_pairs(
    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), tail_sorted=True
)


def thetaselect(bat: BAT, value: float, operator: str) -> BAT:
    """Single-sided comparison selection (used by the SQL compiler for <, >, =)."""
    tail = bat.tail
    if bat.tail_sorted and operator != "!=":
        if operator == "<":
            return bat.slice(0, sorted_probe(tail, value, side="left"))
        if operator == "<=":
            return bat.slice(0, sorted_probe(tail, value, side="right"))
        if operator == ">":
            return bat.slice(sorted_probe(tail, value, side="right"), bat.count)
        if operator == ">=":
            return bat.slice(sorted_probe(tail, value, side="left"), bat.count)
        if operator == "==":
            return bat.slice(
                sorted_probe(tail, value, side="left"),
                sorted_probe(tail, value, side="right"),
            )
    comparators = {
        "<": tail < value,
        "<=": tail <= value,
        ">": tail > value,
        ">=": tail >= value,
        "==": tail == value,
        "!=": tail != value,
    }
    if operator not in comparators:
        raise ValueError(f"unknown comparison operator {operator!r}")
    mask = comparators[operator]
    return BAT.from_pairs(bat.head[mask], tail[mask], name=bat.name)


# ---------------------------------------------------------------------------
# Set operations on head oids
# ---------------------------------------------------------------------------


def kunion(left: BAT, right: BAT) -> BAT:
    """Union by head oid; pairs from ``left`` win on duplicates.

    When one operand is empty the other is passed through unchanged instead of
    being copied — the same shortcut MonetDB's operational optimizer takes for
    empty delta BATs, and essential to keep the per-query cost dominated by
    the actual scan.
    """
    if right.count == 0:
        return left
    if left.count == 0:
        return right
    right_only = ~np.isin(right.head, left.head)
    return BAT.from_pairs(
        np.concatenate([left.head, right.head[right_only]]),
        np.concatenate([left.tail, right.tail[right_only]]),
        name=left.name,
    )


def kdifference(left: BAT, right: BAT) -> BAT:
    """Pairs of ``left`` whose head oid does not appear in ``right``.

    An empty ``right`` operand passes ``left`` through unchanged (see
    :func:`kunion` for the rationale).
    """
    if left.count == 0 or right.count == 0:
        return left
    keep = ~np.isin(left.head, right.head)
    return BAT.from_pairs(left.head[keep], left.tail[keep], name=left.name)


def kintersect(left: BAT, right: BAT) -> BAT:
    """Pairs of ``left`` whose head oid appears in ``right`` (semijoin)."""
    if left.count == 0 or right.count == 0:
        return BAT.from_pairs(np.empty(0, dtype=np.int64), left.tail[:0], name=left.name)
    keep = np.isin(left.head, right.head)
    return BAT.from_pairs(left.head[keep], left.tail[keep], name=left.name)


# ---------------------------------------------------------------------------
# Tuple reconstruction
# ---------------------------------------------------------------------------


def mark_tail(bat: BAT, base: int = 0) -> BAT:
    """Replace the tail with a dense oid numbering starting at ``base`` (markT)."""
    dense = np.arange(base, base + bat.count, dtype=np.int64)
    return BAT.from_pairs(bat.head, dense, name=bat.name)


def join(left: BAT, right: BAT) -> BAT:
    """Equi-join ``left.tail == right.head`` producing ``(left.head, right.tail)``.

    This is the positional join used for tuple reconstruction: the left
    operand maps result positions to qualifying oids and the right operand
    maps oids to attribute values.
    """
    if left.count == 0 or right.count == 0:
        return BAT.from_pairs(np.empty(0, dtype=np.int64), right.tail[:0], name=right.name)
    left_keys = np.asarray(left.tail, dtype=np.int64)
    if right.is_void_head:
        positions = left_keys - right.hseqbase
        if positions.min() >= 0 and positions.max() < right.count:
            # Every key resolves (the usual case: candidate oids come from the
            # very column being reconstructed) — gather without building and
            # applying a validity mask.
            return BAT.from_pairs(left.head, right.tail[positions], name=right.name)
        valid = (positions >= 0) & (positions < right.count)
        return BAT.from_pairs(left.head[valid], right.tail[positions[valid]], name=right.name)
    order = np.argsort(right.head, kind="stable")
    sorted_heads = right.head[order]
    positions = np.searchsorted(sorted_heads, left_keys)
    positions = np.clip(positions, 0, sorted_heads.size - 1)
    valid = sorted_heads[positions] == left_keys
    matched = order[positions[valid]]
    return BAT.from_pairs(left.head[valid], right.tail[matched], name=right.name)


def leftfetchjoin(left: BAT, right: BAT) -> BAT:
    """Alias of :func:`join` kept for MAL-plan familiarity."""
    return join(left, right)


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


def aggr_sum(bat: BAT) -> float:
    """Sum of the tail values."""
    return float(bat.tail.sum()) if bat.count else 0.0


def aggr_count(bat: BAT) -> int:
    """Number of pairs."""
    return bat.count


def aggr_avg(bat: BAT) -> float:
    """Mean of the tail values (0.0 for an empty BAT)."""
    return float(bat.tail.mean()) if bat.count else 0.0


def aggr_min(bat: BAT) -> float:
    """Minimum tail value."""
    if not bat.count:
        raise ValueError("min() over an empty BAT")
    return float(bat.tail.min())


def aggr_max(bat: BAT) -> float:
    """Maximum tail value."""
    if not bat.count:
        raise ValueError("max() over an empty BAT")
    return float(bat.tail.max())
