"""Slot-based compiled MAL plans: the engine's warm execution path.

The tree-walking :class:`~repro.mal.interpreter.Interpreter` pays, on every
instruction of every run, for a registry lookup of the callee, a dict lookup
per variable argument, a dict store per target, and (once per run) a rescan of
the program to match barrier/redo/exit blocks.  None of that work depends on
the query's parameters, so :func:`compile_program` performs it exactly once:

* callees are pre-resolved to their bound Python callables;
* variable names are interned to integer slots in a flat environment list;
* constant arguments are baked into per-instruction argument templates, with a
  patch list saying which positions to fill from which slots;
* the barrier/redo block structure becomes precomputed jump targets.

Executing the resulting :class:`CompiledPlan` does one tuple unpack, an
argument patch and the call per instruction — no name resolution of any kind.
The semantics are identical to ``Interpreter.run`` (property-tested, including
the segment optimizer's iterator rewrites): :meth:`CompiledPlan.run` returns
the same final variable environment, while :meth:`CompiledPlan.execute` is the
allocation-lean variant the engine's hot path calls.
"""

from __future__ import annotations

from typing import Any

from repro.mal.modules import ModuleRegistry
from repro.mal.program import (
    OPCODE_ASSIGN,
    OPCODE_BARRIER,
    OPCODE_EXIT,
    Const,
    MALProgram,
    MALRuntimeError,
    Var,
)

#: Sentinel marking an environment slot that has not been assigned yet.
_UNSET = object()

_OP_ASSIGN = 0
_OP_BARRIER = 1
_OP_REDO = 2
_OP_EXIT = 3


class CompiledPlan:
    """An executable lowering of one MAL program (see module docstring).

    Instances are immutable once built and hold no per-query state, so one
    compiled plan can be re-run concurrently against different execution
    contexts — the engine caches them per query *shape* and binds the range
    parameters at call time through ``arguments``.
    """

    __slots__ = ("name", "parameters", "max_steps", "_steps", "_slots", "_names")

    def __init__(
        self,
        name: str,
        parameters: tuple[str, ...],
        steps: list[tuple],
        slots: dict[str, int],
        max_steps: int,
    ) -> None:
        self.name = name
        self.parameters = parameters
        self.max_steps = max_steps
        self._steps = steps
        self._slots = slots
        self._names = [name for name, _ in sorted(slots.items(), key=lambda item: item[1])]

    def __len__(self) -> int:
        return len(self._steps)

    @property
    def slot_count(self) -> int:
        """Size of the flat environment array."""
        return len(self._slots)

    def slot_of(self, variable: str) -> int:
        """The environment slot interned for ``variable`` (KeyError if unused)."""
        return self._slots[variable]

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        context: Any,
        arguments: dict[str, Any] | None = None,
        counts: list[int] | None = None,
    ) -> list[Any]:
        """Run the plan; returns the flat slot environment.

        ``arguments`` seeds parameter slots (names without a slot are ignored
        — they could not be referenced anyway).  ``counts``, when given, must
        come from :meth:`new_counters` and receives per-instruction execution
        counts (aggregate them with :meth:`opcode_counts`).
        """
        slots = self._slots
        env: list[Any] = [_UNSET] * len(slots)
        if arguments:
            for name, value in arguments.items():
                index = slots.get(name)
                if index is not None:
                    env[index] = value
        return self._run(env, context, counts)

    def parameter_slots(self, names: tuple[str, ...] | None = None) -> tuple[int, ...]:
        """The environment slots of the given parameter names, in order.

        Defaults to the plan's own declared ``parameters``.  This is the slot
        template a prepared statement resolves *once*: each execution then
        seeds the environment through :meth:`execute_bound` with no name
        resolution at all.
        """
        if names is None:
            names = self.parameters
        return tuple(self._slots[name] for name in names)

    def execute_bound(
        self,
        context: Any,
        slots: tuple[int, ...],
        values: tuple[Any, ...],
        counts: list[int] | None = None,
    ) -> list[Any]:
        """Run the plan seeding ``env[slots[i]] = values[i]`` directly.

        The name-free twin of :meth:`execute` used by the prepared-statement
        path: ``slots`` comes from :meth:`parameter_slots` (resolved at
        prepare time), so binding a query costs one list write per parameter.
        """
        env: list[Any] = [_UNSET] * len(self._slots)
        for index, value in zip(slots, values):
            env[index] = value
        return self._run(env, context, counts)

    def _run(
        self, env: list[Any], context: Any, counts: list[int] | None = None
    ) -> list[Any]:
        steps = self._steps
        n_steps = len(steps)
        pc = 0
        # The step budget is only spent on backward jumps (redo): a program
        # cannot run unboundedly without taking one, so the straight-line path
        # pays nothing for runaway protection.
        remaining = self.max_steps
        while pc < n_steps:
            op, func, template, patches, targets, jump, _callee = steps[pc]
            if counts is not None:
                counts[pc] += 1
            if op == _OP_EXIT:
                pc += 1
                continue
            if patches:
                args = list(template)
                for position, slot in patches:
                    value = env[slot]
                    if value is _UNSET:
                        raise MALRuntimeError(
                            f"step {pc} of {self.name!r} references undefined "
                            f"variable {self._names[slot]!r}"
                        )
                    args[position] = value
                value = func(context, *args)
            else:
                value = func(context, *template)
            if op == _OP_ASSIGN:
                if targets:
                    if len(targets) == 1:
                        env[targets[0]] = value
                    else:
                        self._bind_many(targets, value, env, pc)
                pc += 1
            elif op == _OP_BARRIER:
                if value is None:
                    pc = jump  # skip past the matching exit
                else:
                    env[targets[0]] = value
                    pc += 1
            else:  # _OP_REDO
                if value is None:
                    pc += 1  # falls through to the exit
                else:
                    remaining -= 1
                    if remaining < 0:
                        raise MALRuntimeError(
                            f"program {self.name!r} exceeded {self.max_steps} "
                            "loop iterations; likely a non-terminating barrier block"
                        )
                    env[targets[0]] = value
                    pc = jump  # back to the top of the block
        return env

    def run(self, context: Any, arguments: dict[str, Any] | None = None) -> dict[str, Any]:
        """Execute and return the final variable environment as a dict.

        Same contract as :meth:`repro.mal.interpreter.Interpreter.run` — used
        by the parity tests; the engine's hot path calls :meth:`execute`.
        """
        env = self.execute(context, arguments)
        variables: dict[str, Any] = dict(arguments or {})
        names = self._names
        for index, value in enumerate(env):
            if value is not _UNSET:
                variables[names[index]] = value
        return variables

    def _bind_many(self, targets: tuple[int, ...], value: Any, env: list[Any], pc: int) -> None:
        values = value if isinstance(value, (tuple, list)) else (value,)
        if len(values) != len(targets):
            raise MALRuntimeError(
                f"step {pc} of {self.name!r} returned {len(values)} values "
                f"for {len(targets)} targets"
            )
        for target, item in zip(targets, values):
            env[target] = item

    # -- per-instruction profiling -------------------------------------------

    def new_counters(self) -> list[int]:
        """A zeroed per-instruction counter array for :meth:`execute`."""
        return [0] * len(self._steps)

    def opcode_counts(self, counts: list[int]) -> dict[str, int]:
        """Aggregate per-instruction counts by callee (``module.function``)."""
        aggregated: dict[str, int] = {}
        for step, count in zip(self._steps, counts):
            if not count:
                continue
            callee = step[6]
            aggregated[callee] = aggregated.get(callee, 0) + count
        return aggregated


def compile_program(
    program: MALProgram, registry: ModuleRegistry, *, max_steps: int = 10_000_000
) -> CompiledPlan:
    """Lower ``program`` into a :class:`CompiledPlan` against ``registry``.

    Unknown callees raise :class:`MALRuntimeError` at compile time (the
    interpreter would raise the same error at the first execution).
    """
    slots: dict[str, int] = {}

    def intern(name: str) -> int:
        index = slots.get(name)
        if index is None:
            index = slots[name] = len(slots)
        return index

    for parameter in program.parameters:
        intern(parameter)
    blocks = program.matched_blocks()

    steps: list[tuple] = []
    for index, instruction in enumerate(program.instructions):
        if instruction.opcode == OPCODE_EXIT:
            steps.append((_OP_EXIT, None, (), (), (), 0, "exit"))
            continue
        try:
            func = registry.resolve(instruction.callee)
        except KeyError as exc:
            raise MALRuntimeError(str(exc)) from exc
        template: list[Any] = []
        patches: list[tuple[int, int]] = []
        for position, argument in enumerate(instruction.args):
            if isinstance(argument, Var):
                template.append(_UNSET)
                patches.append((position, intern(argument.name)))
            elif isinstance(argument, Const):
                template.append(argument.value)
            else:
                template.append(argument)
        targets = tuple(intern(target) for target in instruction.targets)
        if instruction.opcode == OPCODE_ASSIGN:
            op, jump = _OP_ASSIGN, 0
        elif instruction.opcode == OPCODE_BARRIER:
            op, jump = _OP_BARRIER, blocks[index][1] + 1
        else:
            op, jump = _OP_REDO, blocks[index][0] + 1
        steps.append(
            (op, func, tuple(template), tuple(patches), targets, jump, instruction.callee)
        )
    return CompiledPlan(program.name, program.parameters, steps, slots, max_steps)
