"""The MAL substrate: programs, operators and the interpreter.

MonetDB executes query plans expressed in the MonetDB Assembly Language (MAL):
sequences of instructions over BATs with functional abstractions, guarded
(barrier) blocks and materialize-everything operator semantics (§2).  This
package reproduces the slice of MAL the paper's plans use — enough to compile
the Figure-1 plan from SQL, run it, and let the segment optimizer rewrite it
into the segment-aware iterator form of §3.1.
"""

from repro.mal.program import Const, Instruction, MALProgram, MALRuntimeError, Var
from repro.mal.builder import ProgramBuilder
from repro.mal.compiled import CompiledPlan, compile_program
from repro.mal.interpreter import Interpreter
from repro.mal.modules import ModuleRegistry, default_registry

__all__ = [
    "CompiledPlan",
    "Const",
    "Instruction",
    "MALProgram",
    "Var",
    "ProgramBuilder",
    "Interpreter",
    "MALRuntimeError",
    "ModuleRegistry",
    "compile_program",
    "default_registry",
]
