"""The MAL interpreter.

Executes a :class:`~repro.mal.program.MALProgram` against a module registry
and an execution context.  Supports the barrier/redo/exit guarded blocks used
by the segment optimizer's iterator rewrite (§3.1): a ``barrier`` whose call
returns ``None`` skips its block entirely, a ``redo`` whose call returns a
value loops back to the top of the block.
"""

from __future__ import annotations

from typing import Any

from repro.mal.modules import ModuleRegistry
from repro.mal.program import (
    OPCODE_ASSIGN,
    OPCODE_BARRIER,
    OPCODE_EXIT,
    OPCODE_REDO,
    Const,
    Instruction,
    MALProgram,
    MALRuntimeError,
    Var,
    match_blocks,
)

__all__ = ["Interpreter", "MALRuntimeError"]


class Interpreter:
    """Evaluates MAL programs instruction by instruction."""

    def __init__(self, registry: ModuleRegistry, *, max_steps: int = 10_000_000) -> None:
        self.registry = registry
        self.max_steps = int(max_steps)

    # -- public API ---------------------------------------------------------

    def run(
        self,
        program: MALProgram,
        context: Any,
        arguments: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Execute the program; returns the final variable environment."""
        variables: dict[str, Any] = dict(arguments or {})
        context.variables = variables
        blocks = program.matched_blocks()
        pc = 0
        steps = 0
        instructions = program.instructions
        while pc < len(instructions):
            steps += 1
            if steps > self.max_steps:
                raise MALRuntimeError(
                    f"program {program.name!r} exceeded {self.max_steps} steps; "
                    "likely a non-terminating barrier block"
                )
            instruction = instructions[pc]
            if instruction.opcode == OPCODE_ASSIGN:
                value = self._invoke(instruction, variables, context)
                self._bind(instruction, value, variables)
                pc += 1
            elif instruction.opcode == OPCODE_BARRIER:
                value = self._invoke(instruction, variables, context)
                if value is None:
                    pc = blocks[pc][1] + 1  # skip past the matching exit
                else:
                    self._bind(instruction, value, variables)
                    pc += 1
            elif instruction.opcode == OPCODE_REDO:
                value = self._invoke(instruction, variables, context)
                if value is None:
                    pc += 1  # falls through to the exit
                else:
                    self._bind(instruction, value, variables)
                    pc = blocks[pc][0] + 1  # back to the top of the block
            elif instruction.opcode == OPCODE_EXIT:
                pc += 1
            else:  # pragma: no cover - guarded by Instruction validation
                raise MALRuntimeError(f"unknown opcode {instruction.opcode!r}")
        return variables

    # -- internals ---------------------------------------------------------------

    def _invoke(self, instruction: Instruction, variables: dict[str, Any], context: Any) -> Any:
        try:
            implementation = self.registry.resolve(instruction.callee)
        except KeyError as exc:
            raise MALRuntimeError(str(exc)) from exc
        args = [self._evaluate(arg, variables, instruction) for arg in instruction.args]
        return implementation(context, *args)

    @staticmethod
    def _evaluate(argument: Any, variables: dict[str, Any], instruction: Instruction) -> Any:
        if isinstance(argument, Var):
            if argument.name not in variables:
                raise MALRuntimeError(
                    f"instruction {instruction.render()!r} references undefined "
                    f"variable {argument.name!r}"
                )
            return variables[argument.name]
        if isinstance(argument, Const):
            return argument.value
        return argument

    @staticmethod
    def _bind(instruction: Instruction, value: Any, variables: dict[str, Any]) -> None:
        if not instruction.targets:
            return
        if len(instruction.targets) == 1:
            variables[instruction.targets[0]] = value
            return
        values = value if isinstance(value, (tuple, list)) else (value,)
        if len(values) != len(instruction.targets):
            raise MALRuntimeError(
                f"instruction {instruction.render()!r} returned {len(values)} values "
                f"for {len(instruction.targets)} targets"
            )
        for target, item in zip(instruction.targets, values):
            variables[target] = item

    @staticmethod
    def _match_blocks(program: MALProgram) -> dict[int, tuple[int, int]]:
        """Map barrier/redo instruction indices to (barrier_index, exit_index).

        Kept as a compatibility shim; the matching itself lives in
        :func:`repro.mal.program.match_blocks` and is cached per program.
        """
        return match_blocks(program.instructions)
