"""MAL runtime modules: the functions instructions can call.

A :class:`ModuleRegistry` maps qualified names such as ``algebra.select`` to
Python callables ``fn(ctx, *args)`` where ``ctx`` is the execution context
(variables, catalog, result sets, BPM).  :func:`default_registry` registers
the built-in modules — ``algebra``, ``bat``, ``calc``, ``aggr`` and ``sql`` —
while the Bat Partition Manager registers its own ``bpm`` module when adaptive
columns are enabled.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mal import operators
from repro.storage.bat import BAT

ModuleFunction = Callable[..., Any]


class ModuleRegistry:
    """Name → implementation mapping for MAL module functions."""

    def __init__(self) -> None:
        self._functions: dict[str, ModuleFunction] = {}

    def register(self, module: str, function: str, implementation: ModuleFunction) -> None:
        """Register ``module.function``; overrides any existing registration."""
        self._functions[f"{module}.{function}"] = implementation

    def register_module(self, module: str, functions: dict[str, ModuleFunction]) -> None:
        """Register a whole module at once."""
        for function, implementation in functions.items():
            self.register(module, function, implementation)

    def resolve(self, callee: str) -> ModuleFunction:
        """Look up a qualified name; raises :class:`KeyError` when unknown."""
        try:
            return self._functions[callee]
        except KeyError as exc:
            raise KeyError(f"no MAL implementation registered for {callee!r}") from exc

    def knows(self, callee: str) -> bool:
        """True when the qualified name is registered."""
        return callee in self._functions

    def copy(self) -> "ModuleRegistry":
        """An independent copy (used per-database so BPM registrations stay local)."""
        fresh = ModuleRegistry()
        fresh._functions.update(self._functions)
        return fresh


# ---------------------------------------------------------------------------
# Built-in module implementations
# ---------------------------------------------------------------------------


def _algebra_select(ctx, bat: BAT, low, high, *flags) -> BAT:
    include_low = bool(flags[0]) if len(flags) > 0 else True
    include_high = bool(flags[1]) if len(flags) > 1 else False
    return operators.select(bat, low, high, include_low=include_low, include_high=include_high)


def _algebra_uselect(ctx, bat: BAT, low, high, *flags) -> BAT:
    include_low = bool(flags[0]) if len(flags) > 0 else True
    include_high = bool(flags[1]) if len(flags) > 1 else False
    return operators.uselect(bat, low, high, include_low=include_low, include_high=include_high)


def _algebra_thetaselect(ctx, bat: BAT, value, operator: str) -> BAT:
    return operators.thetaselect(bat, value, operator)


def _algebra_kunion(ctx, left: BAT, right: BAT) -> BAT:
    return operators.kunion(left, right)


def _algebra_kdifference(ctx, left: BAT, right: BAT) -> BAT:
    return operators.kdifference(left, right)


def _algebra_kintersect(ctx, left: BAT, right: BAT) -> BAT:
    return operators.kintersect(left, right)


def _algebra_markt(ctx, bat: BAT, base=0) -> BAT:
    return operators.mark_tail(bat, int(base))


def _algebra_join(ctx, left: BAT, right: BAT) -> BAT:
    return operators.join(left, right)


def _bat_reverse(ctx, bat: BAT) -> BAT:
    return bat.reverse()


def _bat_mirror(ctx, bat: BAT) -> BAT:
    return BAT.from_pairs(bat.head, bat.head, name=bat.name)


def _calc_oid(ctx, value) -> int:
    return int(value)


def _calc_dbl(ctx, value) -> float:
    return float(value)


def _aggr_sum(ctx, bat: BAT) -> float:
    return operators.aggr_sum(bat)


def _aggr_count(ctx, bat: BAT) -> int:
    return operators.aggr_count(bat)


def _aggr_avg(ctx, bat: BAT) -> float:
    return operators.aggr_avg(bat)


def _aggr_min(ctx, bat: BAT) -> float:
    return operators.aggr_min(bat)


def _aggr_max(ctx, bat: BAT) -> float:
    return operators.aggr_max(bat)


def _sql_bind(ctx, schema: str, table: str, column: str, level) -> BAT:
    return ctx.catalog.column(table, column).bind(int(level))


def _sql_bind_dbat(ctx, schema: str, table: str, level) -> BAT:
    return ctx.catalog.table(table).deletion_bat


def _sql_result_set(ctx, n_columns, n_rows_hint, order_bat) -> int:
    return ctx.new_result_set()


def _sql_rs_column(ctx, result_set_id, table: str, column: str, type_name: str, digits, scale, bat):
    ctx.add_result_column(int(result_set_id), column, bat)
    return None


def _sql_export_result(ctx, result_set_id, destination: str = ""):
    ctx.export_result(int(result_set_id))
    return None


def _sql_export_value(ctx, name: str, value):
    ctx.export_scalar(name, value)
    return None


def default_registry() -> ModuleRegistry:
    """A registry with every built-in module registered."""
    registry = ModuleRegistry()
    registry.register_module(
        "algebra",
        {
            "select": _algebra_select,
            "uselect": _algebra_uselect,
            "thetaselect": _algebra_thetaselect,
            "kunion": _algebra_kunion,
            "kdifference": _algebra_kdifference,
            "kintersect": _algebra_kintersect,
            "markT": _algebra_markt,
            "join": _algebra_join,
            "leftfetchjoin": _algebra_join,
        },
    )
    registry.register_module("bat", {"reverse": _bat_reverse, "mirror": _bat_mirror})
    registry.register_module("calc", {"oid": _calc_oid, "dbl": _calc_dbl})
    registry.register_module(
        "aggr",
        {
            "sum": _aggr_sum,
            "count": _aggr_count,
            "avg": _aggr_avg,
            "min": _aggr_min,
            "max": _aggr_max,
        },
    )
    registry.register_module(
        "sql",
        {
            "bind": _sql_bind,
            "bind_dbat": _sql_bind_dbat,
            "resultSet": _sql_result_set,
            "rsColumn": _sql_rs_column,
            "exportResult": _sql_export_result,
            "exportValue": _sql_export_value,
        },
    )
    return registry
