"""MAL program representation.

A MAL program is a flat list of instructions.  Each instruction calls a
``module.function`` with a mix of variable references and constants and binds
the result to target variables.  Control flow is expressed with
barrier/redo/exit blocks named after their barrier variable, exactly like the
iterator snippet of §3.1:

.. code-block:: text

    barrier rseg := bpm.newIterator(Y1, A0, A1);
    T1 := algebra.select(rseg, A0, A1);
    bpm.addSegment(Y2, T1);
    redo rseg := bpm.hasMoreElements(Y1, A0, A1);
    exit rseg;
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class Var:
    """A reference to a MAL variable by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal argument embedded in an instruction."""

    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return repr(self.value)


#: Instruction opcodes: plain assignments plus the barrier-block control flow.
OPCODE_ASSIGN = "assign"
OPCODE_BARRIER = "barrier"
OPCODE_REDO = "redo"
OPCODE_EXIT = "exit"

_OPCODES = {OPCODE_ASSIGN, OPCODE_BARRIER, OPCODE_REDO, OPCODE_EXIT}


class MALRuntimeError(RuntimeError):
    """Raised for malformed programs and for runtime name-resolution failures."""


def match_blocks(instructions: "list[Instruction]") -> dict[int, tuple[int, int]]:
    """Map barrier/redo instruction indices to (barrier_index, exit_index).

    Raises :class:`MALRuntimeError` for unbalanced or nested blocks — the same
    validation the interpreter applies before executing a program.
    """
    blocks: dict[int, tuple[int, int]] = {}
    open_barriers: dict[str, int] = {}
    pending: dict[str, list[int]] = {}
    for index, instruction in enumerate(instructions):
        name = instruction.target
        if instruction.opcode == OPCODE_BARRIER:
            if name in open_barriers:
                raise MALRuntimeError(f"nested barrier on the same variable {name!r}")
            open_barriers[name] = index
            pending[name] = [index]
        elif instruction.opcode == OPCODE_REDO:
            if name not in open_barriers:
                raise MALRuntimeError(f"redo outside of a barrier block: {name!r}")
            pending[name].append(index)
        elif instruction.opcode == OPCODE_EXIT:
            if name not in open_barriers:
                raise MALRuntimeError(f"exit without a matching barrier: {name!r}")
            barrier_index = open_barriers.pop(name)
            for member in pending.pop(name):
                blocks[member] = (barrier_index, index)
    if open_barriers:
        unmatched = ", ".join(sorted(open_barriers))
        raise MALRuntimeError(f"barrier blocks without exit: {unmatched}")
    return blocks


@dataclass(frozen=True)
class Instruction:
    """One MAL instruction.

    ``exit`` instructions have no call; everything else invokes
    ``module.function(*args)`` and binds the result to ``targets`` (possibly
    empty for effect-only calls such as ``sql.rsColumn``).
    """

    opcode: str
    targets: tuple[str, ...] = ()
    module: str | None = None
    function: str | None = None
    args: tuple[Any, ...] = ()
    comment: str = ""

    def __post_init__(self) -> None:
        if self.opcode not in _OPCODES:
            raise ValueError(f"unknown opcode {self.opcode!r}")
        if self.opcode != OPCODE_EXIT and self.function is None:
            raise ValueError(f"{self.opcode} instructions must call a function")

    @property
    def callee(self) -> str:
        """The qualified ``module.function`` name."""
        return f"{self.module}.{self.function}" if self.module else (self.function or "")

    @property
    def target(self) -> str | None:
        """The single target variable (None when there are no targets)."""
        return self.targets[0] if self.targets else None

    def argument_names(self) -> list[str]:
        """Names of all variable references among the arguments."""
        return [arg.name for arg in self.args if isinstance(arg, Var)]

    def with_args(self, args: Iterable[Any]) -> "Instruction":
        """A copy of the instruction with different arguments."""
        return replace(self, args=tuple(args))

    def render(self) -> str:
        """Render the instruction in MAL-like concrete syntax."""
        if self.opcode == OPCODE_EXIT:
            return f"exit {self.targets[0] if self.targets else ''};".strip()
        call = f"{self.callee}({', '.join(str(arg) for arg in self.args)})"
        assignment = f"{', '.join(self.targets)} := " if self.targets else ""
        prefix = f"{self.opcode} " if self.opcode in {OPCODE_BARRIER, OPCODE_REDO} else ""
        comment = f"  # {self.comment}" if self.comment else ""
        return f"{prefix}{assignment}{call};{comment}"


@dataclass
class MALProgram:
    """A named MAL program: parameters plus a flat instruction list."""

    name: str
    parameters: tuple[str, ...] = ()
    instructions: list[Instruction] = field(default_factory=list)
    _blocks: dict[int, tuple[int, int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _blocks_length: int = field(default=-1, init=False, repr=False, compare=False)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)
        self._blocks = None

    def extend(self, instructions: Iterable[Instruction]) -> None:
        self.instructions.extend(instructions)
        self._blocks = None

    def matched_blocks(self) -> dict[int, tuple[int, int]]:
        """The barrier/redo → (barrier_index, exit_index) map, cached.

        The cache is invalidated by :meth:`append`/:meth:`extend` and by any
        change in instruction count; code mutating ``instructions`` in place
        without changing its length must call :meth:`invalidate_blocks`.
        """
        blocks = self._blocks
        if blocks is None or self._blocks_length != len(self.instructions):
            blocks = match_blocks(self.instructions)
            self._blocks = blocks
            self._blocks_length = len(self.instructions)
        return blocks

    def invalidate_blocks(self) -> None:
        """Drop the cached block structure after in-place instruction edits."""
        self._blocks = None

    def defined_variables(self) -> set[str]:
        """Every variable assigned anywhere in the program."""
        return {target for instruction in self.instructions for target in instruction.targets}

    def used_variables(self) -> set[str]:
        """Every variable referenced as an argument anywhere in the program."""
        return {
            name
            for instruction in self.instructions
            for name in instruction.argument_names()
        }

    def find_calls(self, module: str, function: str | None = None) -> list[int]:
        """Indices of instructions calling ``module`` (optionally a function)."""
        matches = []
        for index, instruction in enumerate(self.instructions):
            if instruction.module != module:
                continue
            if function is not None and instruction.function != function:
                continue
            matches.append(index)
        return matches

    def render(self) -> str:
        """Pretty-print the program in MAL-like concrete syntax (cf. Figure 1)."""
        header = f"function user.{self.name}({', '.join(self.parameters)}):void;"
        body = "\n".join(f"    {instruction.render()}" for instruction in self.instructions)
        footer = f"end {self.name};"
        return "\n".join([header, body, footer]) if body else "\n".join([header, footer])

    def copy(self) -> "MALProgram":
        """A shallow copy with an independent instruction list."""
        return MALProgram(self.name, self.parameters, list(self.instructions))
