"""Deterministic fault injection for the scale-out stack.

The fault-tolerance layer (replica health state machine, wave retry, client
reconnect) is only trustworthy if its failure paths are *exercised*, and
failure paths driven by wall-clock races make flaky tests.  This package
injects failures **deterministically**: a :class:`FaultInjector` is armed
with a schedule of :class:`FaultSpec` entries keyed on *operation counts* —
"crash replica 1's 5th wave", "drop the client socket on the 3rd send" — so
a test (or the CI chaos-smoke job) replays the exact same failure sequence
every run.  The only randomness is a seeded RNG used to *generate* schedules
(:meth:`FaultInjector.schedule_random`); firing is pure counting.

Injected failures derive from :class:`~repro.api.exceptions.TransientError`,
so the production retry/failover machinery treats them exactly like a real
infrastructure failure — which is the point.
"""

from repro.fault.injector import (
    FaultInjector,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    specs_from_json,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "specs_from_json",
]
