"""The seeded, operation-counted fault injector.

Every fault *site* in the stack calls ``injector.fire(site, **context)`` at
the top of the operation it guards (sites are plain strings; an unarmed
injector — or an armed one with no matching spec — costs one lock-guarded
counter increment).  A :class:`FaultSpec` names a site, an optional context
``match`` (e.g. ``{"replica": 1}``), the 1-based ordinal ``at`` of the first
*matching* operation to fault, how many consecutive matching operations to
fault (``count``), and the ``action``:

``"error"``
    raise :class:`InjectedFault` (a generic worker exception)
``"crash"``
    raise :class:`InjectedCrash` (the replica "process" died mid-wave)
``"hang"``
    sleep ``delay_s`` before proceeding (a wedged or pathologically slow
    replica; pair with the admission layer's ``wave_deadline_s``)
``"drop"``
    return ``"drop"`` to the caller, which abandons its socket (client-side
    sites cannot raise usefully — the *transport* is the failure)

Sites wired up in this repository:

=====================  ====================================================
``wave.execute``       :meth:`repro.cluster.Router.execute_wave_on`, fired
                       on the target replica's worker thread with
                       ``replica=<index>`` context
``client.send``        :meth:`repro.api.aio.AsyncConnection._request`,
                       fired before each frame write with ``op=<frame
                       type>`` context
=====================  ====================================================

Determinism: firing decisions depend only on per-spec match counters — no
wall clock, no unseeded randomness.  ``schedule_random`` derives ``at``
ordinals from the injector's seeded RNG, so a chaos schedule is reproducible
from its seed alone.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.api.exceptions import TransientError

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
    "specs_from_json",
]

#: The actions ``fire`` understands.
_ACTIONS = ("error", "crash", "hang", "drop")


class InjectedFault(TransientError):
    """A deliberately injected failure (generic worker exception)."""


class InjectedCrash(InjectedFault):
    """A deliberately injected replica crash."""


@dataclass
class FaultSpec:
    """One scheduled fault: fire ``action`` on matching operations [at, at+count)."""

    site: str
    at: int = 1
    action: str = "error"
    count: int = 1
    delay_s: float = 0.1
    match: dict[str, Any] = field(default_factory=dict)
    #: Matching operations observed so far (the spec's private ordinal clock).
    seen: int = 0
    #: How many times this spec has actually fired.
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )
        if self.at < 1:
            raise ValueError(f"at is a 1-based ordinal, got {self.at}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches_context(self, context: dict[str, Any]) -> bool:
        return all(context.get(key) == value for key, value in self.match.items())

    @property
    def exhausted(self) -> bool:
        """No future operation can fire this spec anymore."""
        return self.seen >= self.at + self.count - 1

    def as_dict(self) -> dict[str, Any]:
        return {
            "site": self.site,
            "at": self.at,
            "action": self.action,
            "count": self.count,
            "delay_s": self.delay_s,
            "match": dict(self.match),
            "seen": self.seen,
            "fired": self.fired,
        }


class FaultInjector:
    """A thread-safe schedule of deterministic faults.

    Build one explicitly (``injector.schedule("wave.execute", at=5,
    action="crash", match={"replica": 1})``), from a JSON-ready dict
    (:meth:`from_spec`, the ``--fault-spec`` CLI path), or generatively from
    the seeded RNG (:meth:`schedule_random`).  Hand it to the components
    under test — :class:`~repro.cluster.Router` (``injector=``),
    :func:`repro.aio.connect` (``injector=``) — and read :attr:`log`
    afterwards to assert what fired.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        # Seeded without wall-clock input: schedules derived from this RNG
        # are reproducible from the seed alone.
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._specs: list[FaultSpec] = []
        self._ops: dict[str, int] = {}
        #: Every fired fault, in firing order: {site, action, ordinal, context}.
        self.log: list[dict[str, Any]] = []

    # -- scheduling -----------------------------------------------------------

    def schedule(
        self,
        site: str,
        *,
        at: int = 1,
        action: str = "error",
        count: int = 1,
        delay_s: float = 0.1,
        **match: Any,
    ) -> FaultSpec:
        """Arm one fault; keyword context (e.g. ``replica=1``) narrows the match."""
        spec = FaultSpec(
            site=site, at=at, action=action, count=count, delay_s=delay_s,
            match=match,
        )
        with self._lock:
            self._specs.append(spec)
        return spec

    def schedule_random(
        self,
        site: str,
        *,
        n_faults: int,
        window: int,
        action: str = "crash",
        count: int = 1,
        delay_s: float = 0.1,
        **match: Any,
    ) -> list[FaultSpec]:
        """Arm ``n_faults`` faults at distinct seeded-random ordinals in [1, window]."""
        if n_faults > window:
            raise ValueError(f"cannot place {n_faults} faults in a window of {window}")
        ordinals = self._rng.sample(range(1, window + 1), n_faults)
        return [
            self.schedule(
                site, at=ordinal, action=action, count=count, delay_s=delay_s,
                **match,
            )
            for ordinal in sorted(ordinals)
        ]

    @classmethod
    def from_spec(cls, spec: dict[str, Any]) -> "FaultInjector":
        """Build from a JSON-ready dict: ``{"seed": 7, "faults": [{...}, ...]}``.

        Each fault entry takes the :class:`FaultSpec` fields (``site`` is
        required); an entry may give ``window: W`` instead of ``at`` to have
        the ordinal drawn from the injector's seeded RNG — the CLI's way of
        asking for "a crash somewhere in the first W waves, reproducibly".
        """
        injector = cls(seed=int(spec.get("seed", 0)))
        for entry in spec.get("faults", ()):
            entry = dict(entry)
            site = entry.pop("site")
            match = dict(entry.pop("match", {}))
            window = entry.pop("window", None)
            if window is not None and "at" not in entry:
                entry["at"] = injector._rng.randint(1, int(window))
            injector.schedule(site, **entry, **match)
        return injector

    # -- firing ---------------------------------------------------------------

    def fire(self, site: str, **context: Any) -> str | None:
        """Count one operation at ``site``; fault it if a spec says so.

        Raises for ``error``/``crash`` actions, sleeps for ``hang``, and
        returns the action name for actions the *caller* must perform
        (``drop``).  Returns ``None`` when nothing fired.
        """
        with self._lock:
            self._ops[site] = self._ops.get(site, 0) + 1
            firing: FaultSpec | None = None
            for spec in self._specs:
                if spec.site != site or not spec.matches_context(context):
                    continue
                spec.seen += 1
                if spec.at <= spec.seen < spec.at + spec.count and firing is None:
                    spec.fired += 1
                    firing = spec
            if firing is None:
                return None
            self.log.append(
                {
                    "site": site,
                    "action": firing.action,
                    "ordinal": firing.seen,
                    "context": dict(context),
                }
            )
            delay = firing.delay_s
            action = firing.action
        # Act outside the lock: a hang must not wedge unrelated sites.
        if action == "error":
            raise InjectedFault(f"injected fault at {site} (op {context or ''})")
        if action == "crash":
            raise InjectedCrash(f"injected crash at {site} (op {context or ''})")
        if action == "hang":
            time.sleep(delay)
            return "hang"
        return action

    def check(self, site: str, **context: Any) -> str | None:
        """Like :meth:`fire` but never raises or sleeps — returns the action name.

        For call sites that must stage the failure themselves (e.g. aborting
        a socket) without an exception unwinding through foreign code.
        """
        try:
            return self.fire(site, **context)
        except InjectedFault:
            return "error"

    # -- observability --------------------------------------------------------

    @property
    def specs(self) -> list[FaultSpec]:
        with self._lock:
            return list(self._specs)

    def operations(self, site: str) -> int:
        """Total operations observed at ``site`` (fired or not)."""
        with self._lock:
            return self._ops.get(site, 0)

    def fired(self, site: str | None = None) -> int:
        """Total faults fired (optionally at one site)."""
        with self._lock:
            return sum(
                1 for entry in self.log if site is None or entry["site"] == site
            )

    def pending(self) -> list[FaultSpec]:
        """Specs that can still fire."""
        with self._lock:
            return [spec for spec in self._specs if not spec.exhausted]

    def describe(self) -> dict[str, Any]:
        with self._lock:
            return {
                "seed": self.seed,
                "operations": dict(self._ops),
                "specs": [spec.as_dict() for spec in self._specs],
                "fired": len(self.log),
            }


def specs_from_json(text: str) -> FaultInjector:
    """``--fault-spec`` helper: parse a JSON document into an armed injector."""
    return FaultInjector.from_spec(json.loads(text))
