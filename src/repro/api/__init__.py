"""The DB-API 2.0 (PEP 249) client facade of the repro engine.

The paper integrates self-organization "completely transparently for the SQL
front-end"; this package is that front-end for client code::

    import repro

    with repro.connect() as connection:
        connection.admin.create_table("p", {"objid": "int64", "ra": "float64"})
        connection.admin.bulk_load("p", {"objid": objids, "ra": ra_values})
        connection.admin.enable_adaptive("p", "ra", strategy="segmentation")

        cursor = connection.cursor()
        cursor.execute(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?", (205.1, 205.12)
        )
        rows = cursor.fetchall()

        select = connection.prepare(
            "SELECT objid FROM p WHERE ra BETWEEN :lo AND :hi"
        )
        result = select.execute({"lo": 205.1, "hi": 205.12})

Parameterized execution binds straight into the engine's compiled plans: the
statement shape is lowered once, and every execution skips the parse *and*
the literal masking — the fastest of the plan-cache levels (see
``QueryResult.cache_level``).  The module-level attributes below are the
PEP 249 contract: ``paramstyle`` is ``"qmark"`` (``?``), with ``:name``
named style accepted as well.
"""

from repro.api.connection import Admin, Connection, connect
from repro.api.cursor import Cursor
from repro.api.exceptions import (
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    Warning,
)
from repro.api.prepared import PreparedStatement

#: PEP 249 module attributes.
apilevel = "2.0"
threadsafety = 1  # threads may share the module, not connections
paramstyle = "qmark"

__all__ = [
    "Admin",
    "Connection",
    "Cursor",
    "DataError",
    "DatabaseError",
    "Error",
    "IntegrityError",
    "InterfaceError",
    "InternalError",
    "NotSupportedError",
    "OperationalError",
    "PreparedStatement",
    "ProgrammingError",
    "Warning",
    "apilevel",
    "connect",
    "paramstyle",
    "threadsafety",
]
