"""The PEP 249 cursor: execute, bind, fetch.

A cursor is a thin client-side view over :class:`~repro.engine.result
.QueryResult` rows.  ``execute(sql)`` without parameters takes the literal
path (text/masked/shape plan-cache levels); ``execute(sql, params)`` takes the
prepared path — the statement's placeholder shape is looked up (or lowered
once) in the plan cache and the bindings are validated and written straight
into the compiled plan's slot environment, skipping both the parse and the
literal masking.  ``executemany`` binds every parameter set against one
prepared shape and routes same-column range selections — overlapping and
disjoint alike — through the engine's vectorized batch executor.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.api.exceptions import InterfaceError, translating
from repro.engine.profile import QueryProfile
from repro.engine.result import QueryResult

#: ``description`` type codes are numpy dtype names; scalar aggregates are floats.
_SCALAR_TYPE = "float64"


class Cursor:
    """A database cursor (PEP 249) bound to one :class:`~repro.api.Connection`.

    Attributes beyond the PEP: ``result`` (the :class:`QueryResult` of the
    last statement), ``results`` (all results of the last ``executemany``),
    ``cache_level`` (which plan-cache level answered the last statement:
    ``exact``/``masked``/``shape``/``prepared``/``batched``/``cold``) and
    ``profile`` (its per-stage :class:`QueryProfile`).
    """

    def __init__(self, connection: Any) -> None:
        self._connection = connection
        self._closed = False
        self.arraysize = 1
        self._executed = False
        self._results: list[QueryResult] = []
        self._result_index = 0
        self._row_index = 0
        self._description: list[tuple] | None = None
        self._rowcount = -1

    # -- state ----------------------------------------------------------------

    @property
    def connection(self) -> Any:
        """The connection this cursor belongs to (PEP 249 extension)."""
        return self._connection

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (or the connection closed)."""
        return self._closed or self._connection.closed

    def close(self) -> None:
        """Close the cursor; further operations raise :class:`InterfaceError`."""
        self._closed = True
        self._results = []
        self._description = None

    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("cursor is closed")

    # -- execution ------------------------------------------------------------

    def execute(self, operation: str, parameters: Any | None = None) -> "Cursor":
        """Run one statement; returns the cursor itself (so fetches chain).

        Without ``parameters`` the SQL must carry its literals inline (the
        classic path).  With ``parameters`` the SQL must carry ``?`` positional
        or ``:name`` named placeholders; the statement is prepared (once per
        text, cached) and the values are bound without re-parsing.
        """
        self._check_open()
        database = self._connection._database
        with translating():
            if parameters is None:
                result = database.execute(operation)
            else:
                prepared = database.prepare_statement(operation)
                result = database.execute_prepared(prepared, parameters)
        self._install([result])
        return self

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Any]
    ) -> "Cursor":
        """Run one parameterized statement once per parameter set.

        The statement is prepared exactly once; every binding is validated
        against that one shape up front.  Same-column range selections —
        overlapping and disjoint alike — are answered by the engine's
        vectorized batch executor (one kernel pass for the whole batch);
        everything else executes individually.  The fetchable rows are the
        concatenation of every execution's rows, in input order.
        """
        self._check_open()
        database = self._connection._database
        with translating():
            prepared = database.prepare_statement(operation)
            results = database.execute_prepared_many(prepared, list(seq_of_parameters))
        self._install(results)
        return self

    def _install(self, results: list[QueryResult]) -> None:
        """Point the fetch state at a fresh list of results."""
        self._executed = True
        self._results = results
        self._result_index = 0
        self._row_index = 0
        self._description = self._describe(results[0]) if results else None
        self._rowcount = sum(self._result_rows(result) for result in results)

    @staticmethod
    def _describe(result: QueryResult) -> list[tuple]:
        """The 7-item ``description`` sequence of one result (PEP 249)."""
        if result.scalars:
            return [
                (label, _SCALAR_TYPE, None, 8, None, None, None)
                for label in result.scalars
            ]
        return [
            (name, array.dtype.name, None, int(array.dtype.itemsize), None, None, None)
            for name, array in result.columns.items()
        ]

    @staticmethod
    def _result_rows(result: QueryResult) -> int:
        """Fetchable rows of one result: row count, or 1 for a scalar row."""
        if result.scalars:
            return 1
        return result.row_count

    # -- results --------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        """Column metadata of the current result set (PEP 249 7-tuples)."""
        return self._description

    @property
    def rowcount(self) -> int:
        """Rows produced by the last operation (-1 before any execute)."""
        return self._rowcount

    @property
    def result(self) -> QueryResult | None:
        """The engine-level result of the last statement (extension)."""
        return self._results[-1] if self._results else None

    @property
    def results(self) -> list[QueryResult]:
        """Every result of the last operation (one per ``executemany`` binding)."""
        return list(self._results)

    @property
    def cache_level(self) -> str | None:
        """Plan-cache level that answered the last statement (extension)."""
        result = self.result
        return result.cache_level if result is not None else None

    @property
    def profile(self) -> QueryProfile | None:
        """Per-stage profile of the last statement (extension)."""
        result = self.result
        return result.profile if result is not None else None

    # -- fetching -------------------------------------------------------------

    def fetchone(self) -> tuple | None:
        """The next row, or ``None`` when the result set is exhausted.

        A pure-aggregate result produces exactly one row holding the scalar
        values in ``description`` order — ``fetchone()`` on
        ``SELECT count(*)`` returns a 1-tuple, mirroring
        ``QueryResult.scalar``.
        """
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        # An executemany over zero bindings is executed-but-empty: fetches
        # return no rows rather than raising.
        while self._result_index < len(self._results):
            result = self._results[self._result_index]
            if self._row_index < self._result_rows(result):
                row = self._row(result, self._row_index)
                self._row_index += 1
                return row
            self._result_index += 1
            self._row_index = 0
        return None

    @staticmethod
    def _row(result: QueryResult, index: int) -> tuple:
        if result.scalars:
            return tuple(result.scalars.values())
        return tuple(array[index] for array in result.columns.values())

    @staticmethod
    def _rows_slice(result: QueryResult, start: int, stop: int) -> list[tuple]:
        """Rows ``[start, stop)`` of one result, materialized in bulk.

        One ``zip`` over column slices instead of a per-row tuple build —
        this is what makes ``fetchall`` on a large selection cheap.
        """
        if result.scalars:
            return [tuple(result.scalars.values())] if start == 0 and stop > 0 else []
        return list(zip(*(array[start:stop] for array in result.columns.values())))

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        """The next ``size`` rows (defaults to :attr:`arraysize`)."""
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        if size is None:
            size = self.arraysize
        rows: list[tuple] = []
        remaining = max(size, 0)
        while remaining > 0 and self._result_index < len(self._results):
            result = self._results[self._result_index]
            available = self._result_rows(result) - self._row_index
            if available <= 0:
                self._result_index += 1
                self._row_index = 0
                continue
            take = min(remaining, available)
            rows.extend(self._rows_slice(result, self._row_index, self._row_index + take))
            self._row_index += take
            remaining -= take
        return rows

    def fetchall(self) -> list[tuple]:
        """Every remaining row."""
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        rows: list[tuple] = []
        while self._result_index < len(self._results):
            result = self._results[self._result_index]
            total = self._result_rows(result)
            if self._row_index < total:
                rows.extend(self._rows_slice(result, self._row_index, total))
            self._result_index += 1
            self._row_index = 0
        return rows

    def __iter__(self) -> Iterator[tuple]:
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP 249 no-ops -------------------------------------------------------

    def setinputsizes(self, sizes: Any) -> None:
        """Required by PEP 249; this engine needs no sizing hints."""

    def setoutputsize(self, size: Any, column: Any | None = None) -> None:
        """Required by PEP 249; this engine needs no sizing hints."""

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
