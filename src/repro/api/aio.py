"""The async client: PEP 249 shapes over the repro wire protocol.

``await repro.aio.connect(host, port)`` opens an :class:`AsyncConnection`
mirroring the in-process facade — cursors, ``prepare``, an ``admin`` handle —
except that execution awaits a server round-trip and *parameterized* selects
ride the server's batch admission: concurrent clients issuing bound range
selects are answered as one vectorized wave (see
:mod:`repro.server.admission`).

The connection pipelines: every request carries an id and responses are
correlated by a background receive task, so many coroutines can share one
connection and keep queries in flight concurrently::

    connection = await repro.aio.connect(*server.address)
    rows = await asyncio.gather(
        *(connection.execute("select v from t where v >= ? and v < ?", (lo, hi))
          for lo, hi in windows)
    )

Fetching stays synchronous (the rows are already client-side once ``execute``
returns), matching the blocking cursor's fetch surface exactly.

Resilience (all opt-in, off by default so failures stay loud):

``request_timeout``
    Per-request deadline.  A timed-out request raises
    :class:`~repro.api.exceptions.TransientError`; its late response, if one
    ever arrives, is discarded by the correlation map — never delivered to
    the wrong caller.
``reconnect=True``
    A dropped socket no longer bricks the connection: the next request
    redials with exponential backoff (``reconnect_attempts`` ×
    ``reconnect_backoff_s``) and re-runs the HELLO handshake.  Server-side
    prepared-statement ids die with the old connection, so
    :class:`AsyncPreparedStatement` handles raise ``ProgrammingError`` after
    a reconnect — re-``prepare`` them.
``retry_reads=True``
    Text-bearing ``execute``/``executemany`` frames that failed with a
    :class:`~repro.api.exceptions.TransientError` (drop, timeout, failover
    in progress) are retried after reconnecting.  Bound range selects are
    idempotent above adaptation, which is what makes this safe; statement-id
    frames are **never** retried (the id does not survive the reconnect).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Iterator, Sequence

import numpy as np

from repro.api.exceptions import (
    InterfaceError,
    NotSupportedError,
    OperationalError,
    TransientError,
    error_from_name,
)
from repro.server.protocol import PROTOCOL_VERSION, read_frame, write_frame

__all__ = [
    "AsyncAdmin",
    "AsyncConnection",
    "AsyncCursor",
    "AsyncPreparedStatement",
    "RemoteResult",
    "connect",
]

#: ``description`` type code for scalar aggregates (mirrors the sync cursor).
_SCALAR_TYPE = "float64"


class RemoteResult:
    """One query result materialized from a ``result`` frame.

    The wire twin of :class:`~repro.engine.result.QueryResult`: ``columns``
    maps names to numpy arrays rebuilt with their original dtypes, ``scalars``
    carries pure-aggregate results, and ``cache_level``/``batched`` report how
    the server answered (``batched=True`` means the query rode a wave).
    """

    def __init__(self, payload: dict[str, Any]) -> None:
        self.row_count: int = int(payload.get("rowcount", 0))
        self.cache_level: str | None = payload.get("cache_level")
        self.batched: bool = bool(payload.get("batched", False))
        self.scalars: dict[str, float] = dict(payload.get("scalars") or {})
        dtypes = payload.get("dtypes") or {}
        self.columns: dict[str, np.ndarray] = {
            name: np.asarray(values, dtype=dtypes.get(name))
            for name, values in (payload.get("columns") or {}).items()
        }

    def scalar(self, label: str | None = None) -> float:
        """The single aggregate value (optionally by label)."""
        if not self.scalars:
            raise InterfaceError("result has no scalar aggregates")
        if label is None:
            if len(self.scalars) != 1:
                raise InterfaceError(
                    f"result has {len(self.scalars)} aggregates; pass a label"
                )
            return next(iter(self.scalars.values()))
        if label not in self.scalars:
            raise InterfaceError(f"no aggregate labelled {label!r}")
        return self.scalars[label]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.scalars:
            return f"RemoteResult(scalars={self.scalars})"
        return (
            f"RemoteResult(rows={self.row_count}, "
            f"columns={list(self.columns)}, batched={self.batched})"
        )


class AsyncCursor:
    """A cursor over one :class:`AsyncConnection` (PEP 249 fetch surface).

    ``execute``/``executemany`` are coroutines; fetching is synchronous
    because results arrive whole.  Extensions mirror the sync cursor:
    ``result``, ``results``, ``cache_level``.
    """

    def __init__(self, connection: "AsyncConnection") -> None:
        self._connection = connection
        self._closed = False
        self.arraysize = 1
        self._executed = False
        self._results: list[RemoteResult] = []
        self._result_index = 0
        self._row_index = 0
        self._description: list[tuple] | None = None
        self._rowcount = -1

    # -- state ----------------------------------------------------------------

    @property
    def connection(self) -> "AsyncConnection":
        return self._connection

    @property
    def closed(self) -> bool:
        return self._closed or self._connection.closed

    def close(self) -> None:
        """Close the cursor (purely client-side; the connection stays open)."""
        self._closed = True
        self._results = []
        self._description = None

    def _check_open(self) -> None:
        if self.closed:
            raise InterfaceError("cursor is closed")

    # -- execution ------------------------------------------------------------

    async def execute(
        self, operation: str, parameters: Any | None = None
    ) -> "AsyncCursor":
        """Run one statement; bound statements go through batch admission."""
        self._check_open()
        frame: dict[str, Any] = {"type": "execute", "sql": operation}
        if parameters is not None:
            frame["params"] = _wire_params(parameters)
        reply = await self._connection._request(frame)
        self._install([RemoteResult(reply)])
        return self

    async def executemany(
        self, operation: str, seq_of_parameters: Sequence[Any]
    ) -> "AsyncCursor":
        """Run one parameterized statement once per parameter set.

        Every binding is admitted separately, so they batch both with each
        other and with queries of *other* connections arriving in the same
        admission window.
        """
        self._check_open()
        reply = await self._connection._request(
            {
                "type": "executemany",
                "sql": operation,
                "params": [_wire_params(p) for p in seq_of_parameters],
            }
        )
        self._install([RemoteResult(payload) for payload in reply.get("results", [])])
        return self

    def _install(self, results: list[RemoteResult]) -> None:
        self._executed = True
        self._results = results
        self._result_index = 0
        self._row_index = 0
        self._description = self._describe(results[0]) if results else None
        self._rowcount = sum(self._result_rows(result) for result in results)

    @staticmethod
    def _describe(result: RemoteResult) -> list[tuple]:
        if result.scalars:
            return [
                (label, _SCALAR_TYPE, None, 8, None, None, None)
                for label in result.scalars
            ]
        return [
            (name, array.dtype.name, None, int(array.dtype.itemsize), None, None, None)
            for name, array in result.columns.items()
        ]

    @staticmethod
    def _result_rows(result: RemoteResult) -> int:
        if result.scalars:
            return 1
        return result.row_count

    # -- results --------------------------------------------------------------

    @property
    def description(self) -> list[tuple] | None:
        return self._description

    @property
    def rowcount(self) -> int:
        return self._rowcount

    @property
    def result(self) -> RemoteResult | None:
        return self._results[-1] if self._results else None

    @property
    def results(self) -> list[RemoteResult]:
        return list(self._results)

    @property
    def cache_level(self) -> str | None:
        result = self.result
        return result.cache_level if result is not None else None

    # -- fetching (synchronous: the rows are already here) ---------------------

    def fetchone(self) -> tuple | None:
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        while self._result_index < len(self._results):
            result = self._results[self._result_index]
            if self._row_index < self._result_rows(result):
                row = self._row(result, self._row_index)
                self._row_index += 1
                return row
            self._result_index += 1
            self._row_index = 0
        return None

    @staticmethod
    def _row(result: RemoteResult, index: int) -> tuple:
        if result.scalars:
            return tuple(result.scalars.values())
        return tuple(array[index] for array in result.columns.values())

    @staticmethod
    def _rows_slice(result: RemoteResult, start: int, stop: int) -> list[tuple]:
        if result.scalars:
            return [tuple(result.scalars.values())] if start == 0 and stop > 0 else []
        return list(zip(*(array[start:stop] for array in result.columns.values())))

    def fetchmany(self, size: int | None = None) -> list[tuple]:
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        if size is None:
            size = self.arraysize
        rows: list[tuple] = []
        remaining = max(size, 0)
        while remaining > 0 and self._result_index < len(self._results):
            result = self._results[self._result_index]
            available = self._result_rows(result) - self._row_index
            if available <= 0:
                self._result_index += 1
                self._row_index = 0
                continue
            take = min(remaining, available)
            rows.extend(
                self._rows_slice(result, self._row_index, self._row_index + take)
            )
            self._row_index += take
            remaining -= take
        return rows

    def fetchall(self) -> list[tuple]:
        self._check_open()
        if not self._executed:
            raise InterfaceError("no result set: call execute() first")
        rows: list[tuple] = []
        while self._result_index < len(self._results):
            result = self._results[self._result_index]
            total = self._result_rows(result)
            if self._row_index < total:
                rows.extend(self._rows_slice(result, self._row_index, total))
            self._result_index += 1
            self._row_index = 0
        return rows

    def __iter__(self) -> Iterator[tuple]:
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    def setinputsizes(self, sizes: Any) -> None:
        """Required by PEP 249; this client needs no sizing hints."""

    def setoutputsize(self, size: Any, column: Any | None = None) -> None:
        """Required by PEP 249; this client needs no sizing hints."""

    def __enter__(self) -> "AsyncCursor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncPreparedStatement:
    """A statement prepared server-side, addressed by its statement id.

    Executions skip text transmission and parsing entirely: the frame carries
    the id plus bindings, the server binds into the already-compiled plan and
    the query joins the next admission wave.
    """

    def __init__(self, connection: "AsyncConnection", reply: dict[str, Any]) -> None:
        self._connection = connection
        self._statement = reply["statement"]
        self._sql = reply.get("sql", "")
        self._parameter_count = int(reply.get("parameters", 0))
        self._paramstyle = reply.get("paramstyle", "none")

    @property
    def sql(self) -> str:
        return self._sql

    @property
    def parameter_count(self) -> int:
        return self._parameter_count

    @property
    def paramstyle(self) -> str:
        return self._paramstyle

    async def execute(self, parameters: Any = ()) -> RemoteResult:
        """Bind and run once; the result frame becomes a :class:`RemoteResult`."""
        reply = await self._connection._request(
            {
                "type": "execute",
                "statement": self._statement,
                "params": _wire_params(parameters),
            }
        )
        return RemoteResult(reply)

    async def executemany(
        self, seq_of_parameters: Sequence[Any]
    ) -> list[RemoteResult]:
        """Run once per parameter set (each binding admitted into the waves)."""
        reply = await self._connection._request(
            {
                "type": "executemany",
                "statement": self._statement,
                "params": [_wire_params(p) for p in seq_of_parameters],
            }
        )
        return [RemoteResult(payload) for payload in reply.get("results", [])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncPreparedStatement({self._sql!r}, "
            f"parameters={self._parameter_count}, style={self._paramstyle})"
        )


class AsyncAdmin:
    """Schema, data and adaptive-strategy administration over the wire."""

    def __init__(self, connection: "AsyncConnection") -> None:
        self._connection = connection

    async def _call(self, op: str, **args: Any) -> Any:
        reply = await self._connection._request(
            {"type": "admin", "op": op, "args": args}
        )
        return reply.get("value")

    async def create_table(self, name: str, columns: dict[str, Any]) -> None:
        await self._call("create_table", name=name, columns=dict(columns))

    async def drop_table(self, name: str) -> None:
        await self._call("drop_table", name=name)

    async def bulk_load(self, table: str, data: dict[str, Any]) -> None:
        await self._call("bulk_load", table=table, data=_wire_data(data))

    async def insert(self, table: str, data: dict[str, Any]) -> None:
        await self._call("insert", table=table, data=_wire_data(data))

    async def delete(self, table: str, oids: Any) -> None:
        await self._call("delete", table=table, oids=np.asarray(oids).tolist())

    async def enable_adaptive(self, table: str, column: str, **options: Any) -> None:
        await self._call(
            "enable_adaptive", table=table, column=column, options=options
        )

    async def disable_adaptive(self, table: str, column: str) -> None:
        await self._call("disable_adaptive", table=table, column=column)

    async def table_names(self) -> list[str]:
        return await self._call("table_names")

    async def cache_stats(self) -> dict[str, Any]:
        """Plan-cache and batch counters of the server's engine."""
        return await self._call("cache_stats")

    async def explain(self, sql: str) -> str:
        return await self._call("explain", sql=sql)

    async def admission_stats(self) -> dict[str, Any]:
        """Live admission counters: waves, wave sizes, backpressure, knobs.

        Behind a multi-replica server the payload adds ``per_replica`` —
        waves, members and queue depth per replica shard.
        """
        return await self._call("admission_stats")

    async def router_stats(self) -> dict[str, Any]:
        """Scale-out observability: per-replica qps, queue depth, divergence.

        On a single-engine server this returns ``{"replicas": 1, ...}``; on a
        ``--replicas N`` server it carries per-replica service counters and
        segment counts, cluster assignments, traffic shares, the observed
        cost model and the last ``retune`` report.
        """
        return await self._call("router_stats")

    async def knobs(self) -> list[dict[str, Any]]:
        """The server's live knob table: one row per registered knob.

        Each row carries ``name``, ``layer``, ``value``, ``default``,
        ``low``/``high``/``step`` bounds and a description — the full
        self-tuning surface of :mod:`repro.tuning.knobs`.
        """
        return await self._call("knobs")

    async def set_knobs(self, values: dict[str, Any]) -> dict[str, float]:
        """Validate and apply knob changes server-side (all-or-nothing).

        Returns the applied ``{name: value}`` mapping; an out-of-bounds or
        constraint-violating value rejects the whole batch with an error
        frame and leaves every knob untouched.
        """
        return await self._call("set_knobs", values=dict(values))

    async def tuning_stats(self) -> dict[str, Any]:
        """Self-tuning observability: controller state, moves, drift, model.

        On a server without an active controller this returns
        ``{"enabled": ..., "state": None, "knob_table": [...]}``; with
        ``--self-tuning`` it carries the controller's full
        :meth:`~repro.tuning.controller.TuningController.tuning_stats`.
        """
        return await self._call("tuning_stats")


class AsyncConnection:
    """One pipelined client connection to a :class:`~repro.server.ReproServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        host: str | None = None,
        port: int | None = None,
        request_timeout: float | None = None,
        reconnect: bool = False,
        reconnect_attempts: int = 3,
        reconnect_backoff_s: float = 0.05,
        retry_reads: bool = False,
        retry_attempts: int = 2,
        injector: Any | None = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._host = host
        self._port = port
        self.request_timeout = request_timeout
        self._reconnect_enabled = bool(reconnect)
        self.reconnect_attempts = int(reconnect_attempts)
        self.reconnect_backoff_s = float(reconnect_backoff_s)
        self._retry_reads = bool(retry_reads)
        self.retry_attempts = int(retry_attempts)
        self._injector = injector
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._receive_task: asyncio.Task | None = None
        self._closed = False
        self._user_closed = False
        self._reconnect_lock = asyncio.Lock()
        #: Successful redials / retried requests (observability for tests).
        self.reconnects = 0
        self.retries = 0
        self._admin = AsyncAdmin(self)
        self.server_info: dict[str, Any] = {}

    @classmethod
    async def _open(cls, host: str, port: int, **knobs: Any) -> "AsyncConnection":
        reader, writer = await asyncio.open_connection(host, port)
        connection = cls(reader, writer, host=host, port=port, **knobs)
        connection._receive_task = asyncio.get_running_loop().create_task(
            connection._receive(), name="repro-aio-receive"
        )
        try:
            await connection._handshake()
        except BaseException:
            await connection._teardown()
            raise
        return connection

    async def _handshake(self) -> None:
        reply = await self._request_once(
            {"type": "hello", "protocol": PROTOCOL_VERSION, "client": "repro.aio"}
        )
        self.server_info = {
            key: reply.get(key) for key in ("server", "version", "protocol", "knobs")
        }

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Closed *for use*: explicitly closed by the user, or transport-dead
        with no way back (``reconnect=False``).  A reconnect-enabled
        connection whose socket dropped is degraded, not closed — the next
        request redials."""
        if self._user_closed:
            return True
        return self._closed and not self._reconnect_enabled

    async def close(self) -> None:
        """Orderly shutdown: flush outstanding responses, then drop the socket."""
        if self._user_closed:
            return
        self._user_closed = True
        already_dead = self._closed
        self._closed = True
        if not already_dead:
            try:
                await self._request_once({"type": "close"}, during_close=True)
            except Exception:
                pass  # the server vanished first; tear down locally regardless
        await self._teardown()

    async def _teardown(self) -> None:
        self._closed = True
        if self._receive_task is not None:
            self._receive_task.cancel()
            try:
                await self._receive_task
            except (asyncio.CancelledError, Exception):
                pass
            self._receive_task = None
        self._fail_pending(OperationalError("connection is closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "AsyncConnection":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    def _check_open(self) -> None:
        if self._user_closed:
            raise InterfaceError("connection is closed")
        if self._closed and not self._reconnect_enabled:
            raise InterfaceError("connection is closed")

    # -- statement surfaces ---------------------------------------------------

    def cursor(self) -> AsyncCursor:
        """A new cursor over this connection."""
        self._check_open()
        return AsyncCursor(self)

    async def prepare(self, sql: str) -> AsyncPreparedStatement:
        """Prepare a placeholder statement server-side; returns its handle."""
        self._check_open()
        reply = await self._request({"type": "prepare", "sql": sql})
        return AsyncPreparedStatement(self, reply)

    async def execute(
        self, sql: str, parameters: Any | None = None
    ) -> AsyncCursor:
        """Shorthand: a fresh cursor with ``sql`` already executed."""
        cursor = self.cursor()
        return await cursor.execute(sql, parameters)

    async def executemany(
        self, sql: str, seq_of_parameters: Sequence[Any]
    ) -> AsyncCursor:
        """Shorthand: a fresh cursor with ``sql`` executed per parameter set."""
        cursor = self.cursor()
        return await cursor.executemany(sql, seq_of_parameters)

    # -- transaction stubs (PEP 249 parity with the sync facade) ---------------

    async def commit(self) -> None:
        """No-op: every statement is immediately visible (no transactions)."""
        self._check_open()

    async def rollback(self) -> None:
        """Unsupported: the engine keeps no undo log."""
        self._check_open()
        raise NotSupportedError("this engine has no transactions to roll back")

    # -- administration --------------------------------------------------------

    @property
    def admin(self) -> AsyncAdmin:
        """DDL, bulk loading, adaptive controls and server stats."""
        return self._admin

    # -- plumbing --------------------------------------------------------------

    async def _request(
        self, frame: dict[str, Any], *, during_close: bool = False
    ) -> dict[str, Any]:
        """Send one frame and await its correlated response; retry if allowed.

        ERROR frames become raised PEP 249 exceptions (rebuilt by wire name),
        so every caller sees the same exception types the in-process facade
        raises.  On a :class:`TransientError` — dropped socket, request
        timeout, server-side failover exhaustion — the request reconnects
        (when ``reconnect=True``) and, for idempotent text-bearing reads
        under ``retry_reads=True``, is re-sent with exponential backoff.
        """
        if during_close:
            return await self._request_once(frame, during_close=True)
        if self._user_closed:
            raise InterfaceError("connection is closed")
        attempt = 0
        while True:
            if self._closed:
                if not self._reconnect_enabled:
                    raise InterfaceError("connection is closed")
                await self._ensure_connected()
            try:
                return await self._request_once(frame)
            except TransientError:
                if not self._may_retry(frame, attempt):
                    raise
            attempt += 1
            self.retries += 1
            await asyncio.sleep(self.reconnect_backoff_s * 2 ** (attempt - 1))

    def _may_retry(self, frame: dict[str, Any], attempt: int) -> bool:
        """Is this frame safe (and allowed) to re-send after a transient failure?

        Only text-bearing ``execute``/``executemany`` — bound selects are
        idempotent above adaptation and re-prepare by SQL text on the server.
        Statement-id frames never retry: the server-side id registry dies
        with the connection, and a retried id would hit the wrong (or no)
        statement.
        """
        return (
            self._retry_reads
            and attempt < self.retry_attempts
            and frame.get("type") in ("execute", "executemany")
            and isinstance(frame.get("sql"), str)
        )

    async def _ensure_connected(self) -> None:
        """Redial with exponential backoff and re-handshake (reconnect mode)."""
        async with self._reconnect_lock:
            if not self._closed:
                return  # another request already reconnected
            if self._host is None or self._port is None:
                raise TransientError(
                    "connection lost and no address to reconnect to"
                )
            backoff = self.reconnect_backoff_s
            last: BaseException | None = None
            for _ in range(max(self.reconnect_attempts, 1)):
                try:
                    reader, writer = await asyncio.open_connection(
                        self._host, self._port
                    )
                except OSError as exc:
                    last = exc
                    await asyncio.sleep(backoff)
                    backoff *= 2
                    continue
                if self._receive_task is not None and not self._receive_task.done():
                    self._receive_task.cancel()
                old_writer = self._writer
                self._reader, self._writer = reader, writer
                self._closed = False
                self._receive_task = asyncio.get_running_loop().create_task(
                    self._receive(), name="repro-aio-receive"
                )
                old_writer.close()
                try:
                    await self._handshake()
                except BaseException as exc:  # noqa: BLE001 - try the next dial
                    last = exc
                    self._closed = True
                    await asyncio.sleep(backoff)
                    backoff *= 2
                    continue
                self.reconnects += 1
                return
            raise TransientError(
                f"reconnect to {self._host}:{self._port} failed after "
                f"{self.reconnect_attempts} attempts: {last}"
            )

    async def _request_once(
        self, frame: dict[str, Any], *, during_close: bool = False
    ) -> dict[str, Any]:
        """One send/await round-trip, under the per-request timeout."""
        if self._closed and not during_close:
            raise InterfaceError("connection is closed")
        if self._injector is not None:
            # The injected transport failure: abort the socket mid-send, the
            # way a real network drop looks to this side of the connection.
            if self._injector.fire("client.send", op=str(frame.get("type"))) == "drop":
                self._abort_transport()
                raise TransientError("injected connection drop at client.send")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            write_frame(self._writer, {**frame, "id": request_id})
            await self._writer.drain()
            if self.request_timeout is None:
                return await future
            try:
                return await asyncio.wait_for(future, self.request_timeout)
            except asyncio.TimeoutError:
                # The pending entry is popped below, so a late response is
                # dropped by the correlation map — never delivered stale.
                raise TransientError(
                    f"request {frame.get('type')!r} timed out after "
                    f"{self.request_timeout}s"
                ) from None
        except (ConnectionError, OSError) as exc:
            raise TransientError(f"connection lost: {exc}") from exc
        finally:
            self._pending.pop(request_id, None)

    def _abort_transport(self) -> None:
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    async def _receive(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                future = self._pending.get(frame.get("id"))
                if future is None or future.done():
                    continue
                if frame.get("type") == "error":
                    future.set_exception(
                        error_from_name(
                            frame.get("error", ""), frame.get("message", "")
                        )
                    )
                else:
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._closed = True
            self._fail_pending(TransientError(f"connection lost: {exc}"))
            return
        self._closed = True
        self._fail_pending(TransientError("connection closed by server"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"AsyncConnection({state}, server={self.server_info.get('version')})"


def _wire_params(parameters: Any) -> Any:
    """Bindings as JSON-ready values (named mappings pass through as objects)."""
    if isinstance(parameters, dict):
        return {str(key): value for key, value in parameters.items()}
    return list(parameters)


def _wire_data(data: dict[str, Any]) -> dict[str, list]:
    """Column arrays as JSON lists for bulk_load/insert admin frames."""
    return {name: np.asarray(values).tolist() for name, values in data.items()}


async def connect(
    host: str = "127.0.0.1",
    port: int = 7733,
    *,
    connect_timeout: float | None = None,
    request_timeout: float | None = None,
    reconnect: bool = False,
    reconnect_attempts: int = 3,
    reconnect_backoff_s: float = 0.05,
    retry_reads: bool = False,
    retry_attempts: int = 2,
    injector: Any | None = None,
) -> AsyncConnection:
    """Open an async connection to a running repro server.

    The coroutine completes after the HELLO handshake; the server's version
    and admission knobs are available as ``connection.server_info``.  See the
    module docstring for the resilience knobs (``request_timeout``,
    ``reconnect``, ``retry_reads``); ``injector`` arms a
    :class:`~repro.fault.FaultInjector` on the ``client.send`` site for
    deterministic chaos tests.
    """
    opening = AsyncConnection._open(
        host,
        port,
        request_timeout=request_timeout,
        reconnect=reconnect,
        reconnect_attempts=reconnect_attempts,
        reconnect_backoff_s=reconnect_backoff_s,
        retry_reads=retry_reads,
        retry_attempts=retry_attempts,
        injector=injector,
    )
    if connect_timeout is not None:
        return await asyncio.wait_for(opening, connect_timeout)
    return await opening
