"""The PEP 249 exception hierarchy and the engine-error translation layer.

The client API promises DB-API 2.0 semantics: everything a conforming driver
may raise derives from :class:`Error`, split into interface misuse
(:class:`InterfaceError`) and database-side failures (:class:`DatabaseError`
and its subclasses).  The engine itself keeps raising its native exceptions —
``SQLSyntaxError`` from the parser, ``BindError`` from parameter binding,
``KeyError`` from the catalog, ``MALRuntimeError`` from plan execution — and
:func:`translating` maps them onto this hierarchy at the API boundary, so the
engine stays importable without the client layer.

This module deliberately imports nothing from :mod:`repro.engine`:
``QueryResult.scalar`` raises :class:`ProgrammingError` from inside the
engine, and the import must not cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.mal.program import MALRuntimeError
from repro.sql.parameters import BindError
from repro.sql.parser import SQLSyntaxError

__all__ = [
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "TransientError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "translating",
    "translate_exception",
    "error_name",
    "error_from_name",
]


class Warning(Exception):  # noqa: A001 - the PEP 249 name shadows the builtin
    """Important warnings such as data truncation (PEP 249)."""


class Error(Exception):
    """Base of every error the client API raises (PEP 249)."""


class InterfaceError(Error):
    """Misuse of the API itself — e.g. operating on a closed connection."""


class DatabaseError(Error):
    """Base of errors related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (out-of-range values, bad types)."""


class OperationalError(DatabaseError):
    """Errors in the database's operation, not the programmer's control."""


class TransientError(OperationalError):
    """An operational failure that may not recur — safe to retry.

    Raised when a request died with the *infrastructure* rather than the
    query: a replica crashed or timed out mid-wave, a failover was in
    progress, a connection dropped.  Bound range selects are side-effect-free
    above adaptation, so replaying one against the (failed-over or
    reconnected) service returns the same answer — the server's admission
    layer retries them automatically and :mod:`repro.aio` can be opted in to
    do the same (``retry_reads=True``).  Terminal failures — bad SQL, unknown
    tables, binding violations — keep raising :class:`ProgrammingError` /
    plain :class:`OperationalError` and are never retried.
    """


class IntegrityError(DatabaseError):
    """Relational-integrity violations (unused by this engine, kept for PEP 249)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """Errors the client program caused: bad SQL, wrong bindings, unknown names."""


class NotSupportedError(DatabaseError):
    """A requested feature the database does not support (e.g. rollback)."""


@contextmanager
def translating() -> Iterator[None]:
    """Translate engine-native exceptions into the PEP 249 hierarchy.

    Client-caused failures become :class:`ProgrammingError`: syntax errors,
    binding violations, unknown tables/columns/labels — and ``ValueError``/
    ``TypeError`` generally, because the engine uses exactly those for
    argument validation (bad dtypes in ``create_table``, invalid strategy
    options, ...).  Failures raised *by plan execution* become
    :class:`OperationalError`.  Exceptions already in the hierarchy pass
    through untouched, as does everything outside these types
    (``AssertionError``, ``MemoryError``, arbitrary errors) — masking those
    as database errors would hide bugs.
    """
    try:
        yield
    except Error:
        raise
    except (SQLSyntaxError, BindError) as exc:
        raise ProgrammingError(str(exc)) from exc
    except MALRuntimeError as exc:
        raise OperationalError(str(exc)) from exc
    except KeyError as exc:
        # The catalog reports unknown tables/columns as KeyError; its message
        # is the interesting part, so unwrap the KeyError repr-quoting.
        message = exc.args[0] if exc.args else str(exc)
        raise ProgrammingError(str(message)) from exc
    except (ValueError, TypeError) as exc:
        raise ProgrammingError(str(exc)) from exc


def translate_exception(exc: BaseException) -> BaseException:
    """The exception :func:`translating` would raise for ``exc``.

    The functional form of the context manager, for call sites that hold an
    exception instance instead of wrapping a block — the server front-end
    maps engine failures from a worker thread onto the hierarchy before
    shipping them over the wire.  Exceptions the context manager would let
    pass through untouched are returned unchanged.
    """
    try:
        with translating():
            raise exc
    except Error as mapped:
        return mapped
    except BaseException:
        return exc


#: Wire-protocol error identity: the hierarchy by class name, so a server can
#: ship ``error_name(exc)`` in an ERROR frame and the async client can rebuild
#: the same exception type with :func:`error_from_name`.
_ERRORS_BY_NAME: dict[str, type[Exception]] = {
    cls.__name__: cls
    for cls in (
        Warning,
        Error,
        InterfaceError,
        DatabaseError,
        DataError,
        OperationalError,
        TransientError,
        IntegrityError,
        InternalError,
        ProgrammingError,
        NotSupportedError,
    )
}


def error_name(exc: BaseException) -> str:
    """The wire name of an exception (its PEP 249 class name)."""
    if isinstance(exc, Error) or isinstance(exc, Warning):
        return type(exc).__name__
    return type(translate_exception(exc)).__name__


def error_from_name(name: str, message: str) -> Exception:
    """Rebuild a PEP 249 exception from its wire name.

    Unknown names (a newer server, a hand-crafted frame) degrade to
    :class:`OperationalError` rather than failing the decode.
    """
    cls = _ERRORS_BY_NAME.get(name)
    if cls is None or not issubclass(cls, Exception):
        cls = OperationalError
    return cls(message)
