"""First-class prepared statements: the client handle onto a lowered plan.

``Connection.prepare(sql)`` parses and lowers the placeholder statement
exactly once and hands back a :class:`PreparedStatement` holding the engine's
:class:`~repro.engine.plan_cache.PreparedPlan` — the compiled plan, the
pre-resolved environment slots and the binding template.  ``execute`` then
costs one bind validation and the plan execution: no SQL text is touched
again.  The handle survives schema/adaptive invalidations safely: when the
plan cache's generation has advanced, the statement transparently re-prepares
(re-lowering against the new optimizer state) instead of serving a stale
compiled plan.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.api.exceptions import InterfaceError, translating
from repro.engine.plan_cache import PreparedPlan
from repro.engine.result import QueryResult


class PreparedStatement:
    """One prepared statement bound to a connection.

    Execution returns the engine's :class:`QueryResult` (with
    ``cache_level == "prepared"`` and a zero-parse profile); use a cursor when
    you want DB-API fetch semantics — ``cursor.execute(sql, params)`` hits the
    same cached prepared plan.
    """

    def __init__(self, connection: Any, sql: str) -> None:
        self._connection = connection
        with translating():
            self._plan: PreparedPlan = connection._database.prepare_statement(sql)

    # -- introspection --------------------------------------------------------

    @property
    def sql(self) -> str:
        """The normalized statement text, placeholders included."""
        return self._plan.sql

    @property
    def parameter_count(self) -> int:
        """Number of placeholder positions to bind per execution."""
        return self._plan.binding.count

    @property
    def paramstyle(self) -> str:
        """``"qmark"``, ``"named"`` or ``"none"`` for this statement."""
        return self._plan.binding.style

    @property
    def plan_text(self) -> str:
        """The lowered MAL plan in concrete syntax (like ``EXPLAIN``)."""
        return self._refresh().plan.text

    # -- execution ------------------------------------------------------------

    def _refresh(self) -> PreparedPlan:
        """The current plan, re-lowered if the cache generation advanced."""
        if self._connection.closed:
            raise InterfaceError("connection is closed")
        database = self._connection._database
        if self._plan.generation != database.plan_cache.generation:
            with translating():
                self._plan = database.prepare_statement(self._plan.sql)
        return self._plan

    def execute(self, parameters: Any = ()) -> QueryResult:
        """Bind ``parameters`` (sequence or mapping) and run the plan."""
        plan = self._refresh()
        with translating():
            return self._connection._database.execute_prepared(plan, parameters)

    def executemany(self, seq_of_parameters: Sequence[Any]) -> list[QueryResult]:
        """Run once per parameter set; range selects batch into one vectorized pass."""
        plan = self._refresh()
        with translating():
            return self._connection._database.execute_prepared_many(
                plan, list(seq_of_parameters)
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreparedStatement({self.sql!r}, parameters={self.parameter_count}, "
            f"style={self.paramstyle})"
        )
