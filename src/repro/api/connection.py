"""Connections and the administrative handle of the client API.

``repro.connect()`` is the DB-API 2.0 entry point: it wraps an engine
:class:`~repro.engine.database.Database` (creating a fresh in-memory one by
default) in a :class:`Connection` that hands out cursors and prepared
statements and exposes everything that is *not* query execution — DDL, bulk
loading, and the paper's adaptive-strategy controls — on one explicit
:attr:`Connection.admin` handle, so the query surface stays exactly PEP 249.
"""

from __future__ import annotations

import warnings
import weakref
from typing import Any, Sequence

import numpy as np

from repro.api.cursor import Cursor
from repro.api.exceptions import InterfaceError, NotSupportedError, translating
from repro.api.prepared import PreparedStatement
from repro.engine.database import Database


class Admin:
    """Schema, data and adaptive-strategy administration of one connection.

    Deliberately separate from the cursor: DDL and strategy switches
    invalidate cached plans, and keeping them off the statement path makes
    that boundary visible in client code (``connection.admin.enable_adaptive``
    vs ``cursor.execute``).
    """

    def __init__(self, connection: "Connection") -> None:
        self._connection = connection

    def _database(self) -> Database:
        if self._connection.closed:
            raise InterfaceError("connection is closed")
        return self._connection._database

    # -- schema and data ------------------------------------------------------

    def create_table(self, name: str, columns: dict[str, Any]) -> None:
        """Create a table from a ``{column: dtype}`` mapping."""
        with translating():
            self._database().create_table(name, columns)

    def drop_table(self, name: str) -> None:
        """Drop a table and any adaptive state attached to its columns."""
        with translating():
            self._database().drop_table(name)

    def bulk_load(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Load aligned arrays into a freshly created table."""
        with translating():
            self._database().bulk_load(table, data)

    def insert(self, table: str, data: dict[str, np.ndarray]) -> None:
        """Append rows through the insert-delta BATs."""
        with translating():
            self._database().insert(table, data)

    def delete(self, table: str, oids: np.ndarray) -> None:
        """Mark rows (by oid) as deleted."""
        with translating():
            self._database().delete(table, oids)

    def table_names(self) -> list[str]:
        """All tables in the catalog."""
        return self._database().table_names()

    # -- adaptive strategy controls -------------------------------------------

    def enable_adaptive(self, table: str, column: str, **options: Any) -> Any:
        """Hand a column to the BPM (see :meth:`Database.enable_adaptive`).

        The unified strategy entry point: ``strategy=`` picks any registered
        adaptive strategy (``"segmentation"``, ``"replication"``,
        ``"unsegmented"``, or a plug-in), remaining keywords go to the model
        and strategy constructors.  Returns the adaptive column handle.
        """
        with translating():
            return self._database().enable_adaptive(table, column, **options)

    def disable_adaptive(self, table: str, column: str) -> None:
        """Return a column to plain positional organisation."""
        with translating():
            self._database().disable_adaptive(table, column)

    def adaptive_handle(self, table: str, column: str) -> Any:
        """The BPM handle of an adaptive column (for inspection)."""
        with translating():
            return self._database().adaptive_handle(table, column)

    # -- inspection -----------------------------------------------------------

    def explain(self, sql: str) -> str:
        """The optimized MAL plan in concrete syntax (like ``EXPLAIN``)."""
        with translating():
            return self._database().explain(sql)

    def plan_cache_stats(self) -> dict[str, Any]:
        """Deprecated alias of :meth:`cache_stats` (one stats surface).

        Historically this was a separate property exposing the raw engine
        counter object; everything it reported now lives in the ``total``
        section of :meth:`cache_stats`, which is the one maintained surface.
        """
        warnings.warn(
            "Admin.plan_cache_stats() is deprecated; use Admin.cache_stats() "
            "(the same counters live in its 'total' section)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.cache_stats()

    def cache_stats(self) -> dict[str, Any]:
        """Per-level plan-cache and batch counters (see :meth:`Database.cache_stats`).

        ``levels`` splits hits/misses/evictions/entries by cache level —
        ``exact`` (normalized text), ``masked`` (literal-masked text),
        ``shape`` (parsed shape) and ``prepared`` (placeholder binding) —
        ``total`` carries the cache-wide counters, and ``batch`` reports the
        vectorized batch executor (waves run, queries batched vs fallen back,
        wave-size histogram).
        """
        return self._database().cache_stats()


class Connection:
    """A DB-API 2.0 connection to one self-organizing column-store instance.

    There is no transaction machinery behind this engine (the paper's
    prototype adapts storage, it does not journal), so :meth:`commit` is a
    no-op and :meth:`rollback` raises :class:`NotSupportedError` — conforming
    client code that only commits keeps working unchanged.
    """

    def __init__(
        self,
        database: Database | None = None,
        *,
        plan_cache_size: int = 128,
    ) -> None:
        with translating():
            self._database = (
                database
                if database is not None
                else Database(plan_cache_size=plan_cache_size)
            )
        self._closed = False
        self._admin = Admin(self)
        self._cursors: "weakref.WeakSet[Cursor]" = weakref.WeakSet()

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called."""
        return self._closed

    def close(self) -> None:
        """Close the connection; further operations raise :class:`InterfaceError`.

        Idempotent, per PEP 249 — closing twice is allowed; *using* a closed
        connection is not.  Every cursor handed out by this connection —
        including those created implicitly by the :meth:`execute` /
        :meth:`executemany` shorthands — is closed with it, releasing the
        result sets it was holding.
        """
        self._closed = True
        for cursor in list(self._cursors):
            cursor.close()
        self._cursors.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def __enter__(self) -> "Connection":
        self._check_open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- statement surfaces ---------------------------------------------------

    def cursor(self) -> Cursor:
        """A new cursor over this connection (closed with the connection)."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.add(cursor)
        return cursor

    def prepare(self, sql: str) -> PreparedStatement:
        """Prepare a placeholder statement; the plan is lowered exactly once."""
        self._check_open()
        return PreparedStatement(self, sql)

    def execute(self, sql: str, parameters: Any | None = None) -> Cursor:
        """Shorthand: a fresh cursor with ``sql`` already executed."""
        return self.cursor().execute(sql, parameters)

    def executemany(self, sql: str, seq_of_parameters: Sequence[Any]) -> Cursor:
        """Shorthand: a fresh cursor with ``sql`` executed per parameter set."""
        return self.cursor().executemany(sql, seq_of_parameters)

    # -- transaction stubs ----------------------------------------------------

    def commit(self) -> None:
        """No-op: every statement is immediately visible (no transactions)."""
        self._check_open()

    def rollback(self) -> None:
        """Unsupported: the engine keeps no undo log."""
        self._check_open()
        raise NotSupportedError("this engine has no transactions to roll back")

    # -- administration -------------------------------------------------------

    @property
    def admin(self) -> Admin:
        """DDL, bulk loading and adaptive-strategy administration."""
        return self._admin

    @property
    def database(self) -> Database:
        """The underlying engine instance (escape hatch for engine-level APIs)."""
        return self._database

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return f"Connection({state}, tables={self._database.table_names() if not self._closed else []})"


def connect(
    database: Database | None = None, *, plan_cache_size: int = 128
) -> Connection:
    """Open a connection to a column-store instance (PEP 249 module entry).

    With no arguments a fresh in-memory :class:`Database` is created; passing
    an existing engine instance wraps it (several connections may share one
    engine — the paper's self-organization is per-column state on the engine,
    transparent to every client).
    """
    return Connection(database, plan_cache_size=plan_cache_size)
