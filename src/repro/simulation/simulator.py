"""The simulator driving adaptive strategies under a constrained buffer.

This reproduces the evaluation vehicle of §6.1: "We simulated the core
algorithms of MonetDB, its management in a constrained memory buffer setting,
and its read/write behavior as data is flushed to secondary store."  The
simulator takes a column, a strategy ("segmentation", "replication" or
"unsegmented"), a segmentation model and a workload, executes every query and
returns an :class:`~repro.simulation.metrics.ExperimentResult` with the same
counters the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accounting import IOAccountant
from repro.core.models import SegmentationModel, model_from_name
from repro.core.strategy import available_strategies, create_strategy, strategy_class
from repro.simulation.metrics import ExperimentResult
from repro.storage.buffer import BufferPool
from repro.util.units import KB
from repro.util.validation import ensure_positive
from repro.workloads.generators import make_column
from repro.workloads.query import Workload

#: Strategy name → column class (deprecated compatibility view of the
#: registry in :mod:`repro.core.strategy`; consult the registry directly).
STRATEGIES = {name: strategy_class(name) for name in available_strategies()}


class BufferedIOAccountant(IOAccountant):
    """An accountant that additionally models a constrained memory buffer.

    Segment scans fault non-resident segments in from the secondary store;
    segment materializations dirty their pages.  The resulting disk-level
    counters complement the paper's memory-level counters.
    """

    def __init__(self, buffer_pool: BufferPool) -> None:
        super().__init__()
        self.buffer_pool = buffer_pool

    def record_read(self, n_bytes: float, segment: object | None = None) -> None:
        super().record_read(n_bytes, segment)
        if segment is not None:
            self.buffer_pool.access(id(segment), n_bytes, dirty=False)

    def record_write(self, n_bytes: float, segment: object | None = None) -> None:
        super().record_write(n_bytes, segment)
        if segment is not None:
            self.buffer_pool.access(id(segment), n_bytes, dirty=True)


def build_strategy(
    strategy: str,
    values: np.ndarray,
    model: SegmentationModel | None,
    *,
    domain: tuple[float, float] | None = None,
    accountant: IOAccountant | None = None,
    time_phases: bool = True,
    storage_budget: float | None = None,
):
    """Instantiate the adaptive column for ``strategy`` over ``values``.

    A thin wrapper over :func:`repro.core.strategy.create_strategy`, kept for
    backward compatibility with the original simulator API: one option set is
    passed for every strategy, so options a strategy does not take (e.g.
    ``storage_budget`` outside replication) are dropped, not rejected.
    """
    return create_strategy(
        strategy,
        values,
        model=model,
        strict=False,
        domain=domain,
        accountant=accountant,
        time_phases=time_phases,
        storage_budget=storage_budget,
    )


@dataclass
class SimulationConfig:
    """Configuration of one simulated run.

    Defaults match the paper's simulation setup: a 100 K-value column over a
    1 M integer domain (4-byte values) and APM bounds of 3 KB / 12 KB.  The
    buffer capacity defaults to one quarter of the column, which makes the
    constrained-memory effects visible without dominating the run.
    """

    strategy: str = "segmentation"
    model_name: str = "apm"
    m_min: float = 3 * KB
    m_max: float = 12 * KB
    column_size: int = 100_000
    domain_size: int = 1_000_000
    buffer_capacity_bytes: float | None = None
    storage_budget: float | None = None
    seed: int | None = None
    label: str | None = None
    time_phases: bool = False
    metadata: dict = field(default_factory=dict)

    def make_model(self) -> SegmentationModel | None:
        """Build the segmentation model (``None`` for model-free strategies)."""
        if not strategy_class(self.strategy).requires_model:
            return None
        return model_from_name(self.model_name, m_min=self.m_min, m_max=self.m_max, seed=self.seed)

    def display_label(self) -> str:
        """A short label in the paper's style, e.g. ``"APM Segm"``."""
        if self.label:
            return self.label
        return strategy_class(self.strategy).paper_label(self.model_name)


class Simulator:
    """Runs one configured strategy against one workload."""

    def __init__(self, config: SimulationConfig, values: np.ndarray | None = None) -> None:
        self.config = config
        if values is None:
            values = make_column(config.column_size, config.domain_size, seed=config.seed)
        self.values = np.asarray(values)
        ensure_positive("column size", self.values.size)
        self.buffer_pool: BufferPool | None = None
        if config.buffer_capacity_bytes is not None:
            self.buffer_pool = BufferPool(config.buffer_capacity_bytes)
            accountant: IOAccountant = BufferedIOAccountant(self.buffer_pool)
        else:
            accountant = IOAccountant()
        self.column = build_strategy(
            config.strategy,
            self.values,
            config.make_model(),
            accountant=accountant,
            time_phases=config.time_phases,
            storage_budget=config.storage_budget,
        )

    def run(self, workload: Workload) -> ExperimentResult:
        """Execute every query of the workload and collect the result."""
        for query in workload:
            self.column.select(query.low, query.high)
        model_name = self.config.model_name if type(self.column).requires_model else "-"
        return ExperimentResult(
            label=self.config.display_label(),
            strategy=self.config.strategy,
            model=model_name,
            workload=workload.name,
            log=self.column.history,
            column_bytes=self.column.total_bytes,
            buffer_stats=self.buffer_pool.stats if self.buffer_pool is not None else None,
            metadata={
                "column_size": int(self.values.size),
                "value_width": int(self.values.dtype.itemsize),
                **self.config.metadata,
                **workload.metadata,
            },
        )
