"""Result containers and derived series for simulation runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accounting import QueryLog
from repro.storage.buffer import BufferStats
from repro.util.stats import moving_average
from repro.util.units import KB


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregate measurements of one run (one strategy/model/workload)."""

    queries: int
    total_reads_bytes: float
    total_writes_bytes: float
    average_read_bytes: float
    average_read_kb: float
    final_segment_count: int
    final_storage_bytes: float
    peak_storage_bytes: float
    total_selection_seconds: float
    total_adaptation_seconds: float
    disk_reads_bytes: float = 0.0
    disk_writes_bytes: float = 0.0
    buffer_hit_ratio: float = 0.0


@dataclass
class ExperimentResult:
    """Everything one simulated run produced.

    ``label`` identifies the run in the paper's terms (e.g. ``"APM Repl"``),
    ``log`` holds the per-query records, and the helper methods derive the
    exact series plotted in the figures.
    """

    label: str
    strategy: str
    model: str
    workload: str
    log: QueryLog
    column_bytes: float
    buffer_stats: BufferStats | None = None
    metadata: dict = field(default_factory=dict)

    # -- series (the figures) ---------------------------------------------

    def cumulative_writes(self) -> list[float]:
        """Cumulative memory writes due to segment materialization (Fig 5/6)."""
        return self.log.cumulative("writes_bytes")

    def reads_series(self) -> list[float]:
        """Per-query memory reads in bytes (Fig 7)."""
        return self.log.series("reads_bytes")

    def storage_series(self) -> list[float]:
        """Replica storage after each query in bytes (Fig 8/9)."""
        return self.log.series("storage_bytes")

    def segment_count_series(self) -> list[int]:
        """Number of segments after each query."""
        return [int(x) for x in self.log.series("segment_count")]

    def cumulative_time_series(self) -> list[float]:
        """Cumulative per-query wall-clock seconds (Fig 11/13/15)."""
        total = [r.selection_seconds + r.adaptation_seconds for r in self.log]
        return list(np.cumsum(total))

    def moving_average_time_series(self, window: int = 20) -> list[float]:
        """Moving average of per-query seconds (Fig 12/14/16)."""
        total = [r.selection_seconds + r.adaptation_seconds for r in self.log]
        return list(moving_average(total, window))

    # -- aggregates (the tables) ----------------------------------------------

    def summary(self) -> MetricsSummary:
        """Aggregate metrics for tables such as Table 1."""
        records = list(self.log)
        queries = len(records)
        total_reads = sum(r.reads_bytes for r in records)
        total_writes = sum(r.writes_bytes for r in records)
        average_read = total_reads / queries if queries else 0.0
        storage = [r.storage_bytes for r in records] or [self.column_bytes]
        buffer_stats = self.buffer_stats
        return MetricsSummary(
            queries=queries,
            total_reads_bytes=total_reads,
            total_writes_bytes=total_writes,
            average_read_bytes=average_read,
            average_read_kb=average_read / KB,
            final_segment_count=int(records[-1].segment_count) if records else 1,
            final_storage_bytes=storage[-1],
            peak_storage_bytes=max(storage),
            total_selection_seconds=sum(r.selection_seconds for r in records),
            total_adaptation_seconds=sum(r.adaptation_seconds for r in records),
            disk_reads_bytes=buffer_stats.disk_reads_bytes if buffer_stats else 0.0,
            disk_writes_bytes=buffer_stats.disk_writes_bytes if buffer_stats else 0.0,
            buffer_hit_ratio=buffer_stats.hit_ratio if buffer_stats else 0.0,
        )

    def average_read_kb(self) -> float:
        """Average per-query read size in KB (the Table 1 metric)."""
        return self.summary().average_read_kb
