"""Convenience runners for the strategy/model grid of the paper's simulation.

Figures 5-7 and Table 1 compare the four combinations {GD, APM} x
{segmentation, replication} — plus, for some plots, the non-segmented
baseline — on the same column and workload.  ``run_grid`` executes that grid
and returns the results keyed by the paper's labels (``"GD Segm"``,
``"APM Repl"``, ...).

The grid combinations are embarrassingly parallel — every combination runs
against its own copy of the column — so ``run_grid(workers=N)`` distributes
them over a process pool.  The serial path stays the default and the
parallel path is bit-for-bit deterministic: each combination's RNG state is
derived only from the seed, so results are byte-identical to the serial run.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.simulation.metrics import ExperimentResult
from repro.simulation.simulator import SimulationConfig, Simulator
from repro.util.units import KB
from repro.workloads.generators import make_column
from repro.workloads.query import Workload

#: The four strategy/model combinations of Figures 5-7 and Table 1.
STRATEGY_MODEL_GRID: tuple[tuple[str, str], ...] = (
    ("gd", "segmentation"),
    ("gd", "replication"),
    ("apm", "segmentation"),
    ("apm", "replication"),
)


def run_single(
    workload: Workload,
    *,
    strategy: str,
    model_name: str,
    values: np.ndarray | None = None,
    column_size: int = 100_000,
    domain_size: int = 1_000_000,
    m_min: float = 3 * KB,
    m_max: float = 12 * KB,
    buffer_capacity_bytes: float | None = None,
    seed: int | None = None,
    time_phases: bool = False,
) -> ExperimentResult:
    """Run one strategy/model combination against ``workload``."""
    config = SimulationConfig(
        strategy=strategy,
        model_name=model_name,
        m_min=m_min,
        m_max=m_max,
        column_size=column_size,
        domain_size=domain_size,
        buffer_capacity_bytes=buffer_capacity_bytes,
        seed=seed,
        time_phases=time_phases,
    )
    simulator = Simulator(config, values=values)
    return simulator.run(workload)


def _run_grid_combo(task: tuple) -> tuple[str, ExperimentResult]:
    """One grid combination, shaped for ``ProcessPoolExecutor.map``.

    Module-level so it pickles; returns ``(label, result)`` so the parent can
    rebuild the mapping in combination order regardless of completion order.
    """
    model_name, strategy, workload, values, kwargs = task
    # Copy here, not when building the task list: each combination gets its
    # own column, but only in-flight combinations hold a copy at a time.
    result = run_single(
        workload, strategy=strategy, model_name=model_name, values=values.copy(), **kwargs
    )
    return result.label, result


def run_grid(
    workload: Workload,
    *,
    values: np.ndarray | None = None,
    column_size: int = 100_000,
    domain_size: int = 1_000_000,
    m_min: float = 3 * KB,
    m_max: float = 12 * KB,
    include_baseline: bool = False,
    buffer_capacity_bytes: float | None = None,
    seed: int | None = None,
    workers: int | None = None,
    backend: str = "process",
) -> dict[str, ExperimentResult]:
    """Run the paper's strategy/model grid against one workload.

    Every combination runs against its own copy of the same column (the
    adaptive strategies reorganize data in place), so results are directly
    comparable.  Returns a mapping from the paper-style label to the result.

    ``workers`` opts into a pool over the combinations.  ``None`` or ``1``
    keeps the serial path (the determinism reference); any larger value fans
    the combinations out while preserving the serial path's result ordering
    and producing byte-identical :class:`ExperimentResult` contents — each
    combination copies the column, seeds its own RNG and touches no module
    state, so placement on a worker cannot change its arithmetic.

    ``backend`` selects the pool flavor: ``"process"`` (the default) forks
    worker processes and requires picklable workloads; ``"thread"`` shares
    the address space — no pickling, cheaper startup, and the numpy kernels
    release the GIL, which is where the simulation spends its time.
    """
    if values is None:
        values = make_column(column_size, domain_size, seed=seed)
    combos: list[tuple[str, str]] = list(STRATEGY_MODEL_GRID)
    if include_baseline:
        # The baseline needs no model; its registered strategy class also
        # provides the "NoSegm" label, so no special-casing is needed here.
        combos.append(("-", "unsegmented"))
    kwargs = dict(
        column_size=column_size,
        domain_size=domain_size,
        m_min=m_min,
        m_max=m_max,
        buffer_capacity_bytes=buffer_capacity_bytes,
        seed=seed,
    )
    tasks = [
        (model_name, strategy, workload, values, kwargs)
        for model_name, strategy in combos
    ]
    if backend not in ("process", "thread"):
        raise ValueError(f"unknown run_grid backend {backend!r}, expected 'process' or 'thread'")
    results: dict[str, ExperimentResult] = {}
    if workers is not None and workers > 1:
        pool_class: type[Executor] = (
            ProcessPoolExecutor if backend == "process" else ThreadPoolExecutor
        )
        with pool_class(max_workers=min(workers, len(tasks))) as pool:
            for label, result in pool.map(_run_grid_combo, tasks):
                results[label] = result
    else:
        for task in tasks:
            label, result = _run_grid_combo(task)
            results[label] = result
    return results
