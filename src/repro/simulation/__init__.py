"""The architecture-conscious simulator of the paper's §6.1 evaluation.

It drives the adaptive strategies of :mod:`repro.core` with generated
workloads under a constrained memory buffer, collecting the byte counters
(memory reads, memory writes due to segment materialization, replica storage)
and derived series that the paper's Figures 5-9 and Table 1 report.
"""

from repro.simulation.metrics import ExperimentResult, MetricsSummary
from repro.simulation.simulator import (
    BufferedIOAccountant,
    SimulationConfig,
    Simulator,
    build_strategy,
)
from repro.simulation.runner import STRATEGY_MODEL_GRID, run_grid, run_single

__all__ = [
    "ExperimentResult",
    "MetricsSummary",
    "BufferedIOAccountant",
    "SimulationConfig",
    "Simulator",
    "build_strategy",
    "STRATEGY_MODEL_GRID",
    "run_grid",
    "run_single",
]
