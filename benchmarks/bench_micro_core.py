"""Micro-benchmarks of the core selection path.

These use pytest-benchmark's timing for what it is good at: comparing the
steady-state per-query cost of an adapted (segmented) column against the
non-segmented full-scan baseline on identical queries.
"""

import numpy as np
import pytest

from repro.core.baseline import UnsegmentedColumn
from repro.core.models import AdaptivePageModel
from repro.core.segmentation import SegmentedColumn
from repro.util.units import KB
from repro.workloads.generators import make_column, uniform_workload

N_VALUES = 400_000
DOMAIN = (0.0, 1_000_000.0)


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return make_column(N_VALUES, 1_000_000, seed=17)


@pytest.fixture(scope="module")
def warm_segmented(values) -> SegmentedColumn:
    """A segmented column already adapted by a 500-query warm-up."""
    column = SegmentedColumn(
        values, model=AdaptivePageModel(8 * KB, 32 * KB), keep_history=False, time_phases=False
    )
    for query in uniform_workload(500, DOMAIN, 0.01, seed=17):
        column.select(query.low, query.high)
    return column


def test_micro_fullscan_select(benchmark, values):
    column = UnsegmentedColumn(values, keep_history=False, time_phases=False)
    benchmark(column.select, 500_000, 510_000)


def test_micro_segmented_select(benchmark, warm_segmented):
    benchmark(warm_segmented.select, 500_000, 510_000)


def test_micro_segmented_beats_fullscan_on_reads(values, warm_segmented):
    baseline = UnsegmentedColumn(values, keep_history=False, time_phases=False)
    baseline.select(500_000, 510_000)
    before = warm_segmented.accountant.total_reads_bytes
    warm_segmented.select(500_000, 510_000)
    segmented_reads = warm_segmented.accountant.total_reads_bytes - before
    assert segmented_reads < 0.25 * baseline.accountant.total_reads_bytes
