"""Figure 2: the Gaussian Dice decision function O(x) for several sigmas."""

from repro.bench import experiments


def test_fig02_gaussian_dice(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_2, rounds=1, iterations=1)
    save_result("fig02_gaussian_dice", text)
    assert "sigma=0.5" in text
