"""Micro-benchmark: execute latency with the plan cache cold vs. warm.

Measures two things on the same statement:

* **plan acquisition** — parse + compile + optimize on a cold cache vs. an
  LRU hit on a warm cache (the work the cache exists to skip), and
* **end-to-end execute** — the full ``Database.execute`` with the cache
  cleared before every call (cold) vs. primed (warm).

The acceptance bar for the cached path is a >= 2x speedup of warm over cold
plan acquisition; on a small table the end-to-end speedup is visible too
because planning dominates the scan.

Runs under pytest (with the other ``bench_*`` files) or standalone::

    PYTHONPATH=src python benchmarks/bench_micro_plan_cache.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.database import Database
from repro.engine.profile import QueryProfile

N_ROWS = 2_000
N_ITERATIONS = 300
SQL = "SELECT objid FROM p WHERE ra BETWEEN 120.0 AND 140.0"


def _build_database() -> Database:
    rng = np.random.default_rng(23)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(N_ROWS, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=N_ROWS),
        },
    )
    return database


def _best_of(repeats: int, fn) -> float:
    """Best (minimum) average seconds per call over ``repeats`` batches."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(N_ITERATIONS):
            fn()
        best = min(best, (time.perf_counter() - started) / N_ITERATIONS)
    return best


def measure_plan_cache(database: Database | None = None) -> dict[str, float]:
    """Cold/warm latencies (seconds) for planning and for full execution."""
    database = database if database is not None else _build_database()

    def plan_cold():
        database.plan_cache.clear()
        database._prepare(SQL, QueryProfile())

    def plan_warm():
        database._prepare(SQL, QueryProfile())

    def execute_cold():
        database.plan_cache.clear()
        database.execute(SQL)

    def execute_warm():
        database.execute(SQL)

    database.execute(SQL)  # prime interpreter/module state
    plan_cold_s = _best_of(3, plan_cold)
    database._prepare(SQL, QueryProfile())  # prime the cache
    plan_warm_s = _best_of(3, plan_warm)
    execute_cold_s = _best_of(3, execute_cold)
    database._prepare(SQL, QueryProfile())
    execute_warm_s = _best_of(3, execute_warm)
    return {
        "plan_cold_s": plan_cold_s,
        "plan_warm_s": plan_warm_s,
        "plan_speedup": plan_cold_s / plan_warm_s,
        "execute_cold_s": execute_cold_s,
        "execute_warm_s": execute_warm_s,
        "execute_speedup": execute_cold_s / execute_warm_s,
    }


def format_report(measurements: dict[str, float]) -> str:
    lines = [
        "plan cache micro-benchmark "
        f"({N_ROWS} rows, {N_ITERATIONS} iterations, best of 3)",
        f"  plan acquisition  cold {measurements['plan_cold_s'] * 1e6:9.1f} us"
        f"  warm {measurements['plan_warm_s'] * 1e6:9.1f} us"
        f"  speedup {measurements['plan_speedup']:6.1f}x",
        f"  execute           cold {measurements['execute_cold_s'] * 1e6:9.1f} us"
        f"  warm {measurements['execute_warm_s'] * 1e6:9.1f} us"
        f"  speedup {measurements['execute_speedup']:6.1f}x",
    ]
    return "\n".join(lines)


def test_micro_plan_cache(save_result):
    measurements = measure_plan_cache()
    save_result("micro_plan_cache", format_report(measurements))
    # Acceptance bar: the warm cache skips parse+compile+optimize entirely.
    assert measurements["plan_speedup"] >= 2.0
    # And the cached path never answers differently.
    database = _build_database()
    cold = database.execute(SQL)
    warm = database.execute(SQL)
    assert warm.plan_cache_hit
    assert np.array_equal(cold.column("objid"), warm.column("objid"))


if __name__ == "__main__":
    print(format_report(measure_plan_cache()))
