"""Ablation: how the APM bounds trade adaptation overhead against read savings.

This is not a paper figure; it backs the design discussion of §3.2.2/§6.2 (the
choice of Mmin/Mmax controls how aggressive reorganization is) with a sweep
over Mmax on the simulation workload.
"""

from repro.bench.reporting import format_table
from repro.simulation.runner import run_single
from repro.util.units import KB
from repro.workloads.generators import uniform_workload


def _sweep() -> str:
    workload = uniform_workload(1500, (0, 1_000_000), 0.01, seed=11)
    rows = []
    for m_max_kb in (6, 12, 24, 48, 96):
        result = run_single(
            workload,
            strategy="segmentation",
            model_name="apm",
            m_min=3 * KB,
            m_max=m_max_kb * KB,
            seed=11,
        )
        summary = result.summary()
        rows.append(
            {
                "Mmax (KB)": m_max_kb,
                "avg read (KB)": summary.average_read_kb,
                "writes (KB)": summary.total_writes_bytes / KB,
                "segments": summary.final_segment_count,
            }
        )
    return format_table("Ablation: APM Mmax sweep (uniform, selectivity 0.01)", rows)


def test_ablation_apm_bounds(benchmark, save_result):
    text = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_result("ablation_apm_bounds", text)
    assert "Mmax (KB)" in text
