"""Figure 5: cumulative memory writes due to segment materialization (uniform).

Expected shape (paper §6.1.1): adaptive replication needs fewer writes than
adaptive segmentation for both models, with a stable factor of roughly 2-3 for
the deterministic APM model; APM stops reorganizing after an initial number of
queries under a uniform workload.
"""

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_fig05_cumulative_writes_uniform(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_5, rounds=1, iterations=1)
    save_result("fig05_writes_uniform", text)

    for selectivity in (0.1, 0.01):
        grid = simulation_grid("uniform", selectivity)
        segmentation_writes = grid["APM Segm"].summary().total_writes_bytes
        replication_writes = grid["APM Repl"].summary().total_writes_bytes
        assert replication_writes < segmentation_writes
