"""Standing perf suite: sorted zero-copy kernels vs. the legacy mask kernels.

Times the micro kernels of the physical layer (``Segment.select`` /
``Segment.partition`` against the pre-sorted-layout mask implementations
reproduced below) plus one end-to-end engine run, and writes the numbers to
``BENCH_segment_kernels.json`` at the repository root so the perf trajectory
is tracked from this PR onward.

Scales with the environment (CI runs reduced)::

    PERF_ROWS      column size for the micro kernels / engine run (default 100 000)
    PERF_QUERIES   number of end-to-end engine queries        (default 200)
    PERF_REPEAT    timing repeats per kernel                  (default 5)

The suite never fails on timing — it reports.  Set ``PERF_ASSERT=1`` to
additionally enforce the PR's acceptance bars (>= 5x fully-contained select,
>= 2x adaptive-split partition at 100 K values) for local verification.

Runs standalone::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.perf_tracking import PerfSuite, env_scale
from repro.core.ranges import ValueRange
from repro.core.segment import Segment
from repro.engine.database import Database
from repro.util.units import KB
from repro.workloads.generators import make_column

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

DOMAIN = (0.0, 1_000_000.0)


# ---------------------------------------------------------------------------
# Legacy kernels (the pre-zero-copy implementation, kept as the yardstick)
# ---------------------------------------------------------------------------


def legacy_mask_select(
    values: np.ndarray, oids: np.ndarray, low: float, high: float
) -> tuple[np.ndarray, np.ndarray]:
    """The old ``Segment.select``: boolean mask over an unsorted payload + copy."""
    mask = (values >= low) & (values < high)
    return values[mask], oids[mask]


def legacy_mask_partition(
    values: np.ndarray, oids: np.ndarray, vrange: ValueRange, points: list[float]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The old ``Segment.partition``: bucket every value, copy every piece."""
    sub_ranges = vrange.split_at(points)
    cuts = [r.high for r in sub_ranges[:-1]]
    bucket = np.searchsorted(np.asarray(cuts), values, side="right")
    pieces = []
    for i, _sub in enumerate(sub_ranges):
        selected = bucket == i
        pieces.append((values[selected], oids[selected]))
    return pieces


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def run_suite() -> PerfSuite:
    n_rows = env_scale("PERF_ROWS", 100_000)
    n_queries = env_scale("PERF_QUERIES", 200)
    repeat = env_scale("PERF_REPEAT", 5)

    raw_values = make_column(n_rows, int(DOMAIN[1]), seed=17)
    raw_oids = np.arange(n_rows, dtype=np.int64)
    segment = Segment(ValueRange(*DOMAIN), raw_values.copy())

    suite = PerfSuite("segment_kernels")

    # -- select on a fully-contained range (the meta-index fast path) -------
    contained = ValueRange(*DOMAIN)
    suite.measure(
        "select_contained_sorted",
        lambda: segment.select(contained),
        number=200,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "select_contained_legacy_mask",
        lambda: legacy_mask_select(raw_values, raw_oids, contained.low, contained.high),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_select_contained",
        suite["select_contained_legacy_mask"].value / suite["select_contained_sorted"].value,
    )

    # -- select on a partial (10%) range ------------------------------------
    partial = ValueRange(450_000.0, 550_000.0)
    suite.measure(
        "select_partial_sorted",
        lambda: segment.select(partial),
        number=200,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "select_partial_legacy_mask",
        lambda: legacy_mask_select(raw_values, raw_oids, partial.low, partial.high),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_select_partial",
        suite["select_partial_legacy_mask"].value / suite["select_partial_sorted"].value,
    )

    # -- adaptive split (partition at the query bounds) ----------------------
    split_points = [partial.low, partial.high]
    suite.measure(
        "partition_sorted",
        lambda: segment.partition(split_points),
        number=100,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "partition_legacy_mask",
        lambda: legacy_mask_partition(
            raw_values, raw_oids, ValueRange(*DOMAIN), split_points
        ),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_partition",
        suite["partition_legacy_mask"].value / suite["partition_sorted"].value,
    )

    # -- one end-to-end engine run (SQL -> optimizer -> BPM -> kernels) ------
    def engine_run() -> None:
        rng = np.random.default_rng(29)
        database = Database()
        database.create_table("p", {"objid": "int64", "ra": "float64"})
        database.bulk_load(
            "p",
            {
                "objid": np.arange(n_rows, dtype=np.int64),
                "ra": rng.uniform(0.0, 360.0, size=n_rows),
            },
        )
        database.enable_adaptive("p", "ra", strategy="segmentation", model="apm",
                                 m_min=8 * KB, m_max=32 * KB)
        for _ in range(n_queries):
            low = float(rng.uniform(0.0, 356.0))
            database.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {low + 3.6}")

    started = time.perf_counter()
    engine_run()
    engine_seconds = time.perf_counter() - started
    suite.derive(
        "engine_end_to_end", engine_seconds, unit="s",
        rows=n_rows, queries=n_queries,
    )
    suite.derive(
        "engine_per_query", engine_seconds / n_queries, unit="s",
        rows=n_rows, queries=n_queries,
    )
    return suite


def main() -> int:
    suite = run_suite()
    path = suite.write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[saved to {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        contained = suite["speedup_select_contained"].value
        partition = suite["speedup_partition"].value
        assert contained >= 5.0, f"fully-contained select speedup {contained:.1f}x < 5x"
        assert partition >= 2.0, f"partition speedup {partition:.1f}x < 2x"
        print(f"[PERF_ASSERT ok: select {contained:.1f}x, partition {partition:.1f}x]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
