"""Standing perf suite: sorted zero-copy kernels vs. the legacy mask kernels.

Times the micro kernels of the physical layer (``Segment.select`` /
``Segment.partition`` against the pre-sorted-layout mask implementations
reproduced below) plus an end-to-end engine run, and writes the numbers to
``BENCH_segment_kernels.json`` at the repository root so the perf trajectory
is tracked from this PR onward.

The engine section times every query individually and reports the compiled
fast path's cold/warm split:

* ``engine_per_query_cold`` — the first query (parse + compile + optimize +
  plan lowering + first adaptation burst);
* ``engine_per_query_warm`` — the median of all subsequent queries, which hit
  the parameterized plan cache by masked text (no recompilation, no parse);
* ``engine_per_query_legacy`` — the pre-fast-path execution reconstructed in
  this tree (per-statement recompilation + tree-walking interpreter);
* ``engine_per_query_nocache`` — the compiled fast path with the plan cache
  cleared before every statement (isolates the cache's contribution);
* ``prepared_per_query`` — the client API's prepared-statement binding path
  (``repro.connect`` → ``Connection.prepare`` → per-query bind + execute):
  no SQL text per query at all, so it must beat the warm masked-text path
  (``speedup_prepared_vs_warm`` is that ratio; the PERF_ASSERT bar);
* ``batch_per_query`` / ``engine_batch_throughput_qps`` — the vectorized batch
  executor: one ``execute_prepared_many`` over a batch of 256 **disjoint**
  range selects, answered through the strategy layer's ``select_many``
  kernels in O(touched segments) numpy calls.  ``speedup_batch_vs_prepared``
  is ``prepared_per_query / batch_per_query``; the PERF_ASSERT bar demands
  >= 10x (batch per-query cost <= 0.1x the prepared path) at the reference
  scale;
* ``speedup_engine_warm`` — warm vs the *committed* PR-2 ``engine_per_query``
  figure (940.66 µs) when running at the reference scale of 100 K rows /
  200 queries; at any other scale that figure is not comparable and the
  ratio falls back to ``legacy / warm``;
* ``speedup_engine_vs_legacy`` — always ``legacy / warm``;
* ``engine_warm_<stage>`` / ``engine_cold_<stage>`` — mean per-stage seconds
  from the per-query profiler (parse/optimize/compile/execute).

Scales with the environment (CI runs reduced)::

    PERF_ROWS      column size for the micro kernels / engine run (default 100 000)
    PERF_QUERIES   number of end-to-end engine queries        (default 200)
    PERF_REPEAT    timing repeats per kernel                  (default 5)

The suite never fails on timing — it reports (``benchmarks/compare_bench.py``
is the gate).  Set ``PERF_ASSERT=1`` to additionally enforce the acceptance
bars (>= 5x fully-contained select, >= 2x adaptive-split partition, >= 5x
warm-vs-nocache engine speedup, warm <= 150 µs on reference-speed hardware —
the bar scales with the co-measured legacy-path host-speed factor — prepared
binding no slower than the warm masked-text path, and batch-of-256 per-query
cost <= 0.1x the prepared path at the default 100 K scale) for local
verification.

Runs standalone::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench.perf_tracking import PerfSuite, env_scale
from repro.core.ranges import ValueRange
from repro.core.segment import Segment
from repro.engine.database import Database
from repro.util.units import KB
from repro.workloads.generators import make_column

REPO_ROOT = Path(__file__).resolve().parent.parent
REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

DOMAIN = (0.0, 1_000_000.0)

#: The committed ``engine_per_query`` of the PR-2 report (BENCH_segment_kernels
#: .json at commit 94409f7), measured at the reference scale of 100 K rows /
#: 200 queries — the pre-fast-path per-query latency this suite's
#: ``speedup_engine_warm`` is defined against at that scale.
PR2_ENGINE_PER_QUERY = 940.66e-6

#: The committed ``engine_per_query_legacy`` of the PR-4 report at the
#: reference scale: the in-tree legacy reconstruction as timed on the
#: reference machine.  Because the reconstruction re-runs in every suite
#: invocation on the same data, ``measured / committed`` is a host-speed
#: factor — PERF_ASSERT scales its *absolute* latency bars by it so a slower
#: or contended host widens the bars instead of flaking them (relative bars
#: are unaffected).
REFERENCE_LEGACY_PER_QUERY = 578.97e-6


# ---------------------------------------------------------------------------
# Legacy kernels (the pre-zero-copy implementation, kept as the yardstick)
# ---------------------------------------------------------------------------


def legacy_mask_select(
    values: np.ndarray, oids: np.ndarray, low: float, high: float
) -> tuple[np.ndarray, np.ndarray]:
    """The old ``Segment.select``: boolean mask over an unsorted payload + copy."""
    mask = (values >= low) & (values < high)
    return values[mask], oids[mask]


def legacy_mask_partition(
    values: np.ndarray, oids: np.ndarray, vrange: ValueRange, points: list[float]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """The old ``Segment.partition``: bucket every value, copy every piece."""
    sub_ranges = vrange.split_at(points)
    cuts = [r.high for r in sub_ranges[:-1]]
    bucket = np.searchsorted(np.asarray(cuts), values, side="right")
    pieces = []
    for i, _sub in enumerate(sub_ranges):
        selected = bucket == i
        pieces.append((values[selected], oids[selected]))
    return pieces


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def run_suite() -> PerfSuite:
    n_rows = env_scale("PERF_ROWS", 100_000)
    n_queries = env_scale("PERF_QUERIES", 200)
    repeat = env_scale("PERF_REPEAT", 5)

    raw_values = make_column(n_rows, int(DOMAIN[1]), seed=17)
    raw_oids = np.arange(n_rows, dtype=np.int64)
    segment = Segment(ValueRange(*DOMAIN), raw_values.copy())

    suite = PerfSuite("segment_kernels")

    # -- select on a fully-contained range (the meta-index fast path) -------
    contained = ValueRange(*DOMAIN)
    suite.measure(
        "select_contained_sorted",
        lambda: segment.select(contained),
        number=200,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "select_contained_legacy_mask",
        lambda: legacy_mask_select(raw_values, raw_oids, contained.low, contained.high),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_select_contained",
        suite["select_contained_legacy_mask"].value / suite["select_contained_sorted"].value,
    )

    # -- select on a partial (10%) range ------------------------------------
    partial = ValueRange(450_000.0, 550_000.0)
    suite.measure(
        "select_partial_sorted",
        lambda: segment.select(partial),
        number=200,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "select_partial_legacy_mask",
        lambda: legacy_mask_select(raw_values, raw_oids, partial.low, partial.high),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_select_partial",
        suite["select_partial_legacy_mask"].value / suite["select_partial_sorted"].value,
    )

    # -- adaptive split (partition at the query bounds) ----------------------
    split_points = [partial.low, partial.high]
    suite.measure(
        "partition_sorted",
        lambda: segment.partition(split_points),
        number=100,
        repeat=repeat,
        rows=n_rows,
    )
    suite.measure(
        "partition_legacy_mask",
        lambda: legacy_mask_partition(
            raw_values, raw_oids, ValueRange(*DOMAIN), split_points
        ),
        number=20,
        repeat=repeat,
        rows=n_rows,
    )
    suite.derive(
        "speedup_partition",
        suite["partition_legacy_mask"].value / suite["partition_sorted"].value,
    )

    # -- end-to-end engine runs (SQL -> optimizer -> BPM -> kernels) ---------
    def build_database() -> Database:
        rng = np.random.default_rng(29)
        database = Database()
        database.create_table("p", {"objid": "int64", "ra": "float64"})
        database.bulk_load(
            "p",
            {
                "objid": np.arange(n_rows, dtype=np.int64),
                "ra": rng.uniform(0.0, 360.0, size=n_rows),
            },
        )
        database.enable_adaptive("p", "ra", strategy="segmentation", model="apm",
                                 m_min=8 * KB, m_max=32 * KB)
        return database

    def workload_bounds() -> list[tuple[float, float]]:
        rng = np.random.default_rng(43)
        return [
            (low, low + 3.6)
            for low in (float(rng.uniform(0.0, 356.0)) for _ in range(n_queries))
        ]

    def workload() -> list[str]:
        return [
            f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {high}"
            for low, high in workload_bounds()
        ]

    def engine_run(*, clear_cache: bool) -> tuple[list[float], list]:
        database = build_database()
        times: list[float] = []
        profiles = []
        for sql in workload():
            if clear_cache:
                database.plan_cache.clear()
            started = time.perf_counter()
            result = database.execute(sql)
            times.append(time.perf_counter() - started)
            profiles.append(result.profile)
        return times, profiles

    # Like the kernel timings, the engine run is repeated and the least-noisy
    # run (lowest warm median) is reported: a scheduler blip during one run
    # must not decide the standing warm-latency figure.
    best: tuple[list[float], list] | None = None
    best_warm = float("inf")
    for _ in range(min(repeat, 3)):
        candidate_times, candidate_profiles = engine_run(clear_cache=False)
        ordered = sorted(candidate_times[1:]) or [candidate_times[0]]
        candidate_warm = ordered[len(ordered) // 2]
        if candidate_warm < best_warm:
            best_warm = candidate_warm
            best = (candidate_times, candidate_profiles)
    times, profiles = best
    engine_seconds = sum(times)
    cold_seconds = times[0]
    warm_times = sorted(times[1:]) or [cold_seconds]
    warm_seconds = warm_times[len(warm_times) // 2]
    suite.derive(
        "engine_end_to_end", engine_seconds, unit="s",
        rows=n_rows, queries=n_queries,
    )
    suite.derive(
        "engine_per_query", engine_seconds / n_queries, unit="s",
        rows=n_rows, queries=n_queries,
    )
    suite.derive(
        "engine_per_query_cold", cold_seconds, unit="s",
        rows=n_rows, queries=n_queries,
    )
    suite.derive(
        "engine_per_query_warm", warm_seconds, unit="s",
        rows=n_rows, queries=n_queries,
        note="median over all queries after the first",
    )

    # Per-stage attribution (the profiler satellite): cold = first query,
    # warm = mean over the rest.
    cold_stages = profiles[0].stage_seconds()
    for stage, seconds in cold_stages.items():
        suite.derive(f"engine_cold_{stage}", seconds, unit="s")
    warm_profiles = profiles[1:] or profiles
    for stage in cold_stages:
        mean = sum(profile.stage_seconds()[stage] for profile in warm_profiles)
        suite.derive(f"engine_warm_{stage}", mean / len(warm_profiles), unit="s")

    # The pre-fast-path behaviour, reconstructed faithfully: every distinct
    # literal recompiled its plan and ran through the tree-walking
    # interpreter with a fresh execution context (the committed PR-2
    # ``engine_per_query`` measured exactly this path).
    def legacy_engine_run() -> list[float]:
        from repro.engine.execution import ExecutionContext
        from repro.engine.result import QueryResult
        from repro.sql.parser import parse

        database = build_database()
        times: list[float] = []
        for sql in workload():
            started = time.perf_counter()
            # The PR-2 execute() body: text-keyed cache (every distinct
            # literal misses), tree-walking interpreter, fresh context,
            # per-query plan render into the result.
            optimized = database.optimizer.optimize(database.compiler.compile(parse(sql)))
            context = ExecutionContext(catalog=database.catalog)
            before = database._adaptive_counters()
            database.interpreter.run(optimized, context)
            selection_seconds, adaptation_seconds = database._adaptive_delta(before)
            QueryResult(
                sql=sql,
                columns=context.exported_columns(),
                scalars=dict(context.scalars),
                plan_text=optimized.render(),
                selection_seconds=selection_seconds,
                adaptation_seconds=adaptation_seconds,
            )
            times.append(time.perf_counter() - started)
        return times

    legacy_times = legacy_engine_run()
    suite.derive(
        "engine_per_query_legacy", sum(legacy_times) / len(legacy_times), unit="s",
        rows=n_rows, queries=n_queries,
        note="per-statement recompilation + tree-walking interpreter (pre-fast-path)",
    )

    # The client API's prepared-statement binding path: one
    # Connection.prepare, then only bind-and-execute per query — no SQL text
    # is touched again (vs. the warm masked-text path, which still pays
    # normalize + literal masking + cache probe per query).
    def prepared_run() -> list[float]:
        from repro.api import connect

        connection = connect(build_database())
        select = connection.prepare("SELECT objid FROM p WHERE ra BETWEEN ? AND ?")
        times: list[float] = []
        for bounds in workload_bounds():
            started = time.perf_counter()
            select.execute(bounds)
            times.append(time.perf_counter() - started)
        return times

    best_prepared: list[float] | None = None
    best_prepared_median = float("inf")
    for _ in range(min(repeat, 3)):
        candidate = prepared_run()
        ordered = sorted(candidate[1:]) or [candidate[0]]
        if ordered[len(ordered) // 2] < best_prepared_median:
            best_prepared = candidate
            best_prepared_median = ordered[len(ordered) // 2]
    prepared_warm = sorted(best_prepared[1:]) or [best_prepared[0]]
    suite.derive(
        "prepared_per_query", prepared_warm[len(prepared_warm) // 2], unit="s",
        rows=n_rows, queries=n_queries,
        note="median per-query over Connection.prepare + PreparedStatement.execute "
             "(first query excluded: it pays the adaptation burst)",
    )
    suite.derive(
        "speedup_prepared_vs_warm",
        suite["engine_per_query_warm"].value / suite["prepared_per_query"].value,
        note="prepared binding vs the warm masked-text path (bar: >= 1x)",
    )

    # The vectorized batch executor: N bound range-selects answered per numpy
    # call, not per Python dispatch.  A batch of 256 *disjoint* ranges — the
    # shape the overlap-cluster-only path could never amortize — runs through
    # execute_prepared_many; the first batch pays the adaptation burst, the
    # timed batches measure the steady state (like the warm per-query paths).
    batch_size = 256

    def disjoint_batch_bounds(count: int) -> list[tuple[float, float]]:
        rng = np.random.default_rng(51)
        spacing = 360.0 / count
        return [
            (start, start + spacing * 0.5)
            for start in (
                i * spacing + float(rng.uniform(0.0, spacing * 0.25))
                for i in range(count)
            )
        ]

    def batch_run() -> list[float]:
        database = build_database()
        prepared = database.prepare_statement(
            "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
        )
        parameters = disjoint_batch_bounds(batch_size)
        results = database.execute_prepared_many(prepared, parameters)  # warm-up
        assert len(results) == batch_size and all(r.batched for r in results)
        times: list[float] = []
        for _ in range(max(repeat, 3)):
            started = time.perf_counter()
            database.execute_prepared_many(prepared, parameters)
            times.append(time.perf_counter() - started)
        return times

    batch_best = min(batch_run())
    suite.derive(
        "batch_per_query", batch_best / batch_size, unit="s",
        rows=n_rows, queries=batch_size,
        note="execute_prepared_many over 256 disjoint range selects "
             "(vectorized batch executor; best batch after warm-up)",
    )
    suite.derive(
        "engine_batch_throughput_qps", batch_size / batch_best, unit="qps",
        rows=n_rows, queries=batch_size,
        note="in-process execute_prepared_many (no server; see "
             "batch_throughput_qps for the server-mediated figure)",
    )
    suite.derive(
        "speedup_batch_vs_prepared",
        suite["prepared_per_query"].value / suite["batch_per_query"].value,
        note="batch-of-256 per-query cost vs the prepared binding path "
             "(bar: >= 10x at the reference scale)",
    )

    # The compiled fast path with the plan cache disabled: isolates what the
    # cache contributes on top of the slot-based executor.
    nocache_times, _ = engine_run(clear_cache=True)
    suite.derive(
        "engine_per_query_nocache", sum(nocache_times) / len(nocache_times), unit="s",
        rows=n_rows, queries=n_queries,
        note="plan cache cleared before every statement",
    )
    suite.derive(
        "speedup_engine_vs_legacy",
        suite["engine_per_query_legacy"].value / suite["engine_per_query_warm"].value,
        note="warm fast path vs the legacy path re-run in this tree (the legacy "
             "path also benefits from this PR's kernel optimizations)",
    )
    if n_rows == 100_000 and n_queries == 200:
        # The committed PR-2 engine_per_query at exactly this scale — the
        # "current 940 µs" the compiled-fast-path work was scoped against.
        # Only comparable (and only reported) at the reference scale.
        suite.derive(
            "speedup_engine_warm",
            PR2_ENGINE_PER_QUERY / suite["engine_per_query_warm"].value,
            note="warm fast path vs the committed pre-fast-path figure "
                 f"({PR2_ENGINE_PER_QUERY * 1e6:.0f} µs at 100 K rows / 200 queries)",
        )
    else:
        # Off the reference scale the committed figure is not comparable;
        # fall back to the in-tree legacy reconstruction.
        suite.derive(
            "speedup_engine_warm",
            suite["engine_per_query_legacy"].value / suite["engine_per_query_warm"].value,
            note="reduced scale: measured against the in-tree legacy path",
        )
    return suite


def main() -> int:
    suite = run_suite()
    path = suite.write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[saved to {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        contained = suite["speedup_select_contained"].value
        partition = suite["speedup_partition"].value
        warm = suite["engine_per_query_warm"].value
        warm_speedup = suite["speedup_engine_warm"].value
        prepared = suite["prepared_per_query"].value
        batch = suite["batch_per_query"].value
        assert contained >= 5.0, f"fully-contained select speedup {contained:.1f}x < 5x"
        assert partition >= 2.0, f"partition speedup {partition:.1f}x < 2x"
        at_reference_scale = (
            env_scale("PERF_ROWS", 100_000) == 100_000
            and env_scale("PERF_QUERIES", 200) == 200
        )
        if at_reference_scale:
            # The acceptance bars are defined at the reference scale only.
            # Absolute-latency bars are normalized by the host-speed factor
            # (see REFERENCE_LEGACY_PER_QUERY) so they mean "on the reference
            # machine"; a factor below 1 (faster host) never tightens them.
            machine = max(
                1.0, suite["engine_per_query_legacy"].value / REFERENCE_LEGACY_PER_QUERY
            )
            warm_bar = 150e-6 * machine
            assert warm <= warm_bar, (
                f"warm engine per-query {warm * 1e6:.1f} µs > "
                f"{warm_bar * 1e6:.1f} µs (150 µs x host factor {machine:.2f})"
            )
            assert warm_speedup >= 5.0, f"warm engine speedup {warm_speedup:.1f}x < 5x"
            # Prepared skips normalize + masking, so it should not lose to the
            # warm masked-text path; the two differ by ~1 µs by construction,
            # well inside scheduler jitter, so the bar carries a 5% tolerance
            # (a real regression on the binding path is far larger).
            assert prepared <= warm * 1.05, (
                f"prepared binding {prepared * 1e6:.1f} µs not faster than "
                f"warm masked-text path {warm * 1e6:.1f} µs (+5% tolerance)"
            )
            assert batch <= 0.1 * prepared, (
                f"batch-of-256 per-query {batch * 1e6:.1f} µs > 0.1x the "
                f"prepared path ({prepared * 1e6:.1f} µs)"
            )
        print(
            f"[PERF_ASSERT ok: select {contained:.1f}x, partition {partition:.1f}x, "
            f"engine warm {warm * 1e6:.1f} µs ({warm_speedup:.1f}x), "
            f"prepared {prepared * 1e6:.1f} µs, batch {batch * 1e6:.2f} µs "
            f"({suite['speedup_batch_vs_prepared'].value:.1f}x)]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
