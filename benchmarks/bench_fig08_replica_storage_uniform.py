"""Figure 8: replica-tree storage over the first 500 queries (uniform).

Expected shape (paper §6.1.3): the replica tree initially needs extra storage
(up to roughly 1.5x the column), with the biggest drops when a fully
replicated segment — eventually the original column itself — is dropped; after
a few hundred uniform queries storage shrinks back towards the column size.
GD releases storage faster than APM.
"""

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_fig08_replica_storage_uniform(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_8, rounds=1, iterations=1)
    save_result("fig08_replica_storage_uniform", text)

    grid = simulation_grid("uniform", 0.1)
    for label in ("GD Repl", "APM Repl"):
        result = grid[label]
        storage = result.storage_series()
        column_bytes = result.column_bytes
        peak = max(storage[:500])
        final = storage[min(len(storage), 500) - 1]
        assert peak > 1.2 * column_bytes, label  # replicas cost extra storage...
        assert final < peak, label  # ...and fully replicated originals get dropped
        assert final < 1.6 * column_bytes, label
