"""Ablation: adaptive replication under a storage budget (paper §8 extension).

The paper leaves replica storage limits as future work; this benchmark shows
the extension in action: with a budget, peak replica storage stays bounded
while queries remain correct, at the price of extra reads when evicted
replicas have to be rebuilt from their ancestors.
"""

from repro.bench.reporting import format_table
from repro.core.models import AdaptivePageModel
from repro.core.replication import ReplicatedColumn
from repro.util.units import KB
from repro.workloads.generators import make_column, uniform_workload


def _run(budget_factor: float | None) -> dict[str, object]:
    values = make_column(100_000, 1_000_000, seed=5)
    column_bytes = values.size * values.dtype.itemsize
    budget = None if budget_factor is None else budget_factor * column_bytes
    column = ReplicatedColumn(
        values,
        model=AdaptivePageModel(3 * KB, 12 * KB),
        storage_budget=budget,
        time_phases=False,
    )
    workload = uniform_workload(1500, (0, 1_000_000), 0.1, seed=5)
    for query in workload:
        column.select(query.low, query.high)
    return {
        "budget": "unbounded" if budget_factor is None else f"{budget_factor:.2f}x column",
        "peak storage (KB)": column.peak_storage_bytes / KB,
        "final storage (KB)": column.storage_bytes / KB,
        "avg read (KB)": column.history.average("reads_bytes") / KB,
    }


def _sweep() -> str:
    rows = [_run(None), _run(1.5), _run(1.2)]
    return format_table("Ablation: replication storage budget", rows)


def test_ablation_storage_budget(benchmark, save_result):
    text = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    save_result("ablation_storage_budget", text)

    unbounded = _run(None)
    tight = _run(1.2)
    assert tight["peak storage (KB)"] <= unbounded["peak storage (KB)"] * 1.05
