"""Self-tuning under workload drift: fixed default knobs vs the controller.

One replication-strategy engine is squeezed by a storage budget sized for a
*single* query mode, then the workload drifts: a hotspot warm-up phase is
followed by an interleaved four-mode phase whose combined working set
exceeds the budget.  With fixed default knobs every phase-two query pays
budget enforcement walks plus eviction/rematerialization churn — the engine
thrashes at the budget boundary for the rest of the run.

The self-tuning run drives the identical query stream through the same
engine with a :class:`~repro.tuning.TuningController` observing each query
(IO-bytes deltas from the adaptive accountant).  Its what-if estimator is
trained offline from a small budget sweep (the ``simulation_sweep`` recipe
applied to real engine measurements), so when the drift detector fires at
the phase boundary the controller prices one-step budget moves, applies the
best, trials it for a window, and keeps climbing while moves keep paying
off — then the uncertainty gate halts the climb once predicted gains
flatten.  Four committed moves typically lift the budget from "one mode
fits" to "all four fit" and the thrash disappears.

Both runs time the *whole* drifted phase (``PERF_REPEAT`` segments of
``PERF_TUNING_QUERIES``) end to end: the fixed engine's enforcement-walk
cost compounds as its replica tree grows, while the controller run pays
its climb transient early and then serves from a fitting budget.
``tuning_gain_x`` is co-measured (both runs execute the same prepared plan
on the same data in the same process), so the ratio is host-speed
independent and the PERF_ASSERT bar needs no machine factor.

Metrics merged into ``BENCH_segment_kernels.json``:

* ``tuning_fixed_qps``      — phase-two throughput with default knobs
* ``tuning_controller_qps`` — same stream with the controller retuning
* ``tuning_gain_x``         — controller over fixed (bar: >= 1.3x at the
  reference scale; the CI gate)
* ``tuning_budget_growth_x`` — converged budget over the starting budget
* ``whatif_rank_corr``      — held-out Spearman of the estimator on a
  ``run_grid``-family sweep (bar: >= 0.8, scale independent)

Scales with the environment (CI runs reduced)::

    PERF_TUNING_ROWS      rows in the table            (default 100 000)
    PERF_TUNING_QUERIES   timed phase-two queries      (default 3 000)
    PERF_TUNING_SLACK_KB  budget headroom over column  (default 48)
    PERF_TUNING_WINDOW    controller window (queries)  (default 32)
    PERF_REPEAT           timing sweeps                (default 3)

Run after ``bench_perf_suite.py`` (the records merge into its report)::

    PYTHONPATH=src python benchmarks/bench_self_tuning.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.perf_tracking import PerfSuite, env_scale  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.tuning import (  # noqa: E402
    DriftDetector,
    TrainingExample,
    TuningController,
    WhatIfEstimator,
    rank_correlation,
    simulation_sweep_examples,
    workload_feature_vector,
)
from repro.tuning.knobs import database_knobs  # noqa: E402
from repro.util.units import KB  # noqa: E402
from repro.workloads import (  # noqa: E402
    hotspot_workload,
    multimodal_workload,
    uniform_workload,
)

REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
DOMAIN = (0.0, 360.0)
N_MODES = 4
SELECTIVITY = 0.002
SWEEP_MULTIPLIERS = (1.01, 1.1, 1.25, 1.5, 2.0, 3.0)


def build_database(*, n_rows: int, slack_kb: int, budget: float | None = None) -> Database:
    """A replication column under a budget sized for one mode's working set."""
    rng = np.random.default_rng(29)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(*DOMAIN, size=n_rows),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy="replication", model="apm",
        m_min=1 * KB, m_max=4 * KB,
        storage_budget=budget if budget is not None else n_rows * 8 + slack_kb * KB,
    )
    return database


def phase1_bounds(count: int, seed: int) -> list[tuple[float, float]]:
    """Warm-up phase: one mode, comfortably inside the budget."""
    workload = multimodal_workload(
        count, DOMAIN, SELECTIVITY, n_modes=1, seed=seed
    )
    return [(query.low, query.high) for query in workload.queries]


def phase2_bounds(count: int, seed: int) -> list[tuple[float, float]]:
    """The drifted phase: four interleaved modes, working set over budget."""
    workload = multimodal_workload(
        count, DOMAIN, SELECTIVITY, n_modes=N_MODES, interleave=True, seed=seed
    )
    return [(query.low, query.high) for query in workload.queries]


def replay(database: Database, prepared, bounds, observe=None) -> None:
    """Execute every query; optionally feed (low, high, io-delta) to a tuner."""
    accountant = database.bpm.handles()[0].adaptive.accountant
    seen = accountant.total_reads_bytes + accountant.total_writes_bytes
    for low, high in bounds:
        database.execute_prepared(prepared, (low, high))
        if observe is not None:
            total = accountant.total_reads_bytes + accountant.total_writes_bytes
            observe(low, high, total - seen)
            seen = total


def budget_sweep_examples(*, n_rows: int, slack_kb: int) -> list[TrainingExample]:
    """Offline what-if training: measure IO/query at a handful of budgets.

    Each sweep point is a fresh engine at that budget replaying the same
    phase-two sample — honest engine measurements, not a model of them.
    """
    floor = n_rows * 8
    sample = phase2_bounds(200, seed=3)
    features = workload_feature_vector(
        [low for low, _ in sample], [high for _, high in sample],
        domain_low=DOMAIN[0], domain_high=DOMAIN[1],
    )
    examples = []
    for multiplier in SWEEP_MULTIPLIERS:
        budget = floor * multiplier
        database = build_database(n_rows=n_rows, slack_kb=slack_kb, budget=budget)
        prepared = database.prepare_statement(SQL)
        replay(database, prepared, phase1_bounds(128, seed=5))  # warm the trees
        accountant = database.bpm.handles()[0].adaptive.accountant
        base = accountant.total_reads_bytes + accountant.total_writes_bytes
        replay(database, prepared, sample)
        io_per_query = (
            accountant.total_reads_bytes + accountant.total_writes_bytes - base
        ) / len(sample)
        examples.append(TrainingExample(
            knobs={"replication_storage_budget": float(budget)},
            workload=features,
            io_bytes=io_per_query,
        ))
    return examples


def measure_fixed(
    *, n_rows: int, slack_kb: int, total_queries: int, repeat: int
) -> float:
    """Aggregate phase-two qps with knobs pinned at their defaults.

    The whole drifted phase (``repeat`` segments of ``total_queries``) is
    timed end to end: under a too-small budget the enforcement-walk cost
    *compounds* as the replica tree grows, so a best-of-N pick would
    flatter the fixed engine with its freshest segment.
    """
    database = build_database(n_rows=n_rows, slack_kb=slack_kb)
    prepared = database.prepare_statement(SQL)
    replay(database, prepared, phase1_bounds(512, seed=7))
    wall = 0.0
    for sweep in range(repeat):
        bounds = phase2_bounds(total_queries, seed=9 + sweep)
        started = time.perf_counter()
        replay(database, prepared, bounds)
        wall += time.perf_counter() - started
    return repeat * total_queries / wall


def measure_tuned(
    examples: list[TrainingExample],
    *,
    n_rows: int,
    slack_kb: int,
    total_queries: int,
    window: int,
    repeat: int,
) -> tuple[float, dict, float]:
    """Aggregate phase-two qps with the controller observing every query.

    Timed exactly like :func:`measure_fixed` — the whole drifted phase end
    to end — so the climb transient (drift fires, budget moves commit one
    window-trial at a time, early in the first segment) is *included* in
    the controller's cost.  Returns ``(qps, tuning_stats, budget_growth)``.
    """
    database = build_database(n_rows=n_rows, slack_kb=slack_kb)
    prepared = database.prepare_statement(SQL)
    estimator = WhatIfEstimator(["replication_storage_budget"], seed=0)
    estimator.fit(examples)
    registry = database_knobs(database)
    budget_before = registry.knobs()["replication_storage_budget"]
    controller = TuningController(
        registry, estimator,
        detector=DriftDetector(domain=DOMAIN, window=window),
        domain=DOMAIN, window=window,
        kappa=0.5, min_gain_fraction=0.01,
        regress_tolerance=0.25, cooldown_windows=1,
        # The estimator is offline-trained from the budget sweep; live
        # windows still accumulate as examples but never trigger a refit,
        # so the sweep's budget trend stays authoritative for pricing.
        refit_every=1_000_000,
    )
    replay(database, prepared, phase1_bounds(512, seed=7), observe=controller.observe)
    wall = 0.0
    for sweep in range(repeat):
        bounds = phase2_bounds(total_queries, seed=9 + sweep)
        started = time.perf_counter()
        replay(database, prepared, bounds, observe=controller.observe)
        wall += time.perf_counter() - started
    budget_after = registry.knobs()["replication_storage_budget"]
    return (
        repeat * total_queries / wall,
        controller.tuning_stats(),
        budget_after / budget_before,
    )


def measure_rank_correlation() -> float:
    """Held-out Spearman on a run_grid-family sweep (the acceptance recipe)."""
    domain = (0.0, 200_000.0)
    workloads = [
        uniform_workload(300, domain, 0.02, seed=1, name="uniform"),
        hotspot_workload(300, domain, 0.005, seed=2, name="hotspot"),
    ]
    knob_grid = [
        {"apm_m_min": m_min, "apm_m_max": mult * m_min}
        for m_min in (0.5 * KB, 1 * KB, 2 * KB, 4 * KB, 8 * KB)
        for mult in (3.0, 6.0)
    ]
    examples = simulation_sweep_examples(
        workloads, knob_grid, column_size=20_000, domain_size=200_000, seed=17,
    )
    order = np.random.default_rng(5).permutation(len(examples))
    train = [examples[i] for i in order[:14]]
    held_out = [examples[i] for i in order[14:]]
    estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"], seed=0).fit(train)
    predicted = [
        estimator.predict(example.knobs, example.workload).io_bytes
        for example in held_out
    ]
    return rank_correlation(predicted, [example.io_bytes for example in held_out])


def run_bench() -> PerfSuite:
    n_rows = env_scale("PERF_TUNING_ROWS", 100_000)
    total_queries = env_scale("PERF_TUNING_QUERIES", 3_000)
    slack_kb = env_scale("PERF_TUNING_SLACK_KB", 48)
    window = env_scale("PERF_TUNING_WINDOW", 32)
    repeat = env_scale("PERF_REPEAT", 3)

    suite = PerfSuite("segment_kernels")
    common = dict(
        n_rows=n_rows, total_queries=total_queries, slack_kb=slack_kb,
        window=window, repeat=repeat,
    )

    examples = budget_sweep_examples(n_rows=n_rows, slack_kb=slack_kb)
    print("  budget sweep (what-if training):")
    for example in examples:
        print(
            f"    budget {example.knobs['replication_storage_budget'] / KB:8,.0f} KB"
            f"  ->  {example.io_bytes:12,.0f} B/query"
        )

    fixed_qps = measure_fixed(
        n_rows=n_rows, slack_kb=slack_kb,
        total_queries=total_queries, repeat=repeat,
    )
    print(f"  fixed defaults: {fixed_qps:,.0f} qps (thrashing at the budget)")

    tuned_qps, stats, budget_growth = measure_tuned(
        examples, n_rows=n_rows, slack_kb=slack_kb,
        total_queries=total_queries, window=window, repeat=repeat,
    )
    counters = stats["counters"]
    print(
        f"  controller:     {tuned_qps:,.0f} qps "
        f"({tuned_qps / fixed_qps:.2f}x, {counters['committed']} committed "
        f"moves, {counters['rollbacks']} rollbacks, "
        f"budget grew {budget_growth:.2f}x)"
    )

    correlation = measure_rank_correlation()
    print(f"  what-if held-out rank correlation: {correlation:.3f}")

    suite.derive(
        "tuning_fixed_qps", fixed_qps, unit="qps", **common,
        note="whole drifted 4-mode phase under default knobs: the working "
             "set exceeds the replication budget, every query pays "
             "enforcement walks and eviction churn that compound as the "
             "replica tree grows",
    )
    suite.derive(
        "tuning_controller_qps", tuned_qps, unit="qps", **common,
        note="the same stream with the TuningController observing each "
             "query (climb transient included): drift fires, budget moves "
             "commit window-by-window until the working set fits",
    )
    suite.derive(
        "tuning_gain_x", tuned_qps / fixed_qps, unit="x", **common,
        committed_moves=counters["committed"],
        rollbacks=counters["rollbacks"],
        drift_events=counters["drift_events"],
        note="controller over fixed defaults, co-measured on one process "
             "(bar: >= 1.3x at the reference scale; the CI gate)",
    )
    suite.derive(
        "tuning_budget_growth_x", budget_growth, unit="x", **common,
        note="converged replication_storage_budget over the starting "
             "budget after the controller's climb",
    )
    suite.derive(
        "whatif_rank_corr", correlation, unit="x",
        note="held-out Spearman of predicted vs observed IO on a "
             "run_grid-family (workload, knob) sweep — deterministic and "
             "scale independent (bar: >= 0.8)",
    )
    return suite


def main() -> int:
    suite = run_bench()
    path = suite.merge_write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[merged into {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        gain = suite["tuning_gain_x"].value
        at_reference_scale = (
            env_scale("PERF_TUNING_ROWS", 100_000) == 100_000
            and env_scale("PERF_TUNING_QUERIES", 3_000) == 3_000
            and env_scale("PERF_TUNING_SLACK_KB", 48) == 48
            and env_scale("PERF_REPEAT", 3) == 3
        )
        if at_reference_scale:
            # Co-measured ratio (see the module docstring): no machine factor.
            assert gain >= 1.3, (
                f"self-tuning recovered only {gain:.2f}x over fixed defaults "
                f"on the drifted workload (bar: >= 1.3x)"
            )
        correlation = suite["whatif_rank_corr"].value
        # Deterministic at every scale: the sweep recipe is fixed-seed.
        assert correlation >= 0.8, (
            f"what-if held-out rank correlation {correlation:.3f} below the "
            f"0.8 acceptance bar"
        )
        print(
            f"[PERF_ASSERT ok: controller {suite['tuning_controller_qps'].value:,.0f} qps "
            f"({gain:.2f}x fixed defaults), rank corr {correlation:.3f}]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
