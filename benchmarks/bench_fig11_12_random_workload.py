"""Figures 11/12: cumulative and moving-average query time, random workload.

Expected shape (paper §6.2): the adaptive schemes pay a reorganization
overhead on the first queries but provide a better response after a few tens
of queries; by the end of the 200-query run their cumulative time is below
the non-segmented baseline.
"""

from repro.bench import experiments
from repro.bench.harness import skyserver_engine_run


def test_fig11_12_random_workload(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_11_12, rounds=1, iterations=1)
    save_result("fig11_12_random_workload", text)

    baseline = skyserver_engine_run("random", "NoSegm")
    tail_start = 3 * len(baseline.total_seconds) // 4
    for scheme in ("APM 1-25", "APM 1-5"):
        adaptive = skyserver_engine_run("random", scheme)
        # After amortisation the adaptive schemes answer queries faster.
        tail_adaptive = sum(adaptive.total_seconds[tail_start:])
        tail_baseline = sum(baseline.total_seconds[tail_start:])
        assert tail_adaptive < tail_baseline, scheme
