"""Compare a fresh ``BENCH_*.json`` report against a committed baseline.

The crash-if-slower gate of the CI bench job, also runnable locally::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py
    PYTHONPATH=src python benchmarks/compare_bench.py \
        --baseline /tmp/bench_baseline.json --current BENCH_segment_kernels.json \
        --metric engine_per_query_warm --max-ratio 2.0

For every ``--metric NAME [--max-ratio X]`` pair the gate fails (exit 1) when
the current run is more than X times *worse* than the committed report.  The
direction is unit-aware: for seconds-unit metrics worse means slower
(``current / baseline > X``); for rate and ratio units (``qps``, ``x``)
higher is better, so the gate inverts (``baseline / current > X`` — e.g. a
throughput metric fails when it drops below 1/X of the baseline).  Metrics
present in both reports are always printed for context; metrics measured for
the first time (current only) are printed marked ``(new)``.  A gated metric
missing from the *baseline* is a warning, not a failure (the metric was
introduced after the baseline was committed) — likewise one missing from
*both* reports (a first-run metric whose bench has not produced a baseline
yet).  Missing from the *current* report while the baseline has it is a
failure (the suite stopped measuring something it gates on).

``--min-fraction METRIC:REFERENCE:MIN`` adds an *intra-report* gate: within
the current report alone, ``METRIC`` must be at least ``MIN`` times
``REFERENCE`` — e.g. ``--min-fraction
degraded_throughput_qps:router_throughput_qps:0.5`` fails when a 3-of-4
degraded fleet retains less than half the full fleet's throughput.  Both
metrics co-measured in one run, so the gate carries no machine factor.
Either metric missing from the current report is a warning (the gate arms
itself once the bench measures both), not a failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.perf_tracking import compare_to_baseline, load_report  # noqa: E402

DEFAULT_REPORT = REPO_ROOT / "BENCH_segment_kernels.json"
DEFAULT_METRIC = "engine_per_query_warm"
DEFAULT_MAX_RATIO = 2.0

#: Units where a larger value is *better* — the gate ratio inverts for these.
HIGHER_IS_BETTER_UNITS = {"qps", "x"}


def _values_by_name(report: dict) -> dict[str, dict]:
    return {record["name"]: record for record in report.get("results", [])}


def _render(value: float, unit: str) -> str:
    if unit == "s":
        return f"{value * 1e6:.1f} µs"
    return f"{value:.1f} {unit}"


def check(
    baseline: dict,
    current: dict,
    gates: list[tuple[str, float]],
) -> tuple[list[str], list[str]]:
    """Evaluate the gates; returns ``(failures, warnings)``."""
    baseline_records = _values_by_name(baseline)
    current_records = _values_by_name(current)
    failures: list[str] = []
    warnings: list[str] = []
    for metric, max_ratio in gates:
        if metric not in current_records:
            if metric not in baseline_records:
                # A first-run metric: gated in CI before its bench has ever
                # written a baseline (or run at all).  Skip, don't fail —
                # the gate arms itself once the baseline is committed.
                warnings.append(
                    f"{metric}: in neither report yet (skipping the gate)"
                )
            else:
                failures.append(f"{metric}: missing from the current report")
            continue
        if metric not in baseline_records:
            warnings.append(f"{metric}: not in the baseline yet (skipping the gate)")
            continue
        baseline_value = baseline_records[metric]["value"]
        if not baseline_value:
            warnings.append(f"{metric}: baseline value is zero (skipping the gate)")
            continue
        current_value = current_records[metric]["value"]
        unit = current_records[metric].get("unit", "s")
        if unit in HIGHER_IS_BETTER_UNITS:
            # Rates and ratios: regression means the value *dropped*.
            if not current_value:
                failures.append(f"{metric}: current value is zero")
                continue
            ratio = baseline_value / current_value
        else:
            ratio = current_value / baseline_value
        if ratio > max_ratio:
            failures.append(
                f"{metric}: {ratio:.2f}x worse than the committed baseline "
                f"(limit {max_ratio:.2f}x; "
                f"{_render(baseline_value, unit)} -> "
                f"{_render(current_value, unit)})"
            )
    return failures, warnings


def check_fractions(
    current: dict,
    fractions: list[tuple[str, str, float]],
) -> tuple[list[str], list[str]]:
    """Evaluate intra-report min-fraction gates; returns ``(failures, warnings)``."""
    records = _values_by_name(current)
    failures: list[str] = []
    warnings: list[str] = []
    for metric, reference, minimum in fractions:
        missing = [name for name in (metric, reference) if name not in records]
        if missing:
            warnings.append(
                f"{', '.join(missing)}: not in the current report "
                f"(skipping the {metric} >= {minimum:g} * {reference} gate)"
            )
            continue
        reference_value = records[reference]["value"]
        if not reference_value:
            warnings.append(f"{reference}: value is zero (skipping the gate)")
            continue
        fraction = records[metric]["value"] / reference_value
        if fraction < minimum:
            unit = records[metric].get("unit", "")
            failures.append(
                f"{metric}: {fraction:.2f} of {reference} "
                f"(minimum {minimum:g}; "
                f"{_render(records[metric]['value'], unit)} vs "
                f"{_render(reference_value, unit)})"
            )
    return failures, warnings


def _parse_fraction(spec: str) -> tuple[str, str, float]:
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected METRIC:REFERENCE:MIN, got {spec!r}"
        )
    try:
        minimum = float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"minimum fraction must be a number, got {parts[2]!r}"
        ) from None
    return parts[0], parts[1], minimum


def format_table(baseline: dict, current: dict) -> str:
    """All shared timing metrics as ``name ratio`` lines (ratio >1 = slower).

    Metrics measured for the first time (present only in the current report)
    are listed too, marked ``(new)`` — they have no ratio yet.
    """
    ratios = compare_to_baseline(current, baseline)
    baseline_names = {record["name"] for record in baseline.get("results", [])}
    units = {record["name"]: record.get("unit", "") for record in current.get("results", [])}
    fresh = [
        record
        for record in current.get("results", [])
        if record["name"] not in baseline_names
    ]
    lines = ["== current / baseline =="]
    names = list(ratios) + [record["name"] for record in fresh]
    width = max((len(name) for name in names), default=4)
    for name, ratio in sorted(ratios.items()):
        marker = "" if units.get(name) != "s" else ("  <-- slower" if ratio > 1.25 else "")
        lines.append(f"  {name:<{width}s} {ratio:8.3f}x{marker}")
    for record in sorted(fresh, key=lambda record: record["name"]):
        rendered = _render(record["value"], record.get("unit", "s"))
        lines.append(f"  {record['name']:<{width}s} {rendered:>9s}  (new)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed BENCH_*.json to compare against")
    parser.add_argument("--current", type=Path, default=DEFAULT_REPORT,
                        help=f"freshly written report (default: {DEFAULT_REPORT.name})")
    parser.add_argument("--metric", action="append", default=None,
                        help=f"metric name to gate on (default: {DEFAULT_METRIC})")
    parser.add_argument("--max-ratio", type=float, action="append", default=None,
                        help="failure threshold for the corresponding --metric "
                             f"(default: {DEFAULT_MAX_RATIO})")
    parser.add_argument("--min-fraction", type=_parse_fraction, action="append",
                        default=None, metavar="METRIC:REFERENCE:MIN",
                        help="intra-report gate: METRIC must be >= MIN * "
                             "REFERENCE within the current report (e.g. "
                             "degraded_throughput_qps:router_throughput_qps:0.5)")
    args = parser.parse_args(argv)

    metrics = args.metric if args.metric else [DEFAULT_METRIC]
    ratios = list(args.max_ratio or [])
    if len(ratios) < len(metrics):
        ratios.extend([DEFAULT_MAX_RATIO] * (len(metrics) - len(ratios)))
    gates = list(zip(metrics, ratios))

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    print(format_table(baseline, current))
    failures, warnings = check(baseline, current, gates)
    fractions = list(args.min_fraction or [])
    fraction_failures, fraction_warnings = check_fractions(current, fractions)
    failures.extend(fraction_failures)
    warnings.extend(fraction_warnings)
    for message in warnings:
        print(f"[warn] {message}")
    if failures:
        for message in failures:
            print(f"[FAIL] {message}")
        return 1
    gated = ", ".join(f"{metric} <= {ratio:g}x" for metric, ratio in gates)
    if fractions:
        gated += ", " + ", ".join(
            f"{metric} >= {minimum:g} * {reference}"
            for metric, reference, minimum in fractions
        )
    print(f"[ok] perf gate passed ({gated})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
