"""Figures 15/16: cumulative and moving-average query time, changing workload.

Expected shape (paper §6.2): whenever the point of query interest shifts (four
phases of 50 queries), previously untouched segments get reorganized, causing
a temporary increase of the adaptation overhead that evens out soon after.
"""

import numpy as np

from repro.bench import experiments
from repro.bench.harness import skyserver_engine_run


def test_fig15_16_changing_workload(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_15_16, rounds=1, iterations=1)
    save_result("fig15_16_changing_workload", text)

    run = skyserver_engine_run("changing", "APM 1-25")
    adaptation = np.asarray(run.adaptation_seconds)
    queries_per_phase = max(len(adaptation) // 4, 1)
    # Each phase shift triggers fresh reorganization: the first queries of a
    # phase carry more adaptation work than the last queries of that phase.
    for phase in range(2):
        start = phase * queries_per_phase
        head = adaptation[start : start + max(queries_per_phase // 4, 1)].sum()
        tail = adaptation[start + 3 * queries_per_phase // 4 : start + queries_per_phase].sum()
        assert head >= tail
