"""Server throughput under concurrent clients: admission waves vs per-query.

Starts a real :class:`~repro.server.ReproServer` on a loopback socket, drives
it with N async client connections, and measures what the batch admission
controller turns that concurrency into.  Three sweeps:

* **Throughput** — every client keeps ``PERF_SERVER_DEPTH`` EXECUTEMANY
  requests of ``PERF_SERVER_CHUNK`` bindings in flight; each binding is
  admitted separately, so bindings batch with *other* connections' queries
  into shared waves.  Yields ``batch_throughput_qps``, the figure the CI gate
  watches (the in-process engine-side twin is ``engine_batch_throughput_qps``
  from ``bench_perf_suite.py``).
* **Latency** — the same fleet issuing one EXECUTE frame per query; yields
  ``server_latency_p50`` / ``server_latency_p99``, the round trip a client
  observes under saturation (admission window, wave queueing, execution and
  wire included — with C queries in flight, Little's law puts the mean at
  C / throughput).
* **Per-query reference** — ``server_per_query_reference``: one client, one
  query at a time, admission window 0, against the same engine.  Every query
  is then its own wave: the full prepared path plus one wire round trip, with
  nothing amortized.  This is the path a conventional one-request-per-query
  server would take, and the denominator of ``speedup_server_vs_prepared`` —
  a co-measured, host-speed-independent ratio (both sides move together on a
  slow host), so the PERF_ASSERT bar (>= 5x at the reference scale) needs no
  machine factor.  ``server_inprocess_prepared_per_query`` (the same workload
  on the in-process prepared path, no server) is recorded for context.

Everything — clients, server, engine — shares one process; on a single-core
host the throughput figure is therefore a *lower* bound (client-side frame
work steals server cycles).

Scales with the environment (CI runs reduced)::

    PERF_SERVER_ROWS       rows in the table             (default 100 000)
    PERF_SERVER_CLIENTS    concurrent client connections (default 16)
    PERF_SERVER_DEPTH      in-flight requests per client (default 8)
    PERF_SERVER_CHUNK      bindings per EXECUTEMANY      (default 16)
    PERF_SERVER_QUERIES    total queries per sweep       (default 4096)
    PERF_SERVER_WINDOW_US  admission window              (default 200)
    PERF_REPEAT            timing sweeps                 (default 3)

The records are **merged** into ``BENCH_segment_kernels.json`` (run
``bench_perf_suite.py`` first to refresh the rest of the report)::

    PYTHONPATH=src python benchmarks/bench_server_throughput.py
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.aio import connect  # noqa: E402
from repro.bench.perf_tracking import PerfSuite, env_scale  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.server import ReproServer  # noqa: E402
from repro.util.units import KB  # noqa: E402

REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"

#: Range width in degrees — narrow, so each result ships ~10 rows and the
#: measurement weighs admission + execution, not JSON tonnage.
RANGE_WIDTH = 0.036


def build_database(n_rows: int) -> Database:
    rng = np.random.default_rng(29)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(0.0, 360.0, size=n_rows),
        },
    )
    database.enable_adaptive("p", "ra", strategy="segmentation", model="apm",
                             m_min=8 * KB, m_max=32 * KB)
    return database


def workload_bounds(count: int, seed: int = 51) -> list[tuple[float, float]]:
    rng = np.random.default_rng(seed)
    return [
        (low, low + RANGE_WIDTH)
        for low in (float(rng.uniform(0.0, 360.0 - RANGE_WIDTH)) for _ in range(count))
    ]


def _shares(items: list, count: int) -> list[list]:
    shares = [items[i::count] for i in range(count)]
    return [share for share in shares if share]


async def throughput_sweep(
    address: tuple[str, int],
    *,
    clients: int,
    depth: int,
    chunk: int,
    total_queries: int,
) -> float:
    """Wall seconds to answer ``total_queries`` via pipelined EXECUTEMANY."""
    connections = [await connect(*address) for _ in range(clients)]
    statements = [await connection.prepare(SQL) for connection in connections]
    bounds = workload_bounds(total_queries)

    async def worker(statement, share: list[tuple[float, float]]) -> None:
        for start in range(0, len(share), chunk):
            await statement.executemany(share[start:start + chunk])

    started = time.perf_counter()
    await asyncio.gather(
        *(
            worker(statements[i], worker_share)
            # `depth` workers per connection, so that many chunks stay in
            # flight per client, pipelined over one socket.
            for i, client_share in enumerate(_shares(bounds, clients))
            for worker_share in _shares(client_share, depth)
        )
    )
    wall = time.perf_counter() - started
    for connection in connections:
        await connection.close()
    return wall


async def latency_sweep(
    address: tuple[str, int],
    *,
    clients: int,
    depth: int,
    total_queries: int,
) -> list[float]:
    """Per-query round-trip seconds with one EXECUTE frame per query."""
    connections = [await connect(*address) for _ in range(clients)]
    statements = [await connection.prepare(SQL) for connection in connections]
    bounds = workload_bounds(total_queries, seed=52)
    latencies: list[float] = []

    async def worker(statement, share: list[tuple[float, float]]) -> None:
        for low, high in share:
            started = time.perf_counter()
            await statement.execute((low, high))
            latencies.append(time.perf_counter() - started)

    await asyncio.gather(
        *(
            worker(statements[i], worker_share)
            for i, client_share in enumerate(_shares(bounds, clients))
            for worker_share in _shares(client_share, depth)
        )
    )
    for connection in connections:
        await connection.close()
    return latencies


async def per_query_reference(database: Database, total_queries: int) -> float:
    """Sequential per-query seconds through a window-0 server (waves of one)."""
    async with ReproServer(database, port=0, batch_window_us=0.0) as server:
        assert server.address is not None
        connection = await connect(*server.address)
        statement = await connection.prepare(SQL)
        bounds = workload_bounds(total_queries, seed=53)
        for low, high in bounds[: min(64, total_queries)]:  # warm the path
            await statement.execute((low, high))
        started = time.perf_counter()
        for low, high in bounds:
            await statement.execute((low, high))
        elapsed = time.perf_counter() - started
        await connection.close()
    return elapsed / len(bounds)


def inprocess_reference(database: Database, total_queries: int) -> float:
    """Sequential per-query seconds of the in-process prepared path."""
    prepared = database.prepare_statement(SQL)
    bounds = workload_bounds(total_queries, seed=53)
    for low, high in bounds[: min(64, total_queries)]:
        database.execute_prepared(prepared, (low, high))
    started = time.perf_counter()
    for low, high in bounds:
        database.execute_prepared(prepared, (low, high))
    return (time.perf_counter() - started) / len(bounds)


async def run_bench() -> PerfSuite:
    n_rows = env_scale("PERF_SERVER_ROWS", 100_000)
    clients = env_scale("PERF_SERVER_CLIENTS", 16)
    depth = env_scale("PERF_SERVER_DEPTH", 8)
    chunk = env_scale("PERF_SERVER_CHUNK", 16)
    total_queries = env_scale("PERF_SERVER_QUERIES", 4096)
    window_us = env_scale("PERF_SERVER_WINDOW_US", 200)
    repeat = env_scale("PERF_REPEAT", 3)

    suite = PerfSuite("segment_kernels")
    database = build_database(n_rows)
    inflight = clients * depth * chunk
    server = ReproServer(
        database,
        port=0,
        batch_window_us=float(window_us),
        # Cap waves at half the steady-state inflight: the queue stays over
        # the cap under load, so waves run back-to-back (no window idling).
        max_wave=max(16, min(1024, inflight // 2)),
        max_inflight=max(1024, inflight * 4),
    )
    async with server:
        assert server.address is not None
        # Warm-up: first contact pays the adaptation burst and cold caches.
        await throughput_sweep(
            server.address, clients=clients, depth=depth, chunk=chunk,
            total_queries=min(total_queries, 512),
        )
        best_wall = float("inf")
        for _ in range(repeat):
            wall = await throughput_sweep(
                server.address, clients=clients, depth=depth, chunk=chunk,
                total_queries=total_queries,
            )
            best_wall = min(best_wall, wall)
        latencies = np.sort(
            np.asarray(
                await latency_sweep(
                    server.address, clients=clients, depth=depth,
                    total_queries=min(total_queries, 2048),
                )
            )
        )
        admission = server.admission.stats

    reference = await per_query_reference(database, min(total_queries, 1024))
    inprocess = inprocess_reference(database, min(total_queries, 2048))

    suite.derive(
        "batch_throughput_qps", total_queries / best_wall, unit="qps",
        rows=n_rows, queries=total_queries,
        clients=clients, depth=depth, chunk=chunk, window_us=window_us,
        mean_wave=round(admission.wave_members / admission.waves, 1)
        if admission.waves else 0.0,
        note="server-mediated: N async clients -> admission waves -> one engine",
    )
    suite.derive(
        "server_latency_p50",
        float(latencies[int(0.50 * (latencies.size - 1))]), unit="s",
        clients=clients, depth=depth,
        note="per-EXECUTE round trip under saturation (depth x clients in flight)",
    )
    suite.derive(
        "server_latency_p99",
        float(latencies[int(0.99 * (latencies.size - 1))]), unit="s",
        clients=clients, depth=depth,
        note="round-trip as a client sees it: admission window + wave queueing "
             "+ execution + wire",
    )
    suite.derive(
        "server_per_query_reference", reference, unit="s",
        rows=n_rows,
        note="one client, one query at a time, window 0: the unamortized "
             "per-query server path (the 1x yardstick)",
    )
    suite.derive(
        "server_inprocess_prepared_per_query", inprocess, unit="s",
        rows=n_rows,
        note="co-measured sequential in-process prepared path (context)",
    )
    suite.derive(
        "speedup_server_vs_prepared",
        (total_queries / best_wall) * reference,
        note="server-mediated throughput vs the per-query prepared path through "
             "the same server; host-speed independent (both sides co-measured; "
             "bar: >= 5x at the reference scale)",
    )
    return suite


def main() -> int:
    suite = asyncio.run(run_bench())
    path = suite.merge_write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[merged into {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        speedup = suite["speedup_server_vs_prepared"].value
        at_reference_scale = (
            env_scale("PERF_SERVER_ROWS", 100_000) == 100_000
            and env_scale("PERF_SERVER_CLIENTS", 16) >= 16
            and env_scale("PERF_SERVER_QUERIES", 4096) == 4096
        )
        if at_reference_scale:
            # The ratio is host-speed independent (see the module docstring),
            # so the bar needs no machine factor.
            assert speedup >= 5.0, (
                f"server-mediated throughput only {speedup:.1f}x the per-query "
                f"server path (bar: >= 5x)"
            )
        p99 = suite["server_latency_p99"].value
        print(
            f"[PERF_ASSERT ok: server {suite['batch_throughput_qps'].value:,.0f} qps "
            f"({speedup:.1f}x per-query), p99 {p99 * 1e3:.2f} ms]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
