"""Table 1: average read sizes in KB per query over the whole run.

Expected shape (paper §6.1.2): with selectivity 0.1 all strategies converge to
roughly the selection size (~40 KB on the paper's column), replication sitting
slightly above segmentation; with selectivity 0.01 the APM strategies converge
to the segment-size floor set by Mmax rather than the 4 KB selection size, and
GD keeps larger segments under a uniform 0.01 workload.
"""

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_table1_average_read_sizes(benchmark, save_result):
    text = benchmark.pedantic(experiments.table_1, rounds=1, iterations=1)
    save_result("table1_avg_reads", text)

    uniform_01 = simulation_grid("uniform", 0.1)
    column_kb = uniform_01["APM Segm"].column_bytes / 1024.0
    selection_kb = 0.1 * column_kb
    for label, result in uniform_01.items():
        average = result.average_read_kb()
        # Converges towards the selection size, far below a full scan.
        assert average < 0.5 * column_kb, label
        assert average > 0.5 * selection_kb, label

    uniform_001 = simulation_grid("uniform", 0.01)
    # APM cannot go below its Mmax-bounded segment size; GD stays coarser.
    assert uniform_001["APM Segm"].average_read_kb() < uniform_001["GD Segm"].average_read_kb()
