"""Figure 9: replica-tree storage over the whole run (Zipf).

Expected shape (paper §6.1.3): the same storage decay as under a uniform load
happens, but much later — skewed queries take thousands of queries to touch
(and thereby replicate) all areas of the attribute domain — and GD releases
storage faster than APM.
"""

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_fig09_replica_storage_zipf(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_9, rounds=1, iterations=1)
    save_result("fig09_replica_storage_zipf", text)

    uniform = simulation_grid("uniform", 0.1)
    zipf = simulation_grid("zipf", 0.1)
    column_bytes = zipf["APM Repl"].column_bytes

    def queries_until_shrunk(storage: list[float], threshold: float) -> int:
        for index, value in enumerate(storage):
            if value <= threshold:
                return index
        return len(storage)

    threshold = 1.15 * column_bytes
    for label in ("GD Repl", "APM Repl"):
        uniform_settle = queries_until_shrunk(uniform[label].storage_series(), threshold)
        zipf_settle = queries_until_shrunk(zipf[label].storage_series(), threshold)
        # The skewed workload needs (much) longer to replicate the whole domain.
        assert zipf_settle >= uniform_settle, label
