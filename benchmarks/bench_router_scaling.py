"""Divergent multi-replica scaling: workload-clustered replicas vs one engine.

Drives the same interleaved multi-modal workload through the
:class:`~repro.cluster.Router` at fleet sizes N=1, 2 and 4 and measures
engine-side routed-wave throughput.  The replicas are *replication*-strategy
columns under a storage budget sized so the experiment captures the whole
point of the subsystem:

* One engine serving four interleaved query modes must keep four replica
  working sets alive at once.  That exceeds the budget, so every query pays
  :meth:`ReplicatedColumn._enforce_budget` — a full replica-tree walk plus an
  LRU sort — and the next query on an evicted mode pays cover backtracking
  and rematerialization.  The engine thrashes at the budget boundary.
* After :meth:`Router.retune` clusters the workload and assigns each mode to
  its own replica, every replica holds *one* mode's working set — under
  budget, no enforcement walks, no eviction churn, small trees.

The speedup is therefore **divergent specialization**, not thread
parallelism: all replicas share one Python process (and on a single-core
host, one core), yet N=4 answers the same queries more than twice as fast
because each query simply does less work.  ``router_scaling_x`` is
co-measured (N=1 and N=4 run the identical routed-wave path in the same
process), so the ratio is host-speed independent and the PERF_ASSERT bar
needs no machine factor.

Metrics merged into ``BENCH_segment_kernels.json``:

* ``router_throughput_qps``   — routed-wave throughput at N=4 (the CI gate)
* ``router_single_replica_qps`` — the same path at N=1 (the 1x yardstick)
* ``router_scaling_x``        — N=4 over N=1 (bar: >= 2x at reference scale)
* ``router_retune_cost_drop_x`` — modeled scan bytes before/after retune
* ``degraded_throughput_qps`` — N=4 with one replica quarantined (failover
  re-routes its clusters to the best surviving sibling; CI gates this at
  >= 50% of ``router_throughput_qps`` via ``compare_bench.py
  --min-fraction``)

Scales with the environment (CI runs reduced)::

    PERF_ROUTER_ROWS      rows in the table               (default 100 000)
    PERF_ROUTER_QUERIES   timed queries per fleet size    (default 2 000)
    PERF_ROUTER_CHUNK     queries per routed wave         (default 32)
    PERF_ROUTER_SLACK_KB  budget headroom over the column (default 48)
    PERF_REPEAT           timing sweeps                   (default 3)

Run after ``bench_perf_suite.py`` (the records merge into its report)::

    PYTHONPATH=src python benchmarks/bench_router_scaling.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.perf_tracking import PerfSuite, env_scale  # noqa: E402
from repro.cluster import Router  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.util.units import KB  # noqa: E402
from repro.workloads import multimodal_workload  # noqa: E402

REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
DOMAIN = (0.0, 360.0)
N_MODES = 4
SELECTIVITY = 0.002


def build_router(
    n_replicas: int, *, n_rows: int, slack_kb: int
) -> Router:
    """A fresh fleet over one replication column squeezed by a storage budget.

    The budget is the column itself plus ``slack_kb`` of replica headroom —
    at the reference scale enough for roughly one mode's working set, well
    short of all four.
    """
    rng = np.random.default_rng(29)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(*DOMAIN, size=n_rows),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy="replication", model="apm",
        m_min=1 * KB, m_max=4 * KB,
        storage_budget=n_rows * 8 + slack_kb * KB,
    )
    return Router(database, n_replicas, n_clusters=N_MODES, seed=0)


def workload_bounds(count: int, seed: int) -> list[tuple[float, float]]:
    workload = multimodal_workload(
        count, DOMAIN, SELECTIVITY, n_modes=N_MODES, interleave=True, seed=seed
    )
    return [(query.low, query.high) for query in workload.queries]


def run_routed(router: Router, prepared, bounds, *, chunk: int) -> None:
    """Route every query, dispatch per-replica waves, wait for the fleet."""
    buckets: list[list] = [[] for _ in range(router.n_replicas)]
    futures = []
    for low, high in bounds:
        index = router.route(prepared, (low, high))
        buckets[index].append((prepared, (low, high)))
        if len(buckets[index]) >= chunk:
            wave, buckets[index] = buckets[index], []
            futures.append(
                router.replicas[index].submit(router.execute_wave_on, index, wave)
            )
    for index, wave in enumerate(buckets):
        if wave:
            futures.append(
                router.replicas[index].submit(router.execute_wave_on, index, wave)
            )
    for future in futures:
        future.result()


def measure_fleet(
    n_replicas: int,
    *,
    n_rows: int,
    slack_kb: int,
    total_queries: int,
    chunk: int,
    repeat: int,
    degrade: bool = False,
) -> tuple[float, dict | None, float | None]:
    """Best routed qps at this fleet size (plus the retune report for N>1).

    With ``degrade=True`` the fleet is re-measured after quarantining one
    replica (the degraded-mode throughput the CI min-fraction gate rides on).
    """
    router = build_router(n_replicas, n_rows=n_rows, slack_kb=slack_kb)
    retune_report = None
    try:
        prepared = router.prepare_statement(SQL)
        # Warm-up: adaptation burst, plan caches, thread pools.
        run_routed(router, prepared, workload_bounds(512, seed=7), chunk=chunk)
        if n_replicas > 1:
            # Cluster the observed workload and give each mode a home; a
            # short settle run lets the now-specialized trees re-adapt.
            retune_report = router.retune()
            run_routed(router, prepared, workload_bounds(256, seed=8), chunk=chunk)
        best_wall = float("inf")
        for sweep in range(repeat):
            bounds = workload_bounds(total_queries, seed=9 + sweep)
            started = time.perf_counter()
            run_routed(router, prepared, bounds, chunk=chunk)
            best_wall = min(best_wall, time.perf_counter() - started)
        degraded_qps = None
        if degrade and n_replicas > 1:
            # Graceful degradation: quarantine one replica (the failure
            # detector's public transition — its clusters fail over to the
            # best surviving sibling) and re-measure the same workload on
            # the N-1 survivors.
            assert router.quarantine_replica(n_replicas - 1)
            run_routed(router, prepared, workload_bounds(256, seed=8), chunk=chunk)
            degraded_wall = float("inf")
            for sweep in range(repeat):
                bounds = workload_bounds(total_queries, seed=9 + sweep)
                started = time.perf_counter()
                run_routed(router, prepared, bounds, chunk=chunk)
                degraded_wall = min(degraded_wall, time.perf_counter() - started)
            degraded_qps = total_queries / degraded_wall
        return total_queries / best_wall, retune_report, degraded_qps
    finally:
        router.close()


def run_bench() -> PerfSuite:
    n_rows = env_scale("PERF_ROUTER_ROWS", 100_000)
    total_queries = env_scale("PERF_ROUTER_QUERIES", 2_000)
    chunk = env_scale("PERF_ROUTER_CHUNK", 32)
    slack_kb = env_scale("PERF_ROUTER_SLACK_KB", 48)
    repeat = env_scale("PERF_REPEAT", 3)

    suite = PerfSuite("segment_kernels")
    common = dict(
        n_rows=n_rows, total_queries=total_queries, chunk=chunk,
        slack_kb=slack_kb, repeat=repeat,
    )

    qps = {}
    retune_report = None
    degraded_qps = None
    for n_replicas in (1, 2, 4):
        qps[n_replicas], report, degraded = measure_fleet(
            n_replicas, n_rows=n_rows, slack_kb=slack_kb,
            total_queries=total_queries, chunk=chunk, repeat=repeat,
            degrade=n_replicas == 4,
        )
        if n_replicas == 4:
            retune_report = report
            degraded_qps = degraded
        print(
            f"  N={n_replicas}: {qps[n_replicas]:,.0f} qps"
            + (f"  ({qps[n_replicas] / qps[1]:.2f}x)" if n_replicas > 1 else "")
        )
    if degraded_qps is not None:
        print(
            f"  N=4 degraded (1 quarantined): {degraded_qps:,.0f} qps "
            f"({degraded_qps / qps[4]:.2f} of full fleet)"
        )

    suite.derive(
        "router_single_replica_qps", qps[1], unit="qps", **common,
        note="routed waves, one replica: the whole multi-modal workload "
             "thrashes one storage budget (the 1x yardstick)",
    )
    suite.derive(
        "router_throughput_qps", qps[4], unit="qps", **common,
        note="routed waves, four workload-clustered replicas after retune(): "
             "each mode's working set fits its replica's budget",
    )
    suite.derive(
        "router_scaling_2x", qps[2] / qps[1], unit="x", **common,
        note="N=2 over N=1, co-measured (context for the scaling curve)",
    )
    suite.derive(
        "router_scaling_x", qps[4] / qps[1], unit="x", **common,
        note="N=4 over N=1, co-measured on one process/core: the gain is "
             "divergent specialization, not parallelism (bar: >= 2x at the "
             "reference scale)",
    )
    if degraded_qps is not None:
        suite.derive(
            "degraded_throughput_qps", degraded_qps, unit="qps", **common,
            note="routed waves at N=4 with one replica quarantined: failover "
                 "re-routes its clusters to the surviving siblings (gate: "
                 ">= 50% of router_throughput_qps)",
        )
        suite.derive(
            "degraded_retention_x", degraded_qps / qps[4], unit="x", **common,
            note="degraded over full-fleet throughput, co-measured (the "
                 "graceful-degradation floor)",
        )
    if retune_report and retune_report.get("initial_cost_bytes"):
        suite.derive(
            "router_retune_cost_drop_x",
            retune_report["initial_cost_bytes"]
            / max(retune_report["final_cost_bytes"], 1.0),
            unit="x",
            improved=bool(retune_report["improved"]),
            note="modeled scan bytes across the fleet before vs after "
                 "Router.retune() at N=4",
        )
    return suite


def main() -> int:
    suite = run_bench()
    path = suite.merge_write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[merged into {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        scaling = suite["router_scaling_x"].value
        at_reference_scale = (
            env_scale("PERF_ROUTER_ROWS", 100_000) == 100_000
            and env_scale("PERF_ROUTER_QUERIES", 2_000) == 2_000
            and env_scale("PERF_ROUTER_SLACK_KB", 48) == 48
        )
        if at_reference_scale:
            # Co-measured ratio (see the module docstring): no machine factor.
            assert scaling >= 2.0, (
                f"4 workload-clustered replicas only {scaling:.2f}x one engine "
                f"on the multi-modal workload (bar: >= 2x)"
            )
        drop = suite["router_retune_cost_drop_x"].value
        assert drop > 1.0, (
            f"Router.retune() did not lower the modeled fleet cost "
            f"({drop:.2f}x)"
        )
        retention = suite["degraded_retention_x"].value
        # Co-measured like the scaling ratio: no machine factor needed.
        assert retention >= 0.5, (
            f"a 3-of-4 degraded fleet retains only {retention:.2f} of full "
            f"throughput (bar: >= 0.5)"
        )
        print(
            f"[PERF_ASSERT ok: N=4 {suite['router_throughput_qps'].value:,.0f} qps "
            f"({scaling:.2f}x one replica), retune cost drop {drop:.1f}x]"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
