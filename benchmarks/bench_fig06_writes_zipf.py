"""Figure 6: cumulative memory writes due to segment materialization (Zipf).

Expected shape (paper §6.1.1): replication again writes less than
segmentation; compared with the uniform workload, reorganization keeps being
triggered much longer because skewed queries hit previously untouched areas
of the domain late in the run.
"""

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_fig06_cumulative_writes_zipf(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_6, rounds=1, iterations=1)
    save_result("fig06_writes_zipf", text)

    for selectivity in (0.1, 0.01):
        grid = simulation_grid("zipf", selectivity)
        segmentation_writes = grid["APM Segm"].summary().total_writes_bytes
        replication_writes = grid["APM Repl"].summary().total_writes_bytes
        assert replication_writes < segmentation_writes
