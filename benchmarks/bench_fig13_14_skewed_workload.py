"""Figures 13/14: cumulative and moving-average query time, skewed workload.

Expected shape (paper §6.2): the APM schemes have an even smaller total
overhead than under the random workload because reorganization is confined to
a very limited area of the domain, while Gaussian Dice hits its worst case —
near-identical skewed queries chop very small segments.
"""

from repro.bench import experiments
from repro.bench.harness import skyserver_engine_run


def test_fig13_14_skewed_workload(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_13_14, rounds=1, iterations=1)
    save_result("fig13_14_skewed_workload", text)

    baseline = skyserver_engine_run("skewed", "NoSegm")
    tail_start = 3 * len(baseline.total_seconds) // 4
    for scheme in ("APM 1-25", "APM 1-5"):
        adaptive = skyserver_engine_run("skewed", scheme)
        tail_adaptive = sum(adaptive.total_seconds[tail_start:])
        tail_baseline = sum(baseline.total_seconds[tail_start:])
        assert tail_adaptive < tail_baseline, scheme

    # APM adapts less under skew than under the random workload (less of the
    # domain ever needs reorganizing).
    random_apm = skyserver_engine_run("random", "APM 1-25")
    skewed_apm = skyserver_engine_run("skewed", "APM 1-25")
    assert sum(skewed_apm.adaptation_seconds) <= sum(random_apm.adaptation_seconds) * 1.5
