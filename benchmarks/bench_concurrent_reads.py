"""Concurrent snapshot reads: wave fan-out vs the fully serialized path.

The scenario reuses the self-tuning bench's pressure cooker: a replication
column squeezed by a storage budget sized for one query mode, hit by an
interleaved multi-mode stream whose working set exceeds the budget.  On
the serialized path every wave member runs the conventional ``select()``
— cover analysis, materialization decisions, budget-enforcement walks and
eviction churn, per query.  With ``execute_wave(..., readers=N)`` the same
members are answered against a pinned :class:`CoverSnapshot`: zero-lock
range probes plus gathers, with the drained observations absorbed once
per wave on the owner thread.

That composition is what ``concurrent_read_scaling_x`` measures, stated
honestly: the gain combines (a) taking adaptation out of the read path —
which dominates on a single-core host — and (b) overlapping the numpy
probe/gather kernels, which release the GIL, across reader threads on
multi-core hosts.  Both effects are exactly what the snapshot design
buys; neither is available to the serialized engine.  The ratio is
co-measured (same process, identically built and warmed engines, same
bound stream), so the bar needs no machine factor.

``snapshot_pin_overhead_x`` guards the other side of the trade: on a
warmed *segmentation* column (stable layout, single thread) the snapshot
path — pin, probe, gather, absorb — must not cost more than 1.1x the
conventional prepared path for the same bound select.

Metrics merged into ``BENCH_segment_kernels.json``:

* ``concurrent_serialized_qps``  — serialized waves, budget-squeezed replication
* ``concurrent_readers_qps``     — same waves with the 4-reader snapshot fan-out
* ``concurrent_read_scaling_x``  — readers over serialized (bar: >= 1.3x at
  the reference scale; the CI gate)
* ``snapshot_pin_overhead_x``    — snapshot path over prepared path,
  single-threaded segmentation (bar: <= 1.1x at the reference scale)

Scales with the environment (CI runs reduced)::

    PERF_CONC_ROWS      rows in the table            (default 100 000)
    PERF_CONC_QUERIES   timed queries per sweep      (default 2 048)
    PERF_CONC_WAVE      members per admission wave   (default 64)
    PERF_CONC_READERS   snapshot reader threads      (default 4)
    PERF_CONC_SLACK_KB  budget headroom over column  (default 48)
    PERF_REPEAT         timing sweeps                (default 3)

Run after ``bench_perf_suite.py`` (the records merge into its report)::

    PYTHONPATH=src python benchmarks/bench_concurrent_reads.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.perf_tracking import PerfSuite, env_scale  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.util.units import KB  # noqa: E402
from repro.workloads import multimodal_workload  # noqa: E402

REPORT_PATH = REPO_ROOT / "BENCH_segment_kernels.json"

SQL = "SELECT objid FROM p WHERE ra BETWEEN ? AND ?"
DOMAIN = (0.0, 360.0)
N_MODES = 4
SELECTIVITY = 0.002


def build_replication_database(*, n_rows: int, slack_kb: int) -> Database:
    """A replication column under a budget sized for one mode's working set."""
    rng = np.random.default_rng(29)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(*DOMAIN, size=n_rows),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy="replication", model="apm",
        m_min=1 * KB, m_max=4 * KB,
        storage_budget=n_rows * 8 + slack_kb * KB,
    )
    return database


def build_segmentation_database(*, n_rows: int) -> Database:
    """A plain segmentation column for the single-threaded overhead check."""
    rng = np.random.default_rng(31)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load(
        "p",
        {
            "objid": np.arange(n_rows, dtype=np.int64),
            "ra": rng.uniform(*DOMAIN, size=n_rows),
        },
    )
    database.enable_adaptive(
        "p", "ra", strategy="segmentation", model="apm",
        m_min=1 * KB, m_max=4 * KB,
    )
    return database


def drifted_bounds(count: int, seed: int) -> list[tuple[float, float]]:
    """The interleaved multi-mode stream whose working set exceeds the budget."""
    workload = multimodal_workload(
        count, DOMAIN, SELECTIVITY, n_modes=N_MODES, interleave=True, seed=seed
    )
    return [(query.low, query.high) for query in workload.queries]


def warm(database: Database, prepared, count: int, seed: int) -> None:
    """Adapt the engine on the drifted stream before any clock starts."""
    for low, high in drifted_bounds(count, seed):
        database.execute_prepared(prepared, (low, high))


def measure_waves(
    *,
    readers: int,
    n_rows: int,
    slack_kb: int,
    total_queries: int,
    wave_size: int,
    repeat: int,
) -> float:
    """Aggregate qps of the drifted stream admitted in waves of ``wave_size``.

    Each measurement builds and warms its own engine: the serialized and
    fan-out paths adapt differently during timing, so sharing one engine
    would let the first run reshape the layout for the second.
    """
    database = build_replication_database(n_rows=n_rows, slack_kb=slack_kb)
    prepared = database.prepare_statement(SQL)
    warm(database, prepared, 512, seed=7)
    wall = 0.0
    for sweep in range(repeat):
        bounds = drifted_bounds(total_queries, seed=9 + sweep)
        waves = [
            [
                (prepared, prepared.binding.bind(pair))
                for pair in bounds[start : start + wave_size]
            ]
            for start in range(0, len(bounds), wave_size)
        ]
        started = time.perf_counter()
        for wave in waves:
            database.execute_wave(wave, readers=readers)
        wall += time.perf_counter() - started
    return repeat * total_queries / wall


def measure_pin_overhead(
    *, n_rows: int, total_queries: int, repeat: int
) -> tuple[float, float, float]:
    """Per-query snapshot path vs prepared path, one thread, warmed layout.

    Returns ``(snapshot_qps, prepared_qps, overhead_x)``.  Both paths run
    the same bound stream on the same warmed segmentation engine —
    interleaved sweeps, so drift in the host clock hits both equally.
    """
    database = build_segmentation_database(n_rows=n_rows)
    prepared = database.prepare_statement(SQL)
    warm(database, prepared, 1_024, seed=13)
    bounds = drifted_bounds(total_queries, seed=17)
    pairs = [prepared.binding.bind(pair) for pair in bounds]
    snapshot_wall = 0.0
    prepared_wall = 0.0
    for _ in range(repeat):
        started = time.perf_counter()
        for values in pairs:
            database.execute_prepared(prepared, values)
        prepared_wall += time.perf_counter() - started
        started = time.perf_counter()
        for values in pairs:
            database.execute_readonly(prepared, values)
        snapshot_wall += time.perf_counter() - started
    total = repeat * len(pairs)
    return total / snapshot_wall, total / prepared_wall, snapshot_wall / prepared_wall


def run_bench() -> PerfSuite:
    n_rows = env_scale("PERF_CONC_ROWS", 100_000)
    total_queries = env_scale("PERF_CONC_QUERIES", 2_048)
    wave_size = env_scale("PERF_CONC_WAVE", 64)
    readers = env_scale("PERF_CONC_READERS", 4)
    slack_kb = env_scale("PERF_CONC_SLACK_KB", 48)
    repeat = env_scale("PERF_REPEAT", 3)

    suite = PerfSuite("segment_kernels")
    common = dict(
        n_rows=n_rows, total_queries=total_queries, wave_size=wave_size,
        slack_kb=slack_kb, repeat=repeat,
    )

    serialized_qps = measure_waves(
        readers=1, n_rows=n_rows, slack_kb=slack_kb,
        total_queries=total_queries, wave_size=wave_size, repeat=repeat,
    )
    print(f"  serialized waves:        {serialized_qps:,.0f} qps "
          f"(per-member adaptation under budget pressure)")

    readers_qps = measure_waves(
        readers=readers, n_rows=n_rows, slack_kb=slack_kb,
        total_queries=total_queries, wave_size=wave_size, repeat=repeat,
    )
    scaling = readers_qps / serialized_qps
    print(f"  {readers}-reader snapshot waves: {readers_qps:,.0f} qps "
          f"({scaling:.2f}x)")

    snapshot_qps, prepared_qps, overhead = measure_pin_overhead(
        n_rows=n_rows, total_queries=total_queries, repeat=repeat,
    )
    print(f"  snapshot pin overhead:   {overhead:.3f}x "
          f"({snapshot_qps:,.0f} qps snapshot vs {prepared_qps:,.0f} qps prepared)")

    suite.derive(
        "concurrent_serialized_qps", serialized_qps, unit="qps", **common,
        note="drifted 4-mode stream admitted in waves, readers=1: every "
             "member runs conventional select() with cover analysis, "
             "materialization and budget-enforcement churn inline",
    )
    suite.derive(
        "concurrent_readers_qps", readers_qps, unit="qps", **common,
        readers=readers,
        note="same waves with the snapshot fan-out: members answered "
             "against a pinned CoverSnapshot on reader threads, "
             "observations absorbed once per wave",
    )
    suite.derive(
        "concurrent_read_scaling_x", scaling, unit="x", **common,
        readers=readers,
        note="readers over serialized, co-measured on identically warmed "
             "engines; the gain composes adaptation-free snapshot reads "
             "(dominant on one core) with GIL-released numpy overlap on "
             "multi-core hosts (bar: >= 1.3x at the reference scale; the "
             "CI gate)",
    )
    suite.derive(
        "snapshot_pin_overhead_x", overhead, unit="x",
        n_rows=n_rows, total_queries=total_queries, repeat=repeat,
        note="single-threaded snapshot path (pin + probe + gather + "
             "absorb) over the conventional prepared path on a warmed "
             "segmentation column (bar: <= 1.1x at the reference scale)",
    )
    return suite


def main() -> int:
    suite = run_bench()
    path = suite.merge_write(REPORT_PATH)
    print(suite.format_summary())
    print(f"[merged into {path}]")

    if os.environ.get("PERF_ASSERT") == "1":
        at_reference_scale = (
            env_scale("PERF_CONC_ROWS", 100_000) == 100_000
            and env_scale("PERF_CONC_QUERIES", 2_048) == 2_048
            and env_scale("PERF_REPEAT", 3) == 3
        )
        scaling = suite["concurrent_read_scaling_x"].value
        overhead = suite["snapshot_pin_overhead_x"].value
        if at_reference_scale:
            # Co-measured ratios (see the module docstring): no machine factor.
            assert scaling >= 1.3, (
                f"snapshot wave fan-out gained only {scaling:.2f}x over the "
                f"serialized path (bar: >= 1.3x)"
            )
            assert overhead <= 1.1, (
                f"single-threaded snapshot path costs {overhead:.2f}x the "
                f"prepared path (bar: <= 1.1x)"
            )
            print(
                f"[PERF_ASSERT ok: scaling {scaling:.2f}x, "
                f"pin overhead {overhead:.3f}x]"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
