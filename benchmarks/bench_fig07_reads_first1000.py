"""Figure 7: memory reads per query during the first 1000 queries (uniform, 0.1).

Expected shape (paper §6.1.2): reads drop very fast for adaptive segmentation;
the replication curves show initial spikes up to a full column scan whenever a
query hits an area still covered only by virtual segments, and stabilise as
the workload progresses.
"""

import numpy as np

from repro.bench import experiments
from repro.bench.harness import simulation_grid


def test_fig07_reads_first_1000_queries(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_7, rounds=1, iterations=1)
    save_result("fig07_reads_first1000", text)

    grid = simulation_grid("uniform", 0.1)
    column_bytes = grid["APM Segm"].column_bytes
    for label, result in grid.items():
        reads = np.asarray(result.reads_series()[:1000])
        # Early queries scan (nearly) the whole column, late ones much less.
        assert reads[:3].max() >= 0.5 * column_bytes
        assert np.median(reads[-200:]) < 0.25 * column_bytes, label
