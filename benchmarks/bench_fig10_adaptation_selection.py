"""Figure 10: average adaptation vs selection time per scheme and workload.

Expected shape (paper §6.2): the adaptation overhead of the APM schemes is
smaller than Gaussian Dice's (APM is more conservative about splitting small
segments); APM 1-5 adapts more than APM 1-25 but gains more on selection
because it creates smaller segments; every adaptive scheme beats the
non-segmented baseline on selection time.
"""

from repro.bench import experiments
from repro.bench.harness import SCHEME_ORDER, skyserver_engine_run


def test_fig10_adaptation_vs_selection(benchmark, save_result):
    text = benchmark.pedantic(experiments.figure_10, rounds=1, iterations=1)
    save_result("fig10_adaptation_selection", text)

    for workload in ("random", "skewed", "changing"):
        runs = {scheme: skyserver_engine_run(workload, scheme) for scheme in SCHEME_ORDER}
        baseline_selection = runs["NoSegm"].average_ms()["selection_ms"]
        for scheme in ("APM 1-25", "APM 1-5"):
            adaptive_selection = runs[scheme].average_ms()["selection_ms"]
            assert adaptive_selection < baseline_selection, (workload, scheme)
        # The baseline never adapts.
        assert runs["NoSegm"].average_ms()["adaptation_ms"] == 0.0
