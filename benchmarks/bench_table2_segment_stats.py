"""Table 2: segment statistics per workload and scheme.

Expected shape (paper §6.2): the smaller upper bound of APM 1-5 produces more
and smaller segments than APM 1-25; under the skewed workload APM creates far
fewer segments than under the random workload (only the hot areas are split),
while Gaussian Dice fragments the hot areas into many small segments.
"""

from repro.bench import experiments
from repro.bench.harness import skyserver_engine_run


def test_table2_segment_statistics(benchmark, save_result):
    text = benchmark.pedantic(experiments.table_2, rounds=1, iterations=1)
    save_result("table2_segment_stats", text)

    random_small = skyserver_engine_run("random", "APM 1-5").segment_stats
    random_large = skyserver_engine_run("random", "APM 1-25").segment_stats
    assert random_small is not None and random_large is not None
    # A tighter Mmax forces more, smaller segments.
    assert random_small.segment_count >= random_large.segment_count
    assert random_small.average_bytes <= random_large.average_bytes

    skewed_large = skyserver_engine_run("skewed", "APM 1-25").segment_stats
    assert skewed_large is not None
    # Skewed access only reorganizes the hot areas: far fewer segments.
    assert skewed_large.segment_count <= random_large.segment_count
