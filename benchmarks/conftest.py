"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one figure or table of the paper.  Because the
interesting output is the series/table itself (not only the wall-clock time
pytest-benchmark records), each benchmark also writes its formatted output to
``results/<name>.txt`` at the repository root via the ``save_result`` fixture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """The directory where formatted experiment outputs are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir: Path):
    """Persist (and echo) the formatted output of one experiment."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
