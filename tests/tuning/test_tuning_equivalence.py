"""Property test: controller-applied knob changes never change answers.

Knobs steer *where* the adaptive layer splits and materializes, never *what*
a range query returns.  Any stream of ``set_knobs`` calls — including the
controller's propose → trial → commit/rollback cycle landing mid-stream —
must leave every query's answer permutation-equal to a serial run under
fixed default knobs.  The companion pins tie the registry's defaults to the
Figure 5–7 accounting fixture: the pinned SHA-256 series *is* the
default-knob accounting, and a no-op ``set_knobs`` reproduces it bit for
bit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.engine.database import Database
from repro.tuning.controller import TuningController
from repro.tuning.drift import DriftDetector
from repro.tuning.whatif import TrainingExample, WhatIfEstimator
from repro.util.units import KB

DOMAIN = (0.0, 1000.0)
WINDOW = 8
FIXTURE_PATH = (
    Path(__file__).resolve().parent.parent / "data" / "fig5_7_accounting_fixture.json"
)


def _make_database() -> Database:
    database = Database()
    database.create_table("t", {"v": "float64"})
    rng = np.random.default_rng(42)
    database.bulk_load("t", {"v": rng.uniform(*DOMAIN, 6000)})
    database.enable_adaptive("t", "v", model="apm", m_min=1 * KB, m_max=4 * KB)
    return database


def _drifting_queries(n: int = 120) -> list[tuple[float, float]]:
    """A stream whose point of access jumps mid-way (forces drift)."""
    rng = np.random.default_rng(9)
    queries = []
    for index in range(n):
        base = 80.0 if index < n // 2 else 820.0
        low = base + float(rng.uniform(0.0, 60.0))
        queries.append((low, low + 25.0))
    return queries


def _answers(database: Database, queries, after_each=None) -> list[list[float]]:
    out = []
    for index, (low, high) in enumerate(queries):
        result = database.execute(
            f"SELECT v FROM t WHERE v BETWEEN {low!r} AND {high!r}"
        )
        out.append(sorted(result.columns["v"].tolist()))
        if after_each is not None:
            after_each(index, database, result)
    return out


def _pretrained_estimator() -> WhatIfEstimator:
    """A real estimator taught that smaller ``apm_m_min`` means less IO."""
    estimator = WhatIfEstimator(["apm_m_min"], seed=0)
    features = np.array([0.1, 0.05, 0.025, 0.0])
    estimator.fit([
        TrainingExample(
            knobs={"apm_m_min": m_min}, workload=features, io_bytes=m_min * 4.0,
        )
        for m_min in (0.5 * KB, 1 * KB, 2 * KB, 3 * KB, 4 * KB, 6 * KB)
    ])
    return estimator


def _run_with_controller(regress_tolerance: float):
    database = _make_database()
    handle = database.bpm.handles()[0]
    controller = TuningController(
        database.knob_registry(),
        _pretrained_estimator(),
        detector=DriftDetector(domain=DOMAIN, window=WINDOW),
        domain=DOMAIN,
        window=WINDOW,
        kappa=0.5,
        min_gain_fraction=0.0,
        regress_tolerance=regress_tolerance,
        cooldown_windows=1,
    )
    seen = {"reads": 0.0}

    def observe(index, database_, result):
        accountant = handle.adaptive.accountant
        total = accountant.total_reads_bytes + accountant.total_writes_bytes
        cost, seen["reads"] = total - seen["reads"], total
        low, high = queries[index]
        controller.observe(low, high, cost)

    queries = _drifting_queries()
    answers = _answers(database, queries, after_each=observe)
    return answers, controller, database


class TestAnswerPreservation:
    @pytest.fixture(scope="class")
    def serial_answers(self):
        return _answers(_make_database(), _drifting_queries())

    def test_explicit_set_knobs_mid_stream(self, serial_answers):
        database = _make_database()
        queries = _drifting_queries()
        moves = {
            30: {"apm_m_min": 0.5 * KB},
            60: {"apm_m_min": 2 * KB, "apm_m_max": 16 * KB},
            90: {"apm_m_min": 1 * KB, "apm_m_max": 4 * KB},  # rollback shape
        }

        def apply_moves(index, database_, result):
            if index in moves:
                database_.set_knobs(moves[index])

        assert _answers(database, queries, after_each=apply_moves) == serial_answers

    def test_controller_commit_path_preserves_answers(self, serial_answers):
        answers, controller, _ = _run_with_controller(regress_tolerance=10.0)
        counters = controller.tuning_stats()["counters"]
        assert counters["applied"] >= 1, "controller never moved a knob"
        assert counters["committed"] >= 1
        assert answers == serial_answers

    def test_controller_rollback_path_preserves_answers(self, serial_answers):
        # A negative tolerance brands every trial a regression, so each
        # applied move is rolled back mid-stream — the adversarial case.
        answers, controller, database = _run_with_controller(regress_tolerance=-1.0)
        stats = controller.tuning_stats()
        assert stats["counters"]["rollbacks"] >= 1
        assert stats["counters"]["committed"] == 0  # every judged trial rolled back
        assert any(
            move["outcome"] == "rolled_back" for move in stats["recent_moves"]
        )
        if stats["state"] == "idle":  # no trial pending: snapshot fully restored
            model = database.bpm.handles()[0].adaptive.model
            assert model.m_min == 1 * KB
        assert answers == serial_answers


class TestDefaultKnobPins:
    def test_registry_defaults_match_fig5_7_fixture(self):
        """The pinned accounting fixture *is* the default-knob accounting."""
        fixture = json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))
        registry = _make_database().knob_registry()
        assert registry.spec("apm_m_min").default == fixture["m_min"] == 3 * KB
        assert registry.spec("apm_m_max").default == fixture["m_max"] == 12 * KB

    def test_noop_set_knobs_keeps_accounting_bit_identical(self):
        def digest(database: Database, touch) -> str:
            handle = database.bpm.handles()[0]
            rng = np.random.default_rng(5)
            for index in range(60):
                low = float(rng.uniform(0.0, 950.0))
                database.execute(f"SELECT v FROM t WHERE v BETWEEN {low!r} AND {low + 30.0!r}")
                if touch and index % 10 == 0:
                    database.set_knobs(database.knobs())  # explicit no-op
            log = handle.adaptive.history
            hasher = hashlib.sha256()
            hasher.update(np.asarray(log.series("reads_bytes")).tobytes())
            hasher.update(np.asarray(log.series("writes_bytes")).tobytes())
            hasher.update(np.asarray(log.series("result_count")).tobytes())
            return hasher.hexdigest()

        assert digest(_make_database(), touch=False) == digest(
            _make_database(), touch=True
        )
