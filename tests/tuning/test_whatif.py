"""What-if estimator: interpretability, uncertainty, held-out rank accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tuning.whatif import (
    Prediction,
    TrainingExample,
    WhatIfEstimator,
    WORKLOAD_FEATURE_NAMES,
    rank_correlation,
    simulation_sweep_examples,
    workload_feature_vector,
)
from repro.util.units import KB
from repro.workloads.generators import hotspot_workload, uniform_workload


def _example(m_min, m_max, io, latency=None, features=None):
    return TrainingExample(
        knobs={"apm_m_min": m_min, "apm_m_max": m_max},
        workload=features if features is not None else np.array([0.5, 0.2, 0.01, 0.0]),
        io_bytes=io,
        latency_s=latency,
    )


class TestRankCorrelation:
    def test_perfect_and_inverted(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == 1.0
        assert rank_correlation([1, 2, 3, 4], [40, 30, 20, 10]) == -1.0

    def test_ties_average(self):
        assert rank_correlation([1, 1, 2], [5, 5, 9]) == pytest.approx(1.0)

    def test_degenerate(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0
        with pytest.raises(ValueError):
            rank_correlation([1.0], [2.0])


class TestFeatureVector:
    def test_matches_clustering_vocabulary(self):
        features = workload_feature_vector(
            [100.0, 300.0], [200.0, 400.0], domain_low=0.0, domain_high=1000.0,
        )
        assert features.shape == (len(WORKLOAD_FEATURE_NAMES),)
        assert features[0] == pytest.approx(0.25)  # mean center (150, 350)/1000
        assert features[2] == pytest.approx(0.1)  # mean width

    def test_empty_window(self):
        assert workload_feature_vector(
            [], [], domain_low=0.0, domain_high=1.0
        ).tolist() == [0.0] * 4


class TestWhatIfEstimator:
    def test_needs_examples(self):
        estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"])
        with pytest.raises(ValueError, match=">= 3"):
            estimator.fit([_example(1024.0, 4096.0, 100.0)])
        with pytest.raises(RuntimeError, match="not fitted"):
            estimator.predict(
                {"apm_m_min": 1024.0, "apm_m_max": 4096.0}, np.zeros(4)
            )

    def test_learns_monotone_trend(self):
        estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"], seed=0)
        for m_min in (512.0, 1024.0, 2048.0, 4096.0, 8192.0):
            estimator.add(_example(m_min, 16 * KB, io=100.0 * m_min))
        estimator.fit()
        small = estimator.predict(
            {"apm_m_min": 512.0, "apm_m_max": 16 * KB}, np.array([0.5, 0.2, 0.01, 0.0])
        )
        big = estimator.predict(
            {"apm_m_min": 8192.0, "apm_m_max": 16 * KB}, np.array([0.5, 0.2, 0.01, 0.0])
        )
        assert isinstance(small, Prediction)
        assert small.io_bytes < big.io_bytes
        assert small.io_std >= 0.0
        # Interpretability: every coefficient is attributable to a named
        # feature, and the m_min trend is positive in log-IO space.
        explanation = estimator.explain()
        assert set(explanation) == set(estimator.feature_names)
        assert explanation["apm_m_min"] > 0.0

    def test_latency_head_optional(self):
        estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"], seed=0)
        estimator.fit([
            _example(512.0, 4096.0, 10.0, latency=1e-4),
            _example(1024.0, 4096.0, 20.0, latency=2e-4),
            _example(2048.0, 4096.0, 40.0, latency=4e-4),
        ])
        prediction = estimator.predict(
            {"apm_m_min": 1024.0, "apm_m_max": 4096.0}, np.array([0.5, 0.2, 0.01, 0.0])
        )
        assert prediction.latency_s is not None and prediction.latency_s > 0.0
        # One example without latency drops the latency head, keeps IO.
        estimator.add(_example(4096.0, 8192.0, 80.0))
        estimator.fit()
        prediction = estimator.predict(
            {"apm_m_min": 1024.0, "apm_m_max": 4096.0}, np.array([0.5, 0.2, 0.01, 0.0])
        )
        assert prediction.latency_s is None
        assert prediction.io_bytes > 0.0

    def test_missing_knob_rejected(self):
        estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"])
        with pytest.raises(ValueError, match="missing knob"):
            estimator._raw_row({"apm_m_min": 1.0}, np.zeros(4))


def test_held_out_rank_correlation_clears_acceptance_bar():
    """ISSUE 9 acceptance: rank-correlation >= 0.8 on held-out sweep configs.

    Train on 14 of 20 (workload, knob-setting) sweep measurements from the
    ``run_grid``-family simulation runner, predict the held-out 6, and require
    the predicted IO ordering to match the observed ordering.
    """
    domain = (0.0, 200_000.0)
    workloads = [
        uniform_workload(300, domain, 0.02, seed=1, name="uniform"),
        hotspot_workload(300, domain, 0.005, seed=2, name="hotspot"),
    ]
    knob_grid = [
        {"apm_m_min": m_min, "apm_m_max": mult * m_min}
        for m_min in (0.5 * KB, 1 * KB, 2 * KB, 4 * KB, 8 * KB)
        for mult in (3.0, 6.0)
    ]
    examples = simulation_sweep_examples(
        workloads, knob_grid, column_size=20_000, domain_size=200_000, seed=17,
    )
    assert len(examples) == 20

    order = np.random.default_rng(5).permutation(len(examples))
    train = [examples[i] for i in order[:14]]
    held_out = [examples[i] for i in order[14:]]
    estimator = WhatIfEstimator(["apm_m_min", "apm_m_max"], seed=0).fit(train)
    predicted = [
        estimator.predict(example.knobs, example.workload).io_bytes
        for example in held_out
    ]
    observed = [example.io_bytes for example in held_out]
    correlation = rank_correlation(predicted, observed)
    assert correlation >= 0.8, (
        f"held-out Spearman {correlation:.3f} below the 0.8 acceptance bar"
    )
