"""The typed knob registry: specs, validation, all-or-nothing application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.database import Database
from repro.tuning.knobs import (
    KnobRegistry,
    KnobSpec,
    admission_knobs,
    database_knobs,
    server_knob_registry,
)
from repro.util.units import KB


def _spec(name="k", low=0.0, high=10.0, step=1.0, integer=False, store=None):
    store = store if store is not None else {"value": 5.0}

    def _apply(value: float) -> None:
        store["value"] = value

    return KnobSpec(
        name=name, layer="server", default=5.0, low=low, high=high, step=step,
        read=lambda: store["value"], apply=_apply, integer=integer,
    )


class TestKnobSpec:
    def test_coerce_bounds(self):
        spec = _spec()
        assert spec.coerce(3) == 3.0
        with pytest.raises(ValueError, match="outside"):
            spec.coerce(11.0)
        with pytest.raises(ValueError, match="not a number"):
            spec.coerce("nope")

    def test_coerce_integer_rounds(self):
        spec = _spec(integer=True)
        assert spec.coerce(3.4) == 3.0

    def test_clamp(self):
        spec = _spec()
        assert spec.clamp(-5.0) == 0.0
        assert spec.clamp(99.0) == 10.0

    def test_describe_reads_live_value(self):
        store = {"value": 7.0}
        row = _spec(store=store).describe()
        assert row["value"] == 7.0
        assert {"name", "layer", "default", "low", "high", "step"} <= set(row)


class TestKnobRegistry:
    def test_duplicate_registration_rejected(self):
        registry = KnobRegistry()
        registry.register(_spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(_spec())

    def test_set_knobs_is_all_or_nothing(self):
        a_store, b_store = {"value": 2.0}, {"value": 8.0}
        registry = KnobRegistry()
        registry.register(_spec(name="a", store=a_store))
        registry.register(_spec(name="b", store=b_store))

        def _ordered(values):
            if values["a"] >= values["b"]:
                raise ValueError("a must stay below b")

        registry.register_constraint(_ordered)
        # Valid batch applies both.
        registry.set_knobs({"a": 1.0, "b": 9.0})
        assert (a_store["value"], b_store["value"]) == (1.0, 9.0)
        # A constraint-violating batch applies *neither* knob, even though
        # each value alone is in bounds.
        with pytest.raises(ValueError, match="below b"):
            registry.set_knobs({"a": 7.5, "b": 7.0})
        assert (a_store["value"], b_store["value"]) == (1.0, 9.0)
        assert registry.validate({"a": 7.5, "b": 7.0}) is False
        assert registry.validate({"a": 0.5}) is True

    def test_unknown_knob(self):
        registry = KnobRegistry()
        with pytest.raises(KeyError, match="unknown knob"):
            registry.set_knobs({"ghost": 1.0})

    def test_snapshot_round_trips(self):
        store = {"value": 5.0}
        registry = KnobRegistry()
        registry.register(_spec(store=store))
        before = registry.snapshot()
        registry.set_knobs({"k": 9.0})
        registry.set_knobs(before)
        assert store["value"] == 5.0


@pytest.fixture
def adaptive_database() -> Database:
    database = Database()
    database.create_table("t", {"v": "float64"})
    rng = np.random.default_rng(11)
    database.bulk_load("t", {"v": rng.uniform(0.0, 1000.0, 4000)})
    database.enable_adaptive("t", "v", model="apm", m_min=1 * KB, m_max=4 * KB)
    return database


class TestDatabaseKnobs:
    def test_empty_without_adaptive_columns(self):
        assert len(database_knobs(Database())) == 0

    def test_apm_knobs_read_and_apply(self, adaptive_database):
        registry = database_knobs(adaptive_database)
        knobs = registry.knobs()
        assert knobs["apm_m_min"] == 1 * KB
        assert knobs["apm_m_max"] == 4 * KB
        registry.set_knobs({"apm_m_min": 2 * KB, "apm_m_max": 8 * KB})
        model = adaptive_database.bpm.handles()[0].adaptive.model
        assert (model.m_min, model.m_max) == (2 * KB, 8 * KB)

    def test_apm_order_constraint(self, adaptive_database):
        registry = database_knobs(adaptive_database)
        with pytest.raises(ValueError, match="below apm_m_max"):
            registry.set_knobs({"apm_m_min": 8 * KB})  # >= current m_max
        model = adaptive_database.bpm.handles()[0].adaptive.model
        assert (model.m_min, model.m_max) == (1 * KB, 4 * KB)  # untouched

    def test_database_facade(self, adaptive_database):
        assert adaptive_database.knobs()["apm_m_min"] == 1 * KB
        adaptive_database.set_knobs({"apm_m_min": 512.0})
        assert adaptive_database.knobs()["apm_m_min"] == 512.0

    def test_replication_budget_knob(self):
        database = Database()
        database.create_table("t", {"v": "float64"})
        rng = np.random.default_rng(3)
        database.bulk_load("t", {"v": rng.uniform(0.0, 1000.0, 2000)})
        database.enable_adaptive(
            "t", "v", strategy="replication", storage_budget=2000 * 8 + 64 * KB,
        )
        registry = database_knobs(database)
        assert "replication_storage_budget" in registry
        spec = registry.spec("replication_storage_budget")
        column = database.bpm.handles()[0].adaptive
        assert spec.low == column.total_bytes  # the floor is the column itself
        registry.set_knobs({"replication_storage_budget": spec.high})
        assert column.storage_budget == spec.high

    def test_read_workers_knob_appears_with_snapshot_capable_column(
        self, adaptive_database
    ):
        registry = database_knobs(adaptive_database)
        assert "read_workers" in registry
        spec = registry.spec("read_workers")
        assert spec.layer == "engine"
        assert (spec.low, spec.high) == (1, 8)
        assert adaptive_database.read_workers == 1
        registry.set_knobs({"read_workers": 4.6})
        assert adaptive_database.read_workers == 5  # integer knob rounds
        assert registry.knobs()["read_workers"] == 5.0


class TestServerRegistry:
    def test_admission_knobs_mutate_live(self):
        class FakeAdmission:
            batch_window_us = 250.0
            max_inflight = 1024
            max_wave = 256

        admission = FakeAdmission()
        registry = admission_knobs(admission)
        registry.set_knobs({"batch_window_us": 0.0, "max_wave": 31.7})
        assert admission.batch_window_us == 0.0
        assert admission.max_wave == 32  # integer knob rounds

    def test_fleet_fan_out(self, adaptive_database):
        from repro.cluster.router import Router

        with Router(adaptive_database, n_replicas=2, seed=1) as router:
            registry = server_knob_registry(router)
            assert "hot_query_threshold" in registry
            registry.set_knobs({"apm_m_min": 2 * KB})
            for replica in router.replicas:
                model = replica.database.bpm.handles()[0].adaptive.model
                assert model.m_min == 2 * KB
            # The fleet constraint still holds across replicas.
            with pytest.raises(ValueError, match="below apm_m_max"):
                registry.set_knobs({"apm_m_min": 4 * KB})
            # Router facade mirrors the registry.
            router.set_knobs({"router_ewma_alpha": 0.5})
            assert router.knobs()["router_ewma_alpha"] == 0.5
