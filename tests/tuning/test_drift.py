"""Drift detection over query-center histograms and router traffic shares."""

from __future__ import annotations

import pytest

from repro.tuning.drift import DriftDetector


def _feed(detector, low, high, count):
    for _ in range(count):
        detector.observe(low, high)


class TestBoundsDrift:
    def test_no_verdict_until_window_fills(self):
        detector = DriftDetector(domain=(0.0, 1000.0), window=8)
        _feed(detector, 100.0, 120.0, 7)
        report = detector.check()
        assert not report.drifted
        assert report.source == "none"

    def test_first_window_anchors_reference(self):
        detector = DriftDetector(domain=(0.0, 1000.0), window=8)
        _feed(detector, 100.0, 120.0, 8)
        report = detector.check()
        assert not report.drifted
        assert report.source == "bounds"
        assert detector.stats()["has_reference"]

    def test_stable_mix_never_fires(self):
        detector = DriftDetector(domain=(0.0, 1000.0), window=8)
        for _ in range(5):
            _feed(detector, 100.0, 120.0, 8)
            assert not detector.check().drifted

    def test_moved_mix_fires_once_then_reanchors(self):
        detector = DriftDetector(domain=(0.0, 1000.0), window=8)
        _feed(detector, 100.0, 120.0, 8)
        detector.check()  # anchor
        _feed(detector, 800.0, 820.0, 8)
        report = detector.check()
        assert report.drifted
        assert report.score > detector.threshold
        # The drifted mix is the new reference: persisting there is stable.
        _feed(detector, 800.0, 820.0, 8)
        assert not detector.check().drifted
        assert detector.stats()["drift_events"] == 1

    def test_slow_evolution_folds_into_reference(self):
        detector = DriftDetector(domain=(0.0, 1000.0), window=16, threshold=0.5)
        _feed(detector, 100.0, 120.0, 16)
        detector.check()
        # A mildly shifted window below threshold updates the reference
        # rather than firing.
        _feed(detector, 100.0, 120.0, 12)
        _feed(detector, 160.0, 180.0, 4)
        report = detector.check()
        assert not report.drifted
        assert 0.0 < report.score < detector.threshold


class TestSharesDrift:
    def test_share_vector_path(self):
        detector = DriftDetector(window=8)
        first = detector.check(shares=[0.9, 0.1])
        assert not first.drifted and first.source == "shares"
        stable = detector.check(shares=[0.85, 0.15])
        assert not stable.drifted
        flipped = detector.check(shares=[0.1, 0.9])
        assert flipped.drifted
        # Re-anchored on the flipped vector.
        assert not detector.check(shares=[0.12, 0.88]).drifted

    def test_length_change_reanchors(self):
        detector = DriftDetector(window=8)
        detector.check(shares=[0.5, 0.5])
        grown = detector.check(shares=[0.4, 0.3, 0.3])  # replica added
        assert not grown.drifted


def test_parameter_validation():
    with pytest.raises(ValueError):
        DriftDetector(window=1)
    with pytest.raises(ValueError):
        DriftDetector(bins=1)
    with pytest.raises(ValueError):
        DriftDetector(threshold=0.0)
