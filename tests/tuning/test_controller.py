"""The online controller: drift-gated, uncertainty-gated, trial/rollback."""

from __future__ import annotations

from typing import Any

import pytest

from repro.tuning.controller import TuningController
from repro.tuning.drift import DriftDetector
from repro.tuning.knobs import KnobRegistry, KnobSpec
from repro.tuning.whatif import Prediction

DOMAIN = (0.0, 1000.0)
WINDOW = 4


class StubEstimator:
    """Deterministic what-if stand-in: cost = ``cost_fn(knobs)`` ± ``std``."""

    def __init__(self, cost_fn, *, std=0.0, knob_names=("k",), trained=True):
        self.knob_names = tuple(knob_names)
        self.examples: list[Any] = []
        self.trained = trained
        self._cost_fn = cost_fn
        self._std = std
        self.fits = 0

    def add(self, example) -> None:
        self.examples.append(example)

    def fit(self, examples=None):
        if examples is not None:
            self.examples.extend(examples)
        self.fits += 1
        return self

    def predict(self, knobs, workload) -> Prediction:
        return Prediction(float(self._cost_fn(knobs)), self._std, None, None)

    def stats(self) -> dict[str, Any]:
        return {"trained": self.trained, "examples": len(self.examples)}


def make_registry(value=8.0, low=0.0, high=16.0, step=2.0):
    store = {"value": value}

    def _apply(new: float) -> None:
        store["value"] = new

    registry = KnobRegistry()
    registry.register(KnobSpec(
        name="k", layer="server", default=value, low=low, high=high, step=step,
        read=lambda: store["value"], apply=_apply,
    ))
    return registry, store


def make_controller(estimator, registry, **overrides):
    options = dict(
        domain=DOMAIN, window=WINDOW, kappa=1.0, min_gain_fraction=0.02,
        cooldown_windows=2, refit_every=4,
        detector=DriftDetector(domain=DOMAIN, window=WINDOW),
    )
    options.update(overrides)
    return TuningController(registry, estimator, **options)


def feed_window(controller, low, high, cost):
    for _ in range(WINDOW):
        controller.observe(low, high, cost)


def drift_to(controller, low, high, cost):
    """Anchor the detector at one spot, then complete a drifted window."""
    feed_window(controller, 100.0, 120.0, cost)  # anchors the reference
    feed_window(controller, low, high, cost)  # scored against it -> drift


class TestObservation:
    def test_windows_complete_and_train(self):
        estimator = StubEstimator(lambda knobs: 100.0, trained=False)
        registry, _ = make_registry()
        controller = make_controller(estimator, registry)
        feed_window(controller, 100.0, 120.0, 50.0)
        stats = controller.tuning_stats()
        assert stats["counters"]["windows"] == 1
        assert stats["counters"]["observed_queries"] == WINDOW
        assert len(estimator.examples) == 1
        assert estimator.examples[0].io_bytes == 50.0

    def test_stable_workload_never_proposes(self):
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0)
        registry, store = make_registry()
        controller = make_controller(estimator, registry)
        for _ in range(6):
            feed_window(controller, 100.0, 120.0, 80.0)
        assert controller.tuning_stats()["counters"]["proposals"] == 0
        assert store["value"] == 8.0

    def test_untrained_estimator_tunes_nothing(self):
        estimator = StubEstimator(lambda knobs: 0.0, trained=False)
        registry, store = make_registry()
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        counters = controller.tuning_stats()["counters"]
        assert counters["drift_events"] == 1
        assert counters["skipped_untrained"] == 1
        assert store["value"] == 8.0


class TestProposalGates:
    def test_drift_with_confident_gain_applies_a_move(self):
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=1.0)
        registry, store = make_registry(value=8.0, step=2.0)
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        assert controller.state == "trial"
        assert store["value"] == 6.0  # moved one step toward cheaper
        move = controller.tuning_stats()["pending_move"]
        assert move["knob"] == "k"
        assert move["predicted_gain"] == pytest.approx(20.0)

    def test_uncertainty_gate_blocks(self):
        # Same 20-unit predicted gain, but the bag spread swamps it.
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=50.0)
        registry, store = make_registry()
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        counters = controller.tuning_stats()["counters"]
        assert counters["rejected_uncertain"] == 1
        assert counters["applied"] == 0
        assert store["value"] == 8.0

    def test_no_gain_gate_blocks(self):
        estimator = StubEstimator(lambda knobs: 100.0, std=0.0)  # flat surface
        registry, store = make_registry()
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        counters = controller.tuning_stats()["counters"]
        assert counters["rejected_no_gain"] == 1
        assert store["value"] == 8.0

    def test_bounds_respected(self):
        # Cheapest direction is down, but the knob already sits at its floor:
        # the only in-bounds candidate (up) predicts worse, so no gain.
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=0.1)
        registry, store = make_registry(value=0.0, low=0.0)
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        assert store["value"] == 0.0
        assert controller.tuning_stats()["counters"]["applied"] == 0


class TestTrial:
    def test_improved_trial_commits_and_keeps_climbing(self):
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=1.0)
        registry, store = make_registry(value=8.0, step=2.0)
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)  # applies 8 -> 6
        feed_window(controller, 800.0, 820.0, 60.0)  # trial window: improved
        counters = controller.tuning_stats()["counters"]
        assert counters["committed"] == 1
        assert controller.state == "idle"
        assert controller.tuning_stats()["climbing"]
        # Climbing: the very next window proposes again without fresh drift.
        feed_window(controller, 800.0, 820.0, 60.0)
        assert store["value"] == 4.0

    def test_regressed_trial_rolls_back(self):
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=1.0)
        registry, store = make_registry(value=8.0, step=2.0)
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)  # applies 8 -> 6
        assert store["value"] == 6.0
        feed_window(controller, 800.0, 820.0, 200.0)  # trial regressed badly
        counters = controller.tuning_stats()["counters"]
        assert counters["rollbacks"] == 1
        assert store["value"] == 8.0  # snapshot restored
        assert controller.tuning_stats()["cooldown_windows_left"] == 2
        outcome = controller.tuning_stats()["recent_moves"][-1]
        assert outcome["outcome"] == "rolled_back"
        assert outcome["observed_trial"] == 200.0

    def test_cooldown_suppresses_proposals(self):
        estimator = StubEstimator(lambda knobs: knobs["k"] * 10.0, std=1.0)
        registry, store = make_registry()
        controller = make_controller(estimator, registry)
        drift_to(controller, 800.0, 820.0, 80.0)
        feed_window(controller, 800.0, 820.0, 200.0)  # roll back -> cooldown 2
        # Two more drifting windows sit out the cooldown without moving.
        feed_window(controller, 100.0, 120.0, 80.0)
        feed_window(controller, 800.0, 820.0, 80.0)
        assert store["value"] == 8.0
        assert controller.tuning_stats()["counters"]["applied"] == 1


def test_stats_shape():
    estimator = StubEstimator(lambda knobs: 1.0)
    registry, _ = make_registry()
    controller = make_controller(estimator, registry)
    stats = controller.tuning_stats()
    assert {
        "state", "objective", "counters", "knobs", "knob_table", "drift",
        "estimator", "recent_moves", "climbing",
    } <= set(stats)
    assert stats["state"] == "idle"


def test_parameter_validation():
    estimator = StubEstimator(lambda knobs: 1.0)
    registry, _ = make_registry()
    with pytest.raises(ValueError, match="objective"):
        TuningController(registry, estimator, objective="qps")
    with pytest.raises(ValueError, match="window"):
        TuningController(registry, estimator, window=2)
