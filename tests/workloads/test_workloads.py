"""Unit tests for workload generation (uniform, Zipf, hotspot, changing, SkyServer)."""

import numpy as np
import pytest

from repro.workloads.generators import (
    WorkloadSpec,
    changing_workload,
    drifting_mix_workload,
    hotspot_workload,
    make_column,
    mixed_workload,
    uniform_workload,
    update_heavy_workload,
    zipf_workload,
)
from repro.workloads.query import RangeQuery, Workload, queries_from_pairs
from repro.workloads.skyserver import (
    RA_DOMAIN,
    SkyServerDataset,
    skyserver_column,
    skyserver_dataset,
    skyserver_workload,
)

DOMAIN = (0.0, 1_000_000.0)


class TestRangeQueryAndWorkload:
    def test_range_query_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(10, 5)
        query = RangeQuery(5, 10)
        assert query.width == 5
        assert query.vrange.low == 5

    def test_queries_from_pairs(self):
        queries = queries_from_pairs([(0, 1), (2, 3)])
        assert len(queries) == 2 and queries[1].high == 3

    def test_workload_head_and_len(self):
        workload = uniform_workload(50, DOMAIN, 0.1, seed=1)
        shorter = workload.head(10)
        assert len(shorter) == 10
        assert shorter.queries == workload.queries[:10]

    def test_coverage_fraction(self):
        narrow = hotspot_workload(100, DOMAIN, 0.001, hotspot_fraction=0.01, seed=1)
        broad = uniform_workload(100, DOMAIN, 0.1, seed=1)
        assert narrow.coverage_fraction() < broad.coverage_fraction()
        assert Workload("empty", [], DOMAIN).coverage_fraction() == 0.0


class TestColumnGeneration:
    def test_make_column_properties(self):
        column = make_column(10_000, 1_000_000, seed=3)
        assert column.size == 10_000
        assert column.dtype == np.int32
        assert column.min() >= 0 and column.max() < 1_000_000

    def test_make_column_reproducible(self):
        assert np.array_equal(make_column(1000, 100, seed=1), make_column(1000, 100, seed=1))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            make_column(0)


class TestGenerators:
    @pytest.mark.parametrize("selectivity", [0.1, 0.01])
    def test_uniform_query_width_matches_selectivity(self, selectivity):
        workload = uniform_workload(200, DOMAIN, selectivity, seed=7)
        widths = [q.width for q in workload]
        expected = (DOMAIN[1] - DOMAIN[0]) * selectivity
        assert all(abs(w - expected) < 1e-6 for w in widths)

    def test_queries_stay_inside_domain(self):
        for workload in (
            uniform_workload(300, DOMAIN, 0.1, seed=1),
            zipf_workload(300, DOMAIN, 0.1, seed=1),
            hotspot_workload(300, DOMAIN, 0.01, seed=1),
            changing_workload(300, DOMAIN, 0.01, seed=1),
        ):
            for query in workload:
                assert DOMAIN[0] <= query.low <= query.high <= DOMAIN[1]

    def test_generators_are_reproducible(self):
        first = zipf_workload(50, DOMAIN, 0.1, seed=9)
        second = zipf_workload(50, DOMAIN, 0.1, seed=9)
        assert [(q.low, q.high) for q in first] == [(q.low, q.high) for q in second]

    def test_zipf_is_more_skewed_than_uniform(self):
        uniform = uniform_workload(2000, DOMAIN, 0.01, seed=5)
        zipf = zipf_workload(2000, DOMAIN, 0.01, seed=5)
        # Measure skew as the spread of query start positions over 20 buckets.
        def bucket_counts(workload):
            starts = np.array([q.low for q in workload])
            counts, _ = np.histogram(starts, bins=20, range=DOMAIN)
            return counts

        assert bucket_counts(zipf).max() > 2 * bucket_counts(uniform).max()

    def test_hotspot_confines_queries(self):
        workload = hotspot_workload(500, DOMAIN, 0.001, n_hotspots=2, hotspot_fraction=0.01, seed=3)
        assert workload.coverage_fraction() < 0.05

    def test_changing_workload_has_phases(self):
        workload = changing_workload(200, DOMAIN, 0.005, n_phases=4, seed=3)
        starts = np.array([q.low for q in workload])
        phase_means = [starts[i * 50 : (i + 1) * 50].mean() for i in range(4)]
        assert len({round(m, -3) for m in phase_means}) >= 3  # phases sit in different areas
        within_phase_spread = np.std(starts[:50])
        assert within_phase_spread < (DOMAIN[1] - DOMAIN[0]) * 0.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            uniform_workload(0, DOMAIN, 0.1)
        with pytest.raises(ValueError):
            uniform_workload(10, DOMAIN, 1.5)
        with pytest.raises(ValueError):
            uniform_workload(10, DOMAIN, 0.0)

    def test_workload_spec_dispatch(self):
        for distribution in (
            "uniform", "zipf", "changing", "hotspot",
            "update_heavy", "mixed", "drifting_mix",
        ):
            spec = WorkloadSpec(name=distribution, distribution=distribution, selectivity=0.05, n_queries=20, seed=1)
            workload = spec.generate(DOMAIN)
            assert len(workload) == 20
        with pytest.raises(ValueError):
            WorkloadSpec("x", "unknown", 0.1, 10).generate(DOMAIN)


class TestTunerScenarioGenerators:
    """The self-tuning loop's training/eval workloads (ISSUE 9 satellite)."""

    def test_update_heavy_op_mix(self):
        workload = update_heavy_workload(400, DOMAIN, 0.01, update_fraction=0.7, seed=6)
        ops = workload.metadata["ops"]
        assert len(ops) == len(workload.queries) == 400
        assert set(ops) <= {"read", "update"}
        mix = workload.metadata["op_mix"]
        assert mix["read"] + mix["update"] == 400
        assert 0.6 <= mix["update"] / 400 <= 0.8  # near the requested fraction
        # Positions stay hot-area confined (hotspot base pattern).
        assert workload.coverage_fraction() < 0.1

    def test_update_heavy_is_replayable_as_reads(self):
        workload = update_heavy_workload(50, DOMAIN, 0.01, seed=6)
        for query in workload.queries:
            assert DOMAIN[0] <= query.low <= query.high <= DOMAIN[1]

    def test_mixed_write_fraction(self):
        workload = mixed_workload(400, DOMAIN, 0.01, write_fraction=0.3, seed=6)
        mix = workload.metadata["op_mix"]
        assert set(workload.metadata["ops"]) <= {"read", "insert", "delete"}
        writes = mix["insert"] + mix["delete"]
        assert 0.2 <= writes / 400 <= 0.4
        assert mix["read"] == 400 - writes

    def test_drifting_mix_phases(self):
        workload = drifting_mix_workload(300, DOMAIN, 0.01, seed=6)
        assert len(workload.queries) == 300
        assert workload.metadata["phases"] == ["hotspot", "uniform", "multimodal"]
        assert workload.metadata["phase_boundaries"] == [0, 100, 200]
        # The phases genuinely differ in shape: the hotspot phase is far more
        # spatially confined than the uniform phase.
        lows = np.array([query.low for query in workload.queries])
        assert lows[:100].std() < lows[100:200].std() / 3

    def test_drifting_mix_is_seed_deterministic(self):
        first = drifting_mix_workload(90, DOMAIN, 0.01, seed=7)
        second = drifting_mix_workload(90, DOMAIN, 0.01, seed=7)
        assert [(q.low, q.high) for q in first.queries] == [
            (q.low, q.high) for q in second.queries
        ]

    def test_drifting_mix_rejects_empty_phases(self):
        with pytest.raises(ValueError, match="at least one"):
            drifting_mix_workload(10, DOMAIN, 0.01, phases=())


class TestSkyServer:
    def test_column_shape_and_domain(self):
        ra = skyserver_column(50_000, seed=2)
        assert ra.dtype == np.float64
        assert ra.min() >= RA_DOMAIN[0] and ra.max() < RA_DOMAIN[1]

    def test_column_is_not_uniform(self):
        ra = skyserver_column(100_000, seed=2)
        counts, _ = np.histogram(ra, bins=36, range=RA_DOMAIN)
        assert counts.max() > 3 * counts.min() + 1  # survey stripes create dense areas

    def test_dataset_scales_apm_bounds(self):
        dataset = skyserver_dataset(100_000, seed=2)
        assert isinstance(dataset, SkyServerDataset)
        assert dataset.column_bytes == 800_000
        ratio = dataset.m_max_large / dataset.m_min
        assert ratio == pytest.approx(25.0)

    def test_workload_kinds(self):
        for kind in ("random", "skewed", "changing"):
            workload = skyserver_workload(kind, 100, seed=4)
            assert len(workload) == 100
            assert workload.name.startswith("skyserver")
        with pytest.raises(ValueError):
            skyserver_workload("sorted")

    def test_skewed_workload_touches_two_areas(self):
        workload = skyserver_workload("skewed", 200, seed=4)
        assert workload.coverage_fraction() < 0.05
