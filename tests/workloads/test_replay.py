"""Unit tests for workload save/replay (CSV round-trips)."""

import pytest

from repro.workloads.generators import uniform_workload
from repro.workloads.query import Workload, queries_from_pairs
from repro.workloads.replay import load_workload, save_workload


class TestRoundTrip:
    def test_save_and_load_preserves_queries(self, tmp_path):
        original = uniform_workload(50, (0, 1_000_000), 0.05, seed=3)
        path = save_workload(original, tmp_path / "trace.csv")
        replayed = load_workload(path)
        assert len(replayed) == len(original)
        assert [(q.low, q.high) for q in replayed] == [(q.low, q.high) for q in original]

    def test_load_derives_domain_from_queries(self, tmp_path):
        workload = Workload("w", queries_from_pairs([(10, 20), (50, 90)]), domain=(0, 100))
        path = save_workload(workload, tmp_path / "w.csv")
        replayed = load_workload(path)
        assert replayed.domain == (10.0, 90.0)

    def test_explicit_domain_and_name(self, tmp_path):
        workload = Workload("w", queries_from_pairs([(10, 20)]), domain=(0, 100))
        path = save_workload(workload, tmp_path / "w.csv")
        replayed = load_workload(path, name="custom", domain=(0, 100))
        assert replayed.name == "custom"
        assert replayed.domain == (0, 100)

    def test_headerless_file_is_accepted(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.5,2.5\n3.0,4.0\n", encoding="utf-8")
        replayed = load_workload(path)
        assert len(replayed) == 2
        assert replayed[0].low == 1.5

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("low,high\n1,2\n\n3,4\n", encoding="utf-8")
        assert len(load_workload(path)) == 2


class TestErrors:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ValueError):
            load_workload(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("low,high\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_workload(path)

    def test_replayed_workload_drives_an_adaptive_column(self, tmp_path):
        from repro.core.models import AdaptivePageModel
        from repro.core.segmentation import SegmentedColumn
        from repro.workloads.generators import make_column

        values = make_column(5_000, 100_000, seed=9)
        workload = uniform_workload(30, (0, 100_000), 0.05, seed=9)
        path = save_workload(workload, tmp_path / "trace.csv")
        replayed = load_workload(path, domain=(0, 100_000))
        column = SegmentedColumn(values, model=AdaptivePageModel(512, 2048), domain=(0, 100_000))
        for query in replayed:
            expected = int(((values >= query.low) & (values < query.high)).sum())
            assert column.select(query.low, query.high).count == expected
