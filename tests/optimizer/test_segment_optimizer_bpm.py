"""Unit tests for the segment optimizer rewrite and the BPM runtime."""

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel
from repro.engine.database import Database
from repro.optimizer.bpm import BatPartitionManager
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.util.units import KB


@pytest.fixture
def database() -> Database:
    rng = np.random.default_rng(77)
    ra = rng.uniform(0, 360, 50_000)
    database = Database()
    database.create_table("p", {"objid": "int64", "ra": "float64"})
    database.bulk_load("p", {"objid": np.arange(50_000, dtype=np.int64), "ra": ra})
    return database


class TestBatPartitionManager:
    def test_enable_and_handle_lookup(self, database):
        handle = database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        assert database.bpm.is_managed("p", "ra")
        assert handle.qualified_name == "p.ra"
        assert handle.adaptive.segment_count == 1

    def test_enable_twice_rejected(self, database):
        database.enable_adaptive_segmentation("p", "ra")
        with pytest.raises(ValueError):
            database.enable_adaptive_segmentation("p", "ra")

    def test_unknown_strategy_rejected(self, database):
        bpm = database.bpm
        values = np.array([1.0, 2.0])
        with pytest.raises(ValueError):
            bpm.enable("p", "ra", strategy="hashing", model=AdaptivePageModel(1, 2), values=values)

    def test_disable_returns_column_to_plain_path(self, database):
        database.enable_adaptive_segmentation("p", "ra")
        database.disable_adaptive("p", "ra")
        assert not database.bpm.is_managed("p", "ra")
        plan = database.explain("SELECT objid FROM p WHERE ra BETWEEN 1 AND 2")
        assert "bpm." not in plan

    def test_handle_for_unmanaged_column_fails(self, database):
        with pytest.raises(KeyError):
            database.bpm.handle("p", "ra")

    def test_replication_strategy_supported(self, database):
        handle = database.enable_adaptive_replication("p", "ra", m_min=4 * KB, m_max=16 * KB)
        result = database.execute("SELECT objid FROM p WHERE ra BETWEEN 10 AND 20")
        assert result.row_count > 0
        assert handle.adaptive.storage_bytes >= handle.adaptive.total_bytes * 0.99

    def test_empty_column_cannot_become_adaptive(self):
        database = Database()
        database.create_table("empty", {"x": "float64"})
        with pytest.raises(ValueError):
            database.enable_adaptive_segmentation("empty", "x")


class TestSegmentOptimizerRewrite:
    def test_rewrite_injects_bpm_iterator_block(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        plan = database.explain("SELECT objid FROM p WHERE ra BETWEEN 100 AND 120")
        assert "bpm.take" in plan
        assert "barrier" in plan and "redo" in plan and "exit" in plan
        assert "bpm.newIterator" in plan and "bpm.hasMoreElements" in plan
        assert "bpm.result" in plan

    def test_only_level_zero_selection_is_rewritten(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        plan = database.explain("SELECT objid FROM p WHERE ra BETWEEN 100 AND 120")
        # The delta-BAT selections (levels 1 and 2) keep the conventional path.
        assert plan.count("algebra.uselect") == 2

    def test_non_adaptive_columns_untouched(self, database):
        plan = database.explain("SELECT objid FROM p WHERE ra BETWEEN 100 AND 120")
        assert "bpm." not in plan

    def test_predicates_on_other_columns_not_rewritten(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        plan = database.explain("SELECT ra FROM p WHERE objid < 100")
        assert "bpm." not in plan

    def test_rewritten_plan_matches_plain_plan_results(self, database):
        plain = database.execute("SELECT objid FROM p WHERE ra BETWEEN 42 AND 47")
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        for _ in range(5):
            adaptive = database.execute("SELECT objid FROM p WHERE ra BETWEEN 42 AND 47")
            assert sorted(adaptive.column("objid")) == sorted(plain.column("objid"))

    def test_adaptation_happens_through_the_sql_path(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        rng = np.random.default_rng(3)
        for _ in range(30):
            low = float(rng.uniform(0, 350))
            database.execute(f"SELECT objid FROM p WHERE ra BETWEEN {low} AND {low + 5}")
        handle = database.adaptive_handle("p", "ra")
        assert handle.adaptive.segment_count > 1
        assert len(handle.adaptive.history) == 30

    def test_comparison_predicate_uses_bpm_with_open_bound(self, database):
        database.enable_adaptive_segmentation("p", "ra", m_min=4 * KB, m_max=16 * KB)
        result = database.execute("SELECT objid FROM p WHERE ra >= 350")
        handle = database.adaptive_handle("p", "ra")
        expected = int((handle.adaptive.select(350, 361).count))
        assert result.row_count == expected
