"""Unit tests for the BPM's SQL-to-half-open bound translation.

SQL's ``BETWEEN`` is inclusive on both sides and comparison predicates can be
open on either side, while the core adaptive columns use half-open ranges;
the BPM performs that translation (plus clamping to the column domain) when a
rewritten plan reaches it.  Getting these edges wrong silently loses boundary
tuples, so they get their own tests.
"""

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel
from repro.core.segmentation import SegmentedColumn
from repro.optimizer.bpm import BatPartitionManager
from repro.storage.catalog import Catalog
from repro.util.units import KB


@pytest.fixture
def column() -> SegmentedColumn:
    values = np.array([10.0, 20.0, 30.0, 40.0, 50.0] * 200)
    return SegmentedColumn(values, model=AdaptivePageModel(1 * KB, 4 * KB))


class TestHalfOpenBounds:
    def test_between_includes_both_bounds(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 20.0, 40.0, True, True)
        result = column.select(low, high)
        assert sorted(set(result.values.tolist())) == [20.0, 30.0, 40.0]

    def test_exclusive_high(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 20.0, 40.0, True, False)
        assert sorted(set(column.select(low, high).values.tolist())) == [20.0, 30.0]

    def test_exclusive_low(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 20.0, 40.0, False, True)
        assert sorted(set(column.select(low, high).values.tolist())) == [30.0, 40.0]

    def test_infinite_bounds_clamp_to_domain(self, column):
        low, high = BatPartitionManager._half_open_bounds(
            column, -np.inf, np.inf, True, False
        )
        assert column.select(low, high).count == 1000

    def test_upper_bound_beyond_domain_includes_maximum(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 45.0, 1e9, True, True)
        assert sorted(set(column.select(low, high).values.tolist())) == [50.0]

    def test_degenerate_equality_range(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 30.0, 30.0, True, True)
        assert set(column.select(low, high).values.tolist()) == {30.0}

    def test_empty_when_bounds_cross_after_clamping(self, column):
        low, high = BatPartitionManager._half_open_bounds(column, 500.0, 600.0, True, True)
        assert column.select(low, high).count == 0


class TestEngineBoundaryQueries:
    def test_between_boundary_values_via_sql(self):
        from repro.engine.database import Database

        values = np.array([1.0, 2.0, 2.0, 3.0, 4.0] * 100)
        database = Database()
        database.create_table("t", {"x": "float64"})
        database.bulk_load("t", {"x": values})
        expected = database.execute("SELECT x FROM t WHERE x BETWEEN 2 AND 3").row_count

        database.enable_adaptive_segmentation("t", "x", m_min=256, m_max=1024)
        for _ in range(3):
            adaptive = database.execute("SELECT x FROM t WHERE x BETWEEN 2 AND 3").row_count
            assert adaptive == expected == 300

    def test_comparison_boundaries_via_sql(self):
        from repro.engine.database import Database

        values = np.linspace(0.0, 9.0, 1000)
        database = Database()
        database.create_table("t", {"x": "float64"})
        database.bulk_load("t", {"x": values})
        database.enable_adaptive_segmentation("t", "x", m_min=256, m_max=1024)
        strictly_less = database.execute("SELECT x FROM t WHERE x < 9").row_count
        less_equal = database.execute("SELECT x FROM t WHERE x <= 9").row_count
        assert less_equal == strictly_less + 1
        greater_equal = database.execute("SELECT x FROM t WHERE x >= 0").row_count
        assert greater_equal == 1000
