"""Unit tests for the generic optimizer rules and the pipeline."""

import numpy as np
import pytest

from repro.engine.execution import ExecutionContext
from repro.mal.builder import ProgramBuilder
from repro.mal.interpreter import Interpreter
from repro.mal.modules import default_registry
from repro.mal.program import Const
from repro.optimizer.pipeline import OptimizerPipeline
from repro.optimizer.rules import merge_duplicate_binds, remove_dead_code
from repro.sql.compiler import SQLCompiler
from repro.sql.parser import parse
from repro.storage.catalog import Catalog


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_table("p", {"objid": np.int64, "ra": np.float64})
    catalog.table("p").bulk_load(
        {"objid": np.arange(5, dtype=np.int64), "ra": np.array([1.0, 2.0, 3.0, 4.0, 5.0])}
    )
    return catalog


class TestRemoveDeadCode:
    def test_unused_pure_instructions_removed(self):
        builder = ProgramBuilder("demo")
        builder.call("calc", "oid", Const(1), target="dead")
        used = builder.call("calc", "oid", Const(2))
        builder.effect("sql", "exportValue", Const("x"), builder.var(used))
        optimized = remove_dead_code(builder.build())
        assert len(optimized) == 2
        assert "dead" not in optimized.defined_variables()

    def test_dead_chains_removed_transitively(self):
        builder = ProgramBuilder("demo")
        bind = builder.call("sql", "bind", Const("sys"), Const("p"), Const("ra"), Const(0))
        builder.call("algebra", "uselect", builder.var(bind), Const(1), Const(2), target="dead")
        optimized = remove_dead_code(builder.build())
        assert len(optimized) == 0

    def test_effectful_instructions_kept(self):
        builder = ProgramBuilder("demo")
        builder.call("sql", "resultSet", Const(1), Const(1), Const(0), target="rs")
        builder.effect("sql", "exportResult", builder.var("rs"), Const(""))
        optimized = remove_dead_code(builder.build())
        assert len(optimized) == 2


class TestMergeDuplicateBinds:
    def test_duplicate_binds_collapse(self, catalog):
        compiler = SQLCompiler(catalog)
        program = compiler.compile(parse("SELECT ra FROM p WHERE ra BETWEEN 2 AND 4"))
        before = len(program.find_calls("sql", "bind"))
        merged = merge_duplicate_binds(program)
        after = len(merged.find_calls("sql", "bind"))
        assert after < before
        # Exactly one bind per (column, level) should survive: ra has 3 levels.
        assert after == 3

    def test_merged_plan_still_produces_same_result(self, catalog):
        compiler = SQLCompiler(catalog)
        program = compiler.compile(parse("SELECT ra FROM p WHERE ra BETWEEN 2 AND 4"))
        merged = merge_duplicate_binds(program)

        def run(prog):
            context = ExecutionContext(catalog=catalog)
            Interpreter(default_registry()).run(prog, context)
            return context.exported_columns()["ra"].tolist()

        assert run(program) == run(merged)


class TestPipeline:
    def test_rules_applied_in_order(self):
        calls = []

        def rule_a(program):
            calls.append("a")
            return program

        def rule_b(program):
            calls.append("b")
            return program

        pipeline = OptimizerPipeline([rule_a])
        pipeline.add_rule(rule_b)
        pipeline.optimize(ProgramBuilder("x").build())
        assert calls == ["a", "b"]

    def test_add_remove_and_names(self):
        pipeline = OptimizerPipeline([remove_dead_code])
        pipeline.add_rule(merge_duplicate_binds, position=0)
        assert pipeline.rule_names() == ["merge_duplicate_binds", "remove_dead_code"]
        pipeline.remove_rule(remove_dead_code)
        assert pipeline.rule_names() == ["merge_duplicate_binds"]
