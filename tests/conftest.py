"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.models import AdaptivePageModel, GaussianDice
from repro.util.units import KB

#: Domain of the small test column (mirrors the paper's 1 M-integer domain,
#: scaled down so tests stay fast).
TEST_DOMAIN = (0.0, 100_000.0)


@pytest.fixture(scope="session")
def small_values() -> np.ndarray:
    """A 20 K-value int32 column over a 100 K domain (session-wide, read-only)."""
    rng = np.random.default_rng(1234)
    return rng.integers(0, 100_000, size=20_000).astype(np.int32)


@pytest.fixture
def values(small_values: np.ndarray) -> np.ndarray:
    """A fresh copy of the small column for tests that reorganize data."""
    return small_values.copy()


@pytest.fixture
def apm_model() -> AdaptivePageModel:
    """An APM model scaled to the small test column (3 KB / 12 KB bounds)."""
    return AdaptivePageModel(m_min=3 * KB, m_max=12 * KB)


@pytest.fixture
def gd_model() -> GaussianDice:
    """A seeded Gaussian Dice model (deterministic across test runs)."""
    return GaussianDice(seed=99)


def brute_force_count(values: np.ndarray, low: float, high: float) -> int:
    """Reference implementation of a half-open range selection."""
    return int(((values >= low) & (values < high)).sum())
